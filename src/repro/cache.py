"""Plan cache and result memo for the inline backend (`repro.cache`).

Every statement an inline-backed session executes pays parse → compile
(I-SQL → world-set algebra) → rewrite (the Figure 7 pass) before any
table is touched — 25–50% of wall time on small scenarios, even when
heavy traffic is the *same* statements re-run against slowly mutating
state. This module removes that tax with two bounded caches sharing one
:class:`StatementCache` façade:

* the **plan cache** (:attr:`StatementCache.plans`) maps a statement
  fingerprint — the parsed AST node (whose equality ignores source
  spans, so textual re-formatting still hits), the catalog's value
  schemas, the view definitions, the strategy/rewrite configuration,
  and the one-vs-many-worlds bit the rewriter specializes on — to the
  compiled **and rewritten** world-set-algebra artifact. A parse cache
  (:attr:`StatementCache.parses`) keyed on raw script text sits in
  front of it, so a repeated script skips parsing work entirely.
* the **result memo** (:attr:`StatementCache.memo`) maps a select's
  fingerprint *plus the per-table version counters of every relation it
  reads* (plus the world version) to the evaluated
  :class:`~repro.inline.physical.PhysicalState`. Versions live on
  :class:`~repro.inline.representation.InlinedRepresentation`: DML
  deltas — the ``mask``/``scatter_update``/``append`` kernel commits
  routed through ``replacing()`` — mint a fresh version for exactly the
  table they changed, and because versions travel *inside* the
  (immutable) representation, snapshot restore / rollback /
  ``restore_snapshot`` put the old versions back with the old tables:
  a stale entry can never be served, and a pinned reader keeps hitting
  its own snapshot's versions.

Both caches are LRU-bounded and **lock-cheap**: one ``threading.Lock``
per map, held only for the dict probe/move — safe to share pool-wide
(``InlineBackend.spawn()`` hands the same :class:`StatementCache` to
every forked session). Entries hold only immutable objects (AST nodes,
compiled plans, physical states over immutable relations), so sharing
them across sessions is exactly the copy-on-write discipline the rest
of the engine is built on.

``session.cache_info()`` / ``connection.cache_info()`` surface the
counters as a :class:`CacheInfo`; ``execute(..., cache=False)`` /
``connect(..., cache=False)`` bypass both caches per statement for
differential testing.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import NamedTuple

#: Sentinel distinguishing "no entry" from a cached None-like value.
MISS = object()


class CacheInfo(NamedTuple):
    """A point-in-time summary of one cache (or an aggregate of several).

    *invalidations* counts entries dropped — LRU evictions plus
    explicit clears. With version-keyed memo entries there is no
    in-place invalidation event: a DML delta mints a fresh table
    version, new lookups key past the stale entry, and the stale entry
    ages out of the LRU (where it is counted here). *bytes_estimate* is
    a rough accounting of entry payloads (answer-table cells at tuple
    cost, scripts at character cost, plans at a flat rate), not a
    promise from the allocator.
    """

    hits: int
    misses: int
    entries: int
    invalidations: int
    bytes_estimate: int

    @staticmethod
    def empty() -> "CacheInfo":
        return CacheInfo(0, 0, 0, 0, 0)


def _estimate_bytes(value: object) -> int:
    """A rough payload size for *value* (see :class:`CacheInfo`)."""
    answer = getattr(value, "_answer", None)
    if answer is not None:
        # A memoized PhysicalState: answer cells dominate.
        try:
            width = max(len(answer.schema.attributes), 1)
            return 256 + 28 * len(answer) * width
        except Exception:
            return 512
    if isinstance(value, str):
        return 64 + len(value)
    if isinstance(value, tuple):
        return 64 + sum(_estimate_bytes(item) for item in value)
    return 512  # compiled plans, parsed statements: small AST graphs


class LRUCache:
    """A bounded, thread-safe LRU map with hit/miss/eviction counters.

    Deliberately minimal: ``get`` returns :data:`MISS` on absence (an
    entry may legitimately be falsy), ``put`` inserts or refreshes, and
    the single lock is held only for the OrderedDict probe/move — the
    "lock-cheap" property that lets one instance back a whole session
    pool.
    """

    __slots__ = ("maxsize", "_entries", "_lock", "hits", "misses", "invalidations")

    def __init__(self, maxsize: int = 256) -> None:
        if maxsize < 1:
            raise ValueError(f"cache size must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self._entries: OrderedDict = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    def get(self, key: object) -> object:
        with self._lock:
            value = self._entries.get(key, MISS)
            if value is MISS:
                self.misses += 1
            else:
                self._entries.move_to_end(key)
                self.hits += 1
            return value

    def put(self, key: object, value: object) -> None:
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self.invalidations += 1

    def clear(self) -> None:
        with self._lock:
            self.invalidations += len(self._entries)
            self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def info(self) -> CacheInfo:
        with self._lock:
            size = sum(_estimate_bytes(value) for value in self._entries.values())
            return CacheInfo(
                self.hits, self.misses, len(self._entries), self.invalidations, size
            )


class StatementCache:
    """The per-backend (or pool-shared) bundle of statement caches.

    Three LRU maps with one aggregated :meth:`info`:

    * :attr:`parses` — script text → parsed statement tuple;
    * :attr:`plans` — statement fingerprint → compiled + rewritten plan
      (selects) or ``(rewritten match plan, attrs[, set_terms])`` (DML);
    * :attr:`memo` — select fingerprint + table/world versions →
      evaluated :class:`~repro.inline.physical.PhysicalState`.

    Instances are shared by reference: ``InlineBackend.spawn()`` passes
    its cache to the child, so every session forked from one snapshot
    store template amortizes compilation pool-wide. ``close()`` on a
    backend *detaches* it from the shared instance instead of clearing
    it — a retired session must stop pinning memoized relations without
    wiping its siblings' entries.
    """

    __slots__ = ("parses", "plans", "memo")

    def __init__(
        self,
        plan_entries: int = 256,
        memo_entries: int = 64,
        parse_entries: int = 128,
    ) -> None:
        self.parses = LRUCache(parse_entries)
        self.plans = LRUCache(plan_entries)
        self.memo = LRUCache(memo_entries)

    def clear(self) -> None:
        """Drop every entry (counted as invalidations); counters survive."""
        self.parses.clear()
        self.plans.clear()
        self.memo.clear()

    def info(self) -> CacheInfo:
        """Aggregate :class:`CacheInfo` over parses + plans + memo."""
        parts = (self.parses.info(), self.plans.info(), self.memo.info())
        return CacheInfo(*(sum(values) for values in zip(*parts)))

    def __repr__(self) -> str:
        info = self.info()
        return (
            f"StatementCache(entries={info.entries}, hits={info.hits}, "
            f"misses={info.misses})"
        )


__all__ = ["CacheInfo", "LRUCache", "MISS", "StatementCache"]
