"""Schema-aware simplification of relational algebra expressions.

The optimized complete-to-complete translation (Section 5.3) produces
queries littered with column copies, renamings and pass-through
projections. This module normalizes them so that, e.g., the translation
of ``cert(π_Arr(χ_Dep(HFlights)))`` prints as the paper's Example 5.8:

    π_{Arr,Dep}(HFlights) ÷ π_{Dep}(HFlights)

The rules are standard algebraic identities (projection cascades,
rename fusion and hoisting, identity elimination, unit-table join
elimination, rename-invariant division) applied bottom-up to fixpoint.
All rules strictly reduce size or hoist renamings upward, so the
rewriting terminates.
"""

from __future__ import annotations

from repro.relational.algebra import (
    CopyAttr,
    Divide,
    Literal,
    NaturalJoin,
    Product,
    Project,
    RAExpr,
    Rename,
    SchemaEnv,
    Select,
    ThetaJoin,
)
from repro.relational.predicates import TRUE


def _is_unit_literal(node: RAExpr) -> bool:
    """True for the literal nullary world table {⟨⟩}."""
    return (
        isinstance(node, Literal)
        and len(node.relation.schema) == 0
        and len(node.relation) == 1
    )


def _rebuild(node: RAExpr, children: list[RAExpr]) -> RAExpr:
    """Clone *node* with new children (used by the bottom-up driver)."""
    if isinstance(node, Select):
        return Select(node.predicate, children[0])
    if isinstance(node, Project):
        return Project(node.attributes, children[0])
    if isinstance(node, Rename):
        return Rename(node.mapping, children[0])
    if isinstance(node, CopyAttr):
        return CopyAttr(node.source, node.target, children[0])
    if isinstance(node, ThetaJoin):
        return ThetaJoin(node.predicate, children[0], children[1])
    if children:
        return type(node)(*children)  # type: ignore[call-arg]
    return node


def _simplify_project(node: Project, env: SchemaEnv) -> RAExpr | None:
    child = node.child
    # π_A(q) = q when A is exactly q's schema in order.
    if node.attributes == child.schema(env).attributes:
        return child
    # Projection cascade: π_A(π_B(q)) = π_A(q).
    if isinstance(child, Project):
        return Project(node.attributes, child.child)
    # π over a column copy: drop or turn into a rename.
    if isinstance(child, CopyAttr):
        if child.target not in node.attributes:
            return Project(node.attributes, child.child)
        if child.source not in node.attributes:
            pre_image = tuple(
                child.source if a == child.target else a for a in node.attributes
            )
            return Rename({child.source: child.target}, Project(pre_image, child.child))
    # Hoist renames out of projections: π_A(δ_m(q)) = δ_m'(π_A'(q)).
    if isinstance(child, Rename):
        inverse = {new: old for old, new in child.mapping.items()}
        pre_image = tuple(inverse.get(a, a) for a in node.attributes)
        restricted = {
            old: new for old, new in child.mapping.items() if new in node.attributes
        }
        return Rename(restricted, Project(pre_image, child.child))
    return None


def _simplify_rename(node: Rename, env: SchemaEnv) -> RAExpr | None:
    mapping = {old: new for old, new in node.mapping.items() if old != new}
    if not mapping:
        return node.child
    if len(mapping) != len(node.mapping):
        return Rename(mapping, node.child)
    # Rename fusion: δ_m2(δ_m1(q)) = δ_{m2∘m1}(q).
    if isinstance(node.child, Rename):
        inner = node.child
        composed = dict(inner.mapping)
        consumed = set()
        for old, new in composed.items():
            if new in mapping:
                composed[old] = mapping[new]
                consumed.add(new)
        for old, new in mapping.items():
            if old not in consumed:
                composed[old] = new
        return Rename(composed, inner.child)
    return None


def _simplify_select(node: Select, env: SchemaEnv) -> RAExpr | None:
    if node.predicate == TRUE:
        return node.child
    # Hoist renames out of selections: σ_φ(δ_m(q)) = δ_m(σ_φ'(q)).
    if isinstance(node.child, Rename):
        inner = node.child
        inverse = {new: old for old, new in inner.mapping.items()}
        return Rename(inner.mapping, Select(node.predicate.rename(inverse), inner.child))
    return None


def _simplify_divide(node: Divide, env: SchemaEnv) -> RAExpr | None:
    left, right = node.left, node.right
    # Division is invariant under a shared renaming of the divisor
    # attributes: δ_m(q1) ÷ δ_m(q2) = δ_m'(q1 ÷ q2) with m' the
    # restriction of the dividend renaming to quotient attributes.
    if isinstance(left, Rename) and isinstance(right, Rename):
        divisor_attrs = right.child.schema(env).as_set()
        right_map = right.mapping
        left_map = left.mapping
        agree = all(left_map.get(a, a) == right_map.get(a, a) for a in divisor_attrs)
        if agree:
            quotient_map = {
                old: new
                for old, new in left_map.items()
                if old not in divisor_attrs
            }
            return Rename(quotient_map, Divide(left.child, right.child))
    # A dividend-only renaming not touching divisor attributes hoists out.
    if isinstance(left, Rename):
        divisor_attrs = right.schema(env).as_set()
        touches = set(left.mapping) | set(left.mapping.values())
        if not (touches & divisor_attrs):
            return Rename(left.mapping, Divide(left.child, right))
    return None


def _simplify_joins(node: RAExpr, env: SchemaEnv) -> RAExpr | None:
    if isinstance(node, (Product, NaturalJoin)):
        if _is_unit_literal(node.left):
            return node.right
        if _is_unit_literal(node.right):
            return node.left
    if isinstance(node, ThetaJoin) and node.predicate == TRUE:
        return Product(node.left, node.right)
    return None


def _simplify_node(node: RAExpr, env: SchemaEnv) -> RAExpr | None:
    if isinstance(node, Project):
        return _simplify_project(node, env)
    if isinstance(node, Rename):
        return _simplify_rename(node, env)
    if isinstance(node, Select):
        return _simplify_select(node, env)
    if isinstance(node, Divide):
        return _simplify_divide(node, env)
    return _simplify_joins(node, env)


def simplify(expression: RAExpr, env: SchemaEnv, max_rounds: int = 100) -> RAExpr:
    """Simplify *expression* bottom-up to fixpoint under *env* schemas."""

    def walk(node: RAExpr) -> RAExpr:
        children = [walk(child) for child in node.children()]
        if children and tuple(children) != node.children():
            node = _rebuild(node, children)
        rewritten = _simplify_node(node, env)
        while rewritten is not None:
            node = rewritten
            rewritten = _simplify_node(node, env)
        return node

    previous = expression
    for _ in range(max_rounds):
        current = walk(previous)
        if current == previous:
            return current
        previous = current
    return previous
