"""Shared SQL aggregation semantics for both execution kernels.

I-SQL extends the world-set algebra fragment with SQL grouping and
aggregation (Figure 1); the engine evaluates it per world inside
``Engine._project_grouped``. This module is the single source of truth
for the *value* semantics of those aggregates — ``count`` is a distinct
count, ``count(*)`` a row count, ``sum``/``avg`` fold every (distinct)
row, ``min``/``max`` of an empty group are undefined (None) — so the
tuple kernel, the columnar kernel, the physical world-grouped operator
and the relational-algebra translation all agree with the engine to the
bit.

An :class:`AggSpec` names one aggregate column: the output attribute,
the function, and the argument attribute (None encodes ``count(*)``).
:func:`aggregate_rows` is the grouping fold both kernels call with
C-speed key/argument iterators; :func:`default_value` is the value an
aggregate takes over an *empty* group (the single global group of an
aggregate query over an empty relation, or a world whose answer is
empty on the inline route).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.errors import EvaluationError

#: The aggregate functions of Figure 1.
AGG_FUNCTIONS = ("count", "sum", "min", "max", "avg")

#: Internal pseudo-aggregates the compiler may emit; never user-visible.
#: ``single`` extracts the lone distinct value of its group — the flat
#: form of a *non-aggregate* scalar subquery, whose SQL contract is
#: "exactly one row". A group with several distinct values folds to the
#: :data:`AMBIGUOUS` sentinel instead of raising, because the engine
#: only errors when an outer row actually *reads* the ambiguous value;
#: the read-side guard is ``repro.relational.predicates.ScalarGuard``.
INTERNAL_AGG_FUNCTIONS = ("single",)


class _AmbiguousScalar:
    """Sentinel: a ``single`` group held more than one distinct value."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<ambiguous scalar>"


#: The value a ``single`` aggregate takes over a many-valued group.
AMBIGUOUS = _AmbiguousScalar()


@dataclass(frozen=True)
class AggSpec:
    """One aggregate column: ``output := function(argument)``.

    ``argument is None`` encodes ``count(*)`` (the only function defined
    without an argument, matching the engine).
    """

    output: str
    function: str
    argument: str | None = None

    def __post_init__(self) -> None:
        if self.function not in AGG_FUNCTIONS + INTERNAL_AGG_FUNCTIONS:
            raise EvaluationError(f"unknown aggregate {self.function!r}")
        if self.argument is None and self.function != "count":
            raise EvaluationError(f"{self.function}(*) is not defined")

    def render(self) -> str:
        inner = self.argument if self.argument is not None else "*"
        return f"{self.output}:={self.function}({inner})"


def default_value(spec: AggSpec) -> object:
    """The aggregate's value over an empty group (engine semantics)."""
    if spec.function in ("count", "sum", "avg"):
        return 0
    if spec.function == "single":
        return 0  # the engine's empty scalar subquery evaluates to 0
    return None  # min/max of nothing are undefined


def _accumulator(spec: AggSpec):
    """(init, step, finish) closures folding one group's argument values."""
    function = spec.function
    if function == "count" and spec.argument is None:
        return (lambda v: 1), (lambda s, v: s + 1), (lambda s: s)
    if function == "count":  # count(A) counts *distinct* values
        def init_set(v):
            return {v}

        def add(s, v):
            s.add(v)
            return s

        return init_set, add, len
    if function == "sum":
        return (lambda v: v), (lambda s, v: s + v), (lambda s: s)
    if function == "avg":
        return (
            (lambda v: (v, 1)),
            (lambda s, v: (s[0] + v, s[1] + 1)),
            (lambda s: s[0] / s[1]),
        )
    if function == "min":
        return (lambda v: v), (lambda s, v: v if v < s else s), (lambda s: s)
    if function == "max":
        return (lambda v: v), (lambda s, v: v if v > s else s), (lambda s: s)
    if function == "single":
        # The group's distinct values; reading an AMBIGUOUS result is an
        # error, but only when a row actually does (ScalarGuard).
        def init_single(v):
            return {v}

        def add_single(s, v):
            s.add(v)
            return s

        def finish_single(s):
            if len(s) == 1:
                return next(iter(s))
            return AMBIGUOUS

        return init_single, add_single, finish_single
    raise EvaluationError(f"unknown aggregate {function!r}")


def aggregate_rows(
    keys: Iterable[tuple],
    args: Iterable[tuple],
    specs: Sequence[AggSpec],
) -> list[tuple]:
    """Fold *args* rows into one output row per distinct key.

    *keys* yields the grouping sub-tuple of each input row, *args* the
    per-spec argument values of the same row (position i feeds specs[i];
    ``count(*)`` positions carry a placeholder). Returns aligned output
    rows ``key + aggregates`` — distinct by construction, so kernels can
    use their trusted row constructors. With no specs this degenerates
    to the distinct key list (pure GROUP BY).
    """
    accumulators = [_accumulator(spec) for spec in specs]
    groups: dict[tuple, list] = {}
    for key, row in zip(keys, args):
        states = groups.get(key)
        if states is None:
            groups[key] = [
                init(value) for (init, _, _), value in zip(accumulators, row)
            ]
        else:
            for index, value in enumerate(row):
                states[index] = accumulators[index][1](states[index], value)
    return [
        key + tuple(finish(state) for (_, _, finish), state in zip(accumulators, states))
        for key, states in groups.items()
    ]


def default_row(specs: Sequence[AggSpec]) -> tuple:
    """The output row of an empty group: one default per spec."""
    return tuple(default_value(spec) for spec in specs)


def missing_group_rows(result, keys: Sequence[str], specs, pad) -> list[tuple]:
    """Default rows for *pad* keys absent from an aggregation *result*.

    The single definition of global-aggregate padding: a world (or any
    mandated key tuple) without input rows still answers with the
    empty-group defaults. Used by both the physical world-grouped
    operator and the relational-algebra ``GroupAggregate`` extension so
    their padding semantics cannot drift.
    """
    from repro.relational.columnar import tuples_of

    keys = tuple(keys)
    present = set(tuples_of(result, keys))
    defaults = default_row(specs)
    return [
        key + defaults
        for key in dict.fromkeys(tuples_of(pad, keys))
        if key not in present
    ]
