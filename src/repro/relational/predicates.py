"""Selection predicates for relational algebra and world-set algebra.

Predicates form a small boolean AST over comparisons of attributes and
constants. They are immutable, hashable (so rewrite rules can compare
query trees structurally), and compile to fast row-level closures via
:meth:`Predicate.bind`.

Supported comparisons mirror what the paper's examples need:
``=``, ``!=``, ``<``, ``<=``, ``>``, ``>=`` between two attributes or an
attribute and a constant — or arithmetic (:class:`Arith`) over those,
which the I-SQL compiler uses for conditions like
``sum - Revenue > 1000`` — plus ``and`` / ``or`` / ``not`` and the
constants ``TRUE`` / ``FALSE``.
"""

from __future__ import annotations

import operator
from typing import Callable, Mapping

from repro.errors import EvaluationError, SchemaError
from repro.relational.schema import Schema

_OPS: dict[str, Callable[[object, object], bool]] = {
    "=": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}

_ARITH_OPS: dict[str, Callable[[object, object], object]] = {
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
    "/": operator.truediv,
}

_NEGATED: dict[str, str] = {
    "=": "!=",
    "!=": "=",
    "<": ">=",
    "<=": ">",
    ">": "<=",
    ">=": "<",
}


class Term:
    """A comparison operand: an attribute reference or a constant."""

    __slots__ = ()

    def attributes(self) -> frozenset[str]:
        raise NotImplementedError

    def rename(self, mapping: Mapping[str, str]) -> "Term":
        raise NotImplementedError

    def bind(self, schema: Schema) -> Callable[[tuple], object]:
        """Compile to a function from a row tuple to the operand's value."""
        raise NotImplementedError

    def column(self, relation) -> "object | None":
        """Vectorized evaluation: the term's value column over *relation*.

        *relation* is a columnar relation (duck-typed to avoid a module
        cycle: anything with ``column_values``/``__len__``). Returns a
        value sequence aligned with the relation's rows — equal,
        element for element, to calling ``bind(relation.schema)`` on
        each row — or None when this term kind only evaluates row at a
        time (then callers fall back to the bound function). The DML
        ``scatter_update`` hot path uses this to rewrite a set clause
        as one column slice instead of 10⁵ closure calls.
        """
        return None


class Attr(Term):
    """Reference to an attribute by name."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def attributes(self) -> frozenset[str]:
        return frozenset((self.name,))

    def rename(self, mapping: Mapping[str, str]) -> "Attr":
        return Attr(mapping.get(self.name, self.name))

    def bind(self, schema: Schema) -> Callable[[tuple], object]:
        position = schema.index(self.name)
        return lambda row: row[position]

    def column(self, relation):
        return relation.column_values(self.name)

    def __repr__(self) -> str:
        return self.name

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Attr) and other.name == self.name

    def __hash__(self) -> int:
        return hash(("Attr", self.name))


class Const(Term):
    """A literal constant value."""

    __slots__ = ("value",)

    def __init__(self, value: object) -> None:
        self.value = value

    def attributes(self) -> frozenset[str]:
        return frozenset()

    def rename(self, mapping: Mapping[str, str]) -> "Const":
        return self

    def bind(self, schema: Schema) -> Callable[[tuple], object]:
        value = self.value
        return lambda row: value

    def column(self, relation):
        return [self.value] * len(relation)

    def __repr__(self) -> str:
        return repr(self.value)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Const)
            and type(other.value) is type(self.value)
            and other.value == self.value
        )

    def __hash__(self) -> int:
        return hash(("Const", type(self.value).__name__, self.value))


class Arith(Term):
    """Binary arithmetic over two terms: ``left op right``.

    Mirrors the I-SQL engine's value arithmetic: an undefined operand
    (None — e.g. ``min`` over an empty group) or a type mismatch raises
    :class:`EvaluationError`, which deliberately escapes the
    best-effort ``TypeError → False`` net of :meth:`Comparison.bind` so
    both evaluation routes fail the same statements.
    """

    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: object, right: object) -> None:
        if op not in _ARITH_OPS:
            raise SchemaError(f"unknown arithmetic operator {op!r}")
        self.op = op
        self.left = _as_term(left)
        self.right = _as_term(right)

    def attributes(self) -> frozenset[str]:
        return self.left.attributes() | self.right.attributes()

    def rename(self, mapping: Mapping[str, str]) -> "Arith":
        return Arith(self.op, self.left.rename(mapping), self.right.rename(mapping))

    def bind(self, schema: Schema) -> Callable[[tuple], object]:
        left = self.left.bind(schema)
        right = self.right.bind(schema)
        combine = _ARITH_OPS[self.op]

        def value(row: tuple) -> object:
            a = left(row)
            b = right(row)
            if a is None or b is None:
                raise EvaluationError(
                    "arithmetic over an undefined (empty) aggregate"
                )
            try:
                return combine(a, b)
            except TypeError as exc:
                raise EvaluationError(
                    f"arithmetic {self.op!r} over incompatible values"
                ) from exc

        return value

    def column(self, relation):
        left = self.left.column(relation)
        right = self.right.column(relation)
        if left is None or right is None:
            return None
        combine = _ARITH_OPS[self.op]
        out = []
        for a, b in zip(left, right):
            if a is None or b is None:
                raise EvaluationError(
                    "arithmetic over an undefined (empty) aggregate"
                )
            try:
                out.append(combine(a, b))
            except TypeError as exc:
                raise EvaluationError(
                    f"arithmetic {self.op!r} over incompatible values"
                ) from exc
        return out

    def __repr__(self) -> str:
        return f"({self.left!r}{self.op}{self.right!r})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Arith)
            and other.op == self.op
            and other.left == self.left
            and other.right == self.right
        )

    def __hash__(self) -> int:
        return hash(("Arith", self.op, self.left, self.right))


class PadDefault(Term):
    """An attribute read that maps the PAD sentinel to a default value.

    Used by the decorrelated scalar-aggregate comparison: the pad join
    ``outer =⊳⊲ S`` marks outer rows without a correlation partner with
    :data:`~repro.relational.pad.PAD` on the aggregate column, and this
    term turns that marker into the SQL empty-group default (0 for
    count/sum/avg, None for min/max) during predicate evaluation.
    """

    __slots__ = ("name", "default")

    def __init__(self, name: str, default: object) -> None:
        self.name = name
        self.default = default

    def attributes(self) -> frozenset[str]:
        return frozenset((self.name,))

    def rename(self, mapping: Mapping[str, str]) -> "PadDefault":
        return PadDefault(mapping.get(self.name, self.name), self.default)

    def bind(self, schema: Schema) -> Callable[[tuple], object]:
        from repro.relational.pad import PAD

        position = schema.index(self.name)
        default = self.default

        def value(row: tuple) -> object:
            raw = row[position]
            return default if raw is PAD else raw

        return value

    def column(self, relation):
        from repro.relational.pad import PAD

        default = self.default
        return [
            default if value is PAD else value
            for value in relation.column_values(self.name)
        ]

    def __repr__(self) -> str:
        return f"{self.name}⟨pad→{self.default!r}⟩"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, PadDefault)
            and other.name == self.name
            and other.default == self.default
        )

    def __hash__(self) -> int:
        return hash(("PadDefault", self.name, self.default))


class ScalarGuard(Term):
    """The runtime cardinality guard of a non-aggregate scalar subquery.

    Wraps the term reading the subquery's value (the ``single``
    pseudo-aggregate column, usually through :class:`PadDefault`) and
    raises the engine's "more than one row" error when the value is the
    :data:`~repro.relational.aggregates.AMBIGUOUS` sentinel — i.e. the
    subquery held several distinct values in that row's world/correlation
    group. Raising at *read* time keeps the flat route exactly as lazy
    as the engine: a many-valued group that no surviving outer row ever
    consults is not an error.
    """

    __slots__ = ("term",)

    def __init__(self, term: object) -> None:
        self.term = _as_term(term)

    def attributes(self) -> frozenset[str]:
        return self.term.attributes()

    def rename(self, mapping: Mapping[str, str]) -> "ScalarGuard":
        return ScalarGuard(self.term.rename(mapping))

    def bind(self, schema: Schema) -> Callable[[tuple], object]:
        from repro.relational.aggregates import AMBIGUOUS

        inner = self.term.bind(schema)

        def value(row: tuple) -> object:
            raw = inner(row)
            if raw is AMBIGUOUS:
                raise EvaluationError(
                    "a scalar subquery produced more than one row"
                )
            return raw

        return value

    def __repr__(self) -> str:
        return f"1row({self.term!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ScalarGuard) and other.term == self.term

    def __hash__(self) -> int:
        return hash(("ScalarGuard", self.term))


def _as_term(operand: object) -> Term:
    """Coerce a raw operand to a Term (strings name attributes)."""
    if isinstance(operand, Term):
        return operand
    if isinstance(operand, str):
        return Attr(operand)
    return Const(operand)


#: Public coercion alias — the I-SQL compiler hands the inline backend
#: set-clause value terms through this, so they always bind uniformly.
as_term = _as_term


class Predicate:
    """Abstract base class for selection conditions."""

    __slots__ = ()

    def attributes(self) -> frozenset[str]:
        """All attribute names referenced by the predicate."""
        raise NotImplementedError

    def rename(self, mapping: Mapping[str, str]) -> "Predicate":
        """The predicate with attributes renamed by *mapping* (old → new)."""
        raise NotImplementedError

    def bind(self, schema: Schema) -> Callable[[tuple], bool]:
        """Compile to a fast row-level boolean function for *schema*."""
        raise NotImplementedError

    def negate(self) -> "Predicate":
        """Logical negation, pushed through comparisons where possible."""
        return Not(self)

    # Convenience connectives so predicates compose fluently.
    def __and__(self, other: "Predicate") -> "Predicate":
        return And(self, other)

    def __or__(self, other: "Predicate") -> "Predicate":
        return Or(self, other)

    def __invert__(self) -> "Predicate":
        return self.negate()

    def equality_pairs(self) -> list[tuple[str, str]] | None:
        """If the predicate is a conjunction of attr=attr equalities,
        return the list of pairs; otherwise None.

        Used by the evaluator to pick hash-based equi-joins.
        """
        return None


class Comparison(Predicate):
    """A binary comparison between two terms."""

    __slots__ = ("left", "op", "right")

    def __init__(self, left: object, op: str, right: object) -> None:
        if op not in _OPS:
            raise SchemaError(f"unknown comparison operator {op!r}")
        self.left = _as_term(left)
        self.op = op
        self.right = _as_term(right)

    def attributes(self) -> frozenset[str]:
        return self.left.attributes() | self.right.attributes()

    def rename(self, mapping: Mapping[str, str]) -> "Comparison":
        return Comparison(self.left.rename(mapping), self.op, self.right.rename(mapping))

    def bind(self, schema: Schema) -> Callable[[tuple], bool]:
        left = self.left.bind(schema)
        right = self.right.bind(schema)
        compare = _OPS[self.op]

        def check(row: tuple) -> bool:
            try:
                return bool(compare(left(row), right(row)))
            except TypeError:
                # Mixed-type ordering comparisons are false rather than
                # an error, matching SQL's typed-comparison failure mode
                # under a best-effort Python value model.
                return False

        return check

    def negate(self) -> "Comparison":
        return Comparison(self.left, _NEGATED[self.op], self.right)

    def equality_pairs(self) -> list[tuple[str, str]] | None:
        if self.op == "=" and isinstance(self.left, Attr) and isinstance(self.right, Attr):
            return [(self.left.name, self.right.name)]
        return None

    def __repr__(self) -> str:
        return f"{self.left!r}{self.op}{self.right!r}"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Comparison)
            and other.op == self.op
            and other.left == self.left
            and other.right == self.right
        )

    def __hash__(self) -> int:
        return hash(("Comparison", self.left, self.op, self.right))


class And(Predicate):
    """Conjunction of two predicates."""

    __slots__ = ("left", "right")

    def __init__(self, left: Predicate, right: Predicate) -> None:
        self.left = left
        self.right = right

    def attributes(self) -> frozenset[str]:
        return self.left.attributes() | self.right.attributes()

    def rename(self, mapping: Mapping[str, str]) -> "And":
        return And(self.left.rename(mapping), self.right.rename(mapping))

    def bind(self, schema: Schema) -> Callable[[tuple], bool]:
        left = self.left.bind(schema)
        right = self.right.bind(schema)
        return lambda row: left(row) and right(row)

    def negate(self) -> Predicate:
        return Or(self.left.negate(), self.right.negate())

    def equality_pairs(self) -> list[tuple[str, str]] | None:
        left = self.left.equality_pairs()
        right = self.right.equality_pairs()
        if left is None or right is None:
            return None
        return left + right

    def __repr__(self) -> str:
        return f"({self.left!r} ∧ {self.right!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, And) and other.left == self.left and other.right == self.right

    def __hash__(self) -> int:
        return hash(("And", self.left, self.right))


class Or(Predicate):
    """Disjunction of two predicates."""

    __slots__ = ("left", "right")

    def __init__(self, left: Predicate, right: Predicate) -> None:
        self.left = left
        self.right = right

    def attributes(self) -> frozenset[str]:
        return self.left.attributes() | self.right.attributes()

    def rename(self, mapping: Mapping[str, str]) -> "Or":
        return Or(self.left.rename(mapping), self.right.rename(mapping))

    def bind(self, schema: Schema) -> Callable[[tuple], bool]:
        left = self.left.bind(schema)
        right = self.right.bind(schema)
        return lambda row: left(row) or right(row)

    def negate(self) -> Predicate:
        return And(self.left.negate(), self.right.negate())

    def __repr__(self) -> str:
        return f"({self.left!r} ∨ {self.right!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Or) and other.left == self.left and other.right == self.right

    def __hash__(self) -> int:
        return hash(("Or", self.left, self.right))


class Not(Predicate):
    """Negation of a predicate."""

    __slots__ = ("operand",)

    def __init__(self, operand: Predicate) -> None:
        self.operand = operand

    def attributes(self) -> frozenset[str]:
        return self.operand.attributes()

    def rename(self, mapping: Mapping[str, str]) -> "Not":
        return Not(self.operand.rename(mapping))

    def bind(self, schema: Schema) -> Callable[[tuple], bool]:
        inner = self.operand.bind(schema)
        return lambda row: not inner(row)

    def negate(self) -> Predicate:
        return self.operand

    def __repr__(self) -> str:
        return f"¬{self.operand!r}"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Not) and other.operand == self.operand

    def __hash__(self) -> int:
        return hash(("Not", self.operand))


class _Boolean(Predicate):
    """A constant predicate (TRUE or FALSE)."""

    __slots__ = ("value",)

    def __init__(self, value: bool) -> None:
        self.value = value

    def attributes(self) -> frozenset[str]:
        return frozenset()

    def rename(self, mapping: Mapping[str, str]) -> "_Boolean":
        return self

    def bind(self, schema: Schema) -> Callable[[tuple], bool]:
        value = self.value
        return lambda row: value

    def negate(self) -> "_Boolean":
        return FALSE if self.value else TRUE

    def equality_pairs(self) -> list[tuple[str, str]] | None:
        return [] if self.value else None

    def __repr__(self) -> str:
        return "true" if self.value else "false"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Boolean) and other.value == self.value

    def __hash__(self) -> int:
        return hash(("_Boolean", self.value))


#: The always-true predicate.
TRUE = _Boolean(True)
#: The always-false predicate.
FALSE = _Boolean(False)


# -- convenience constructors ---------------------------------------------


def eq(left: object, right: object) -> Comparison:
    """``left = right`` (strings are attribute names)."""
    return Comparison(left, "=", right)


def neq(left: object, right: object) -> Comparison:
    """``left != right`` (strings are attribute names)."""
    return Comparison(left, "!=", right)


def lt(left: object, right: object) -> Comparison:
    """``left < right``."""
    return Comparison(left, "<", right)


def le(left: object, right: object) -> Comparison:
    """``left <= right``."""
    return Comparison(left, "<=", right)


def gt(left: object, right: object) -> Comparison:
    """``left > right``."""
    return Comparison(left, ">", right)


def ge(left: object, right: object) -> Comparison:
    """``left >= right``."""
    return Comparison(left, ">=", right)


def conjunction(predicates: list[Predicate]) -> Predicate:
    """The conjunction of all *predicates* (TRUE when empty)."""
    result: Predicate = TRUE
    for index, predicate in enumerate(predicates):
        result = predicate if index == 0 else And(result, predicate)
    return result
