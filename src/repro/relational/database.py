"""A complete (single-world) database: a named collection of relations."""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

from repro.errors import SchemaError
from repro.relational.relation import Relation
from repro.relational.schema import Schema


class Database:
    """An immutable mapping from relation names to :class:`Relation`s.

    Name order is preserved: the paper's world-set schemas
    ⟨R₁, …, R_k⟩ are ordered, and the inlined representation appends
    the query answer as R_{k+1}.
    """

    __slots__ = ("_relations",)

    def __init__(self, relations: Mapping[str, Relation] | Iterable[tuple[str, Relation]] = ()) -> None:
        items = relations.items() if isinstance(relations, Mapping) else relations
        store: dict[str, Relation] = {}
        for name, relation in items:
            if name in store:
                raise SchemaError(f"duplicate relation name {name!r}")
            store[name] = relation
        self._relations = store

    # -- container protocol -------------------------------------------------

    def __getitem__(self, name: str) -> Relation:
        try:
            return self._relations[name]
        except KeyError:
            raise SchemaError(
                f"unknown relation {name!r}; database has {list(self._relations)}"
            ) from None

    def __contains__(self, name: object) -> bool:
        return name in self._relations

    def __iter__(self) -> Iterator[str]:
        return iter(self._relations)

    def __len__(self) -> int:
        return len(self._relations)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Database):
            return NotImplemented
        return self._relations == other._relations

    def __hash__(self) -> int:
        return hash(frozenset(self._relations.items()))

    def __repr__(self) -> str:
        parts = ", ".join(f"{n}[{len(r)}]" for n, r in self._relations.items())
        return f"Database({parts})"

    # -- queries -------------------------------------------------------------

    @property
    def names(self) -> tuple[str, ...]:
        """Relation names, in declaration order."""
        return tuple(self._relations)

    def schema(self, name: str) -> Schema:
        """The schema of relation *name*."""
        return self[name].schema

    def schemas(self) -> dict[str, Schema]:
        """Mapping of every relation name to its schema."""
        return {name: rel.schema for name, rel in self._relations.items()}

    def items(self) -> Iterator[tuple[str, Relation]]:
        return iter(self._relations.items())

    def active_domain(self) -> frozenset[object]:
        """All values appearing in any relation of the database."""
        values: set[object] = set()
        for relation in self._relations.values():
            values |= relation.active_domain()
        return frozenset(values)

    # -- construction of derived databases ------------------------------------

    def with_relation(self, name: str, relation: Relation) -> "Database":
        """A new database (of the same class) with *name* added or replaced."""
        store = dict(self._relations)
        store[name] = relation
        return type(self)(store)

    def without_relation(self, name: str) -> "Database":
        """A new database (of the same class) with *name* removed."""
        self[name]
        return type(self)((n, r) for n, r in self._relations.items() if n != name)
