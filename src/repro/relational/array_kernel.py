"""Array kernel: numpy column storage for the inline hot path.

``REPRO_KERNEL=array`` selects this third execution kernel: an
:class:`ArrayRelation` subclasses :class:`ColumnarRelation` but stores
each attribute as a numpy array wrapped in a :class:`_Column`, so the
operators the inline evaluator leans on become whole-array passes —

* selection compiles the predicate tree to one boolean mask
  (comparisons are elementwise array ops with the same best-effort
  ``TypeError → False`` semantics as the row closures);
* ``mask``/``difference``/semijoins reduce to integer *row codes* —
  per-column factorizations combined into one int64 key per row — and a
  single ``np.isin`` membership pass;
* deduplication (projection, union) is ``np.unique`` over row codes
  instead of a per-row ``dict.fromkeys`` pass;
* ``cert`` counting is ``np.bincount`` over one column's codes;
* column aliasing (``copy_attribute``, alias-dropping projections)
  stays O(1): a :class:`_Column` object is shared, never copied.

Dtype tightening is deliberately strict: a column becomes ``int64``,
``float64``, ``bool_`` or ``U<k>`` only when *every* value has exactly
that Python type (and no trailing-NUL string, no NaN, no out-of-range
int would round-trip wrongly); anything else — PAD sentinels, ``None``,
mixed types — stays a Python ``object`` array holding the original
values. Rows materialize through ``ndarray.tolist()``, so the kernel
never leaks numpy scalars into row tuples.

numpy is an optional dependency: the kernel registers unconditionally
(``array`` is always a valid name) but raises a clear
:class:`EvaluationError` at selection time when numpy is missing.
Cross-kernel conversion (:func:`as_array`) is cached on the source
:class:`Relation` via its ``_array`` slot, mirroring ``as_columnar``.
"""

from __future__ import annotations

from itertools import repeat
from typing import Iterable, Iterator, Sequence

try:  # pragma: no cover - exercised via the numpy-absent tests
    import numpy as np
except ImportError:  # pragma: no cover
    np = None  # type: ignore[assignment]

from repro.errors import EvaluationError, SchemaError
from repro.relational.guards import checkpoint
from repro.relational.columnar import (
    ColumnarRelation,
    KernelOps,
    _transpose,
    as_columnar,
)
from repro.relational.predicates import (
    And,
    Attr,
    Comparison,
    Const,
    Not,
    Or,
    Predicate,
    _Boolean,
)
from repro.relational.relation import Relation, Row, check_join_pairs_cover_shared
from repro.relational.schema import Schema

#: Largest per-row key the multiply-add code combiner may reach before
#: it compresses through np.unique (headroom below int64 overflow).
_CODE_LIMIT = 1 << 62


def have_numpy() -> bool:
    """Whether numpy is importable (the array kernel's one dependency)."""
    return np is not None


def _require_numpy() -> None:
    if np is None:
        raise EvaluationError(
            "the array kernel requires numpy, which is not installed; "
            "install numpy or select REPRO_KERNEL=columnar|tuple"
        )


# -- typed column storage -----------------------------------------------------------


class _Column:
    """One attribute's values as a numpy array, plus cached factorization.

    ``codes()`` assigns each distinct value an integer in ``[0, nuniq)``
    (dict-based for object arrays — Python equality, so ``1``/``1.0``/
    ``True`` collapse exactly like they do in a row-tuple set — and
    ``np.unique`` for typed arrays). Codes and the decode table survive
    gathers (:meth:`take`), so a session's base columns factorize once.
    """

    __slots__ = ("values", "_codes", "_nuniq", "_uniques")

    def __init__(self, values) -> None:
        self.values = values
        self._codes = None
        self._nuniq = 0
        self._uniques = None

    @classmethod
    def from_values(cls, column: list) -> "_Column":
        """Type-tighten a Python value list into the narrowest safe array."""
        kinds = set(map(type, column))
        if kinds == {int}:
            try:
                return cls(np.array(column, dtype=np.int64))
            except OverflowError:
                pass
        elif kinds == {float}:
            values = np.array(column, dtype=np.float64)
            if not np.isnan(values).any():
                # NaN stays object: two NaN objects are distinct row
                # values under Python's identity-then-equality model,
                # which float64 uniqueness would collapse.
                return cls(values)
        elif kinds == {str}:
            # Factorize first: one dict pass plus a gather from the
            # (small) unique table beats numpy's per-element U
            # conversion by an order of magnitude on multi-million-row
            # columns, and the codes come out pre-cached for free.
            mapping: dict = {}
            fresh_code = mapping.setdefault
            codes = np.array(
                [fresh_code(value, len(mapping)) for value in column],
                dtype=np.int64,
            )
            uniques = list(mapping)
            if not any(value[-1:] == "\x00" for value in uniques):
                # Trailing NULs would silently truncate in a U array
                # (checked over the uniques only — cheap).
                uarr = np.array(uniques, dtype=np.str_)
                fresh = cls(uarr[codes] if len(uniques) else uarr)
                fresh._codes = codes
                fresh._nuniq = len(uniques)
                fresh._uniques = uarr
                return fresh
        elif kinds == {bool}:
            return cls(np.array(column, dtype=np.bool_))
        values = np.empty(len(column), dtype=object)
        values[:] = column
        return cls(values)

    def __len__(self) -> int:
        return len(self.values)

    def codes(self):
        """The int64 factorization codes (cached)."""
        if self._codes is None:
            values = self.values
            if values.dtype == object:
                mapping: dict = {}
                fresh_code = mapping.setdefault
                self._codes = np.array(
                    [
                        fresh_code(value, len(mapping))
                        for value in values.tolist()
                    ],
                    dtype=np.int64,
                )
                self._nuniq = len(mapping)
                self._uniques = list(mapping)
            elif (
                values.dtype == np.int64
                and len(values)
                and (span := _dense_span(values)) is not None
            ):
                # Dense ints (world ids above all): shift-coding is O(n)
                # where np.unique pays an argsort. Codes stay in
                # [0, nuniq) but need not be contiguous — every consumer
                # treats nuniq as a domain bound, not a distinct count.
                vmin, width = span
                self._codes = values - vmin
                self._nuniq = width
                self._uniques = np.arange(vmin, vmin + width, dtype=np.int64)
            else:
                uniques, inverse = np.unique(values, return_inverse=True)
                self._codes = inverse.astype(np.int64, copy=False)
                self._nuniq = len(uniques)
                self._uniques = uniques
        return self._codes

    @property
    def nuniq(self) -> int:
        self.codes()
        return self._nuniq

    def decode(self, codes) -> list:
        """Python values for an array of this column's codes."""
        uniques = self._uniques
        if isinstance(uniques, list):
            return [uniques[code] for code in codes.tolist()]
        return uniques[codes].tolist()

    def take(self, selector) -> "_Column":
        """The column gathered by a boolean mask or index array."""
        column = _Column(self.values[selector])
        if self._codes is not None:
            column._codes = self._codes[selector]
            column._nuniq = self._nuniq
            column._uniques = self._uniques
        return column

    def tolist(self) -> list:
        return self.values.tolist()


def _concat_columns(left: _Column, right: _Column) -> _Column:
    """Stack two columns, falling back to object on any kind mismatch."""
    lv, rv = left.values, right.values
    if lv.dtype != object and rv.dtype != object and lv.dtype.kind == rv.dtype.kind:
        return _Column(np.concatenate([lv, rv]))
    merged = np.empty(len(lv) + len(rv), dtype=object)
    merged[: len(lv)] = lv.tolist()
    merged[len(lv) :] = rv.tolist()
    return _Column(merged)


def _const_fits(dtype, value) -> bool:
    """Whether writing *value* into an array of *dtype* is lossless."""
    kind = dtype.kind
    cls = type(value)
    if kind == "i":
        return cls is int and -(1 << 63) <= value < (1 << 63)
    if kind == "f":
        return cls is float and value == value  # NaN stays object
    if kind == "b":
        return cls is bool
    if kind == "U":
        return (
            cls is str
            and len(value) * 4 <= dtype.itemsize
            and not value.endswith("\x00")
        )
    return False


def _assign_const(column: _Column, mask, value) -> _Column:
    """*column* with *value* written at the masked positions.

    Keeps the dtype when the value fits (widening U strings rather
    than dropping to object), and seeds the fresh column's
    factorization from the source's cached codes — a rewritten column
    then deduplicates without another full :func:`np.unique` pass.
    """
    values = column.values
    kind = values.dtype.kind
    if values.dtype != object and _const_fits(values.dtype, value):
        fresh_values = values.copy()
        fresh_values[mask] = value
    elif (
        kind == "U"
        and type(value) is str
        and not value.endswith("\x00")
    ):
        wide = np.dtype(f"<U{max(len(value), values.dtype.itemsize // 4)}")
        fresh_values = values.astype(wide)
        fresh_values[mask] = value
    else:
        fresh_values = np.empty(len(values), dtype=object)
        fresh_values[:] = values.tolist()
        fresh_values[mask] = value
    fresh = _Column(fresh_values)
    if column._codes is not None:
        uniques = column._uniques
        code = -1
        if isinstance(uniques, list):
            try:
                code = uniques.index(value)
            except ValueError:
                uniques = uniques + [value]
                code = len(uniques) - 1
        else:
            try:
                hits = np.flatnonzero(uniques == value)
            except (TypeError, OverflowError):  # pragma: no cover - np quirk
                hits = ()
            if len(hits):
                code = int(hits[0])
            else:
                try:
                    uniques = np.concatenate(
                        [uniques, np.array([value])]
                    )
                    code = len(uniques) - 1
                except (TypeError, ValueError, OverflowError):
                    code = -1  # incompatible uniques dtype: factorize fresh
        if code >= 0:
            codes = column._codes.copy()
            codes[mask] = code
            fresh._codes = codes
            fresh._nuniq = max(column._nuniq, code + 1)
            fresh._uniques = uniques
    return fresh


def _assign_column(target: _Column, mask, source: _Column) -> _Column:
    """*target* with *source*'s values copied at the masked positions."""
    tv, sv = target.values, source.values
    if tv.dtype == sv.dtype != object and tv.dtype.kind != "U":
        fresh = tv.copy()
        fresh[mask] = sv[mask]
        return _Column(fresh)
    if tv.dtype.kind == "U" and sv.dtype.kind == "U":
        fresh = tv.astype(np.result_type(tv.dtype, sv.dtype))
        fresh[mask] = sv[mask]
        return _Column(fresh)
    fresh = np.empty(len(tv), dtype=object)
    fresh[:] = tv.tolist()
    fresh[mask] = sv[mask].astype(object)
    return _Column(fresh)


def _dense_span(values, extra: int = 0):
    """``(vmin, width)`` when an int64 array's value range is narrow
    enough for O(n) shift-coding; ``None`` sends the caller to the
    ``np.unique`` argsort path. *extra* widens the size budget (for the
    two-array joint case)."""
    vmin = int(values.min())
    width = int(values.max()) - vmin + 1
    if width <= 4 * (len(values) + extra) + 1024:
        return vmin, width
    return None


def _pair_codes(left: _Column, right: _Column):
    """Jointly factorize two columns: ``(left_codes, right_codes, nuniq)``.

    Values equal under Python semantics get equal codes even across
    arrays (mixed kinds route through a dict pass, so ``1 == 1.0 ==
    True`` holds exactly as it does for row tuples).
    """
    lv, rv = left.values, right.values
    n = len(lv)
    if lv.dtype == np.int64 and rv.dtype == np.int64 and n and len(rv):
        vmin = min(int(lv.min()), int(rv.min()))
        width = max(int(lv.max()), int(rv.max())) - vmin + 1
        if width <= 4 * (n + len(rv)) + 1024:
            return lv - vmin, rv - vmin, width
    if (
        left._codes is not None
        and right._codes is not None
        and left._nuniq + right._nuniq <= n + len(rv)
    ):
        # Both sides already factorized: merge the two (small) unique
        # tables with a dict pass (Python equality, same semantics as
        # the all-values fallback below) and remap the cached codes
        # through lookup arrays — O(nuniq) instead of re-uniquing
        # millions of values.
        mapping = {}
        luts = []
        for uniques in (left._uniques, right._uniques):
            table = uniques if isinstance(uniques, list) else uniques.tolist()
            lut = np.empty(len(table), dtype=np.int64)
            for where, value in enumerate(table):
                code = mapping.get(value, -1)
                if code < 0:
                    code = len(mapping)
                    mapping[value] = code
                lut[where] = code
            luts.append(lut)
        return luts[0][left._codes], luts[1][right._codes], len(mapping)
    if lv.dtype != object and rv.dtype != object and lv.dtype.kind == rv.dtype.kind:
        merged = np.concatenate([lv, rv])
        uniques, inverse = np.unique(merged, return_inverse=True)
        inverse = inverse.astype(np.int64, copy=False)
        return inverse[:n], inverse[n:], len(uniques)
    mapping: dict = {}
    fresh_code = mapping.setdefault
    out = np.array(
        [
            fresh_code(value, len(mapping))
            for value in lv.tolist() + rv.tolist()
        ],
        dtype=np.int64,
    )
    return out[:n], out[n:], len(mapping)


def _combine_codes(first, pairs):
    """Fold per-column code pairs into one int64 row key per side.

    ``first`` is the initial ``(left, right, nuniq)`` triple; *pairs*
    the remaining ones. Compresses through ``np.unique`` whenever the
    multiply-add key would overflow 62 bits. Returns
    ``(left_keys, right_keys, domain)`` — *domain* bounds the key
    values, letting consumers pick O(n) scatter passes over argsorts.
    """
    code_l, code_r, size = first
    for cl, cr, k in pairs:
        k = max(k, 1)
        if size > _CODE_LIMIT // k:
            merged = np.concatenate([code_l, code_r])
            uniques, inverse = np.unique(merged, return_inverse=True)
            inverse = inverse.astype(np.int64, copy=False)
            code_l, code_r = inverse[: len(code_l)], inverse[len(code_l) :]
            size = len(uniques)
            if size > _CODE_LIMIT // k:  # pragma: no cover - 2^62 distinct rows
                raise EvaluationError("row key domain exceeds the array kernel")
        code_l = code_l * k + cl
        code_r = code_r * k + cr
        size *= k
    return code_l, code_r, size


def _first_rows(code, domain):
    """Row-ordered first-occurrence indices of each distinct key.

    With a narrow *domain* this is one reverse scatter (last write per
    slot = first occurrence) instead of ``np.unique``'s argsort.
    """
    n = len(code)
    if domain <= 4 * n + 1024:
        first = np.full(domain, -1, dtype=np.int64)
        first[code[::-1]] = np.arange(n - 1, -1, -1, dtype=np.int64)
        first = first[first >= 0]
    else:
        _, first = np.unique(code, return_index=True)
    first.sort()
    return first


def _member_mask(code, pool, domain):
    """Which entries of *code* appear in *pool* (both key arrays)."""
    if domain <= 4 * (len(code) + len(pool)) + 1024:
        seen = np.zeros(domain, dtype=bool)
        seen[pool] = True
        return seen[code]
    return np.isin(code, pool)


def _distinct_count(code, domain) -> int:
    """The number of distinct keys in *code*."""
    if domain <= 4 * len(code) + 1024:
        seen = np.zeros(domain, dtype=bool)
        seen[code] = True
        return int(seen.sum())
    return len(np.unique(code))


class ArrayRelation(ColumnarRelation):
    """A distinct relation stored as numpy columns.

    Inherits the full operator surface of :class:`ColumnarRelation`
    (any operator without an array override runs the row path and still
    returns an ``ArrayRelation`` via the ``type(self)``-based trusted
    constructors); the overrides below replace the hot loops with
    whole-array passes. At least one of ``_row_list``/``_columns``/
    ``_acols`` is always populated; the others build lazily.
    """

    __slots__ = ("_acols",)

    # -- constructors and views ----------------------------------------------

    @classmethod
    def _blank(cls, schema: Schema, nrows: int) -> "ArrayRelation":
        relation = super()._blank(schema, nrows)
        relation._acols = None
        return relation

    @classmethod
    def _share(cls, source: ColumnarRelation, schema: Schema) -> "ArrayRelation":
        relation = super()._share(source, schema)
        acols = getattr(source, "_acols", None)
        if acols is None and isinstance(source, ArrayRelation):
            # Build on the *source* so a cached conversion twin keeps the
            # typed columns — a rename of a lazy twin would otherwise
            # materialize onto the throwaway copy on every evaluation.
            acols = source.arrays()
        relation._acols = acols
        return relation

    @classmethod
    def _from_acols(
        cls, schema: Schema, acols: Sequence[_Column], nrows: int
    ) -> "ArrayRelation":
        """Trusted constructor: *acols* must hold distinct aligned rows."""
        relation = cls._blank(schema, nrows)
        relation._acols = tuple(acols)
        return relation

    def arrays(self) -> tuple[_Column, ...]:
        """The typed column storage (built lazily from rows)."""
        if self._acols is None:
            width = len(self.schema)
            if width == 0:
                self._acols = ()
            elif self._columns is not None:
                self._acols = tuple(
                    _Column.from_values(list(c)) for c in self._columns
                )
            elif self._row_list:
                self._acols = tuple(
                    _Column.from_values(list(c)) for c in zip(*self._row_list)
                )
            else:
                self._acols = tuple(
                    _Column.from_values([]) for _ in range(width)
                )
        return self._acols

    def row_list(self) -> list[Row]:
        if self._row_list is None and self._columns is None:
            if len(self.schema) == 0:
                self._row_list = [()] * self._nrows
            else:
                self._row_list = list(
                    zip(*(c.tolist() for c in self._acols))
                )
        return super().row_list()

    @property
    def columns(self) -> tuple[tuple, ...]:
        if self._columns is None:
            if self._row_list is not None:
                self._columns = _transpose(self._row_list, len(self.schema))
            else:
                self._columns = tuple(
                    tuple(c.tolist()) for c in (self._acols or ())
                )
        return self._columns

    def column_values(self, attribute: str):
        if self._columns is None and self._row_list is None:
            return self._acols[self.schema.index(attribute)].tolist()
        return super().column_values(attribute)

    def tuples(self, attributes: Sequence[str]) -> Iterator[tuple]:
        if self._columns is None and self._row_list is None:
            if not attributes:
                return repeat((), self._nrows)
            schema = self.schema
            return zip(
                *(self._acols[schema.index(a)].tolist() for a in attributes)
            )
        return super().tuples(attributes)

    def to_relation(self) -> Relation:
        if self._twin is None:
            if self._rowset is not None:
                twin = Relation._raw(self.schema, self._rowset)
            else:
                twin = Relation._from_kernel(self.schema)
            twin._array = self
            self._twin = twin
        return self._twin

    def __repr__(self) -> str:
        return f"ArrayRelation({list(self.schema)!r}, {self._nrows} rows)"

    # -- row codes ------------------------------------------------------------

    def _take(self, selector) -> "ArrayRelation":
        """Gather by boolean mask or index array (codes survive)."""
        acols = self.arrays()
        if not acols:
            if selector.dtype == np.bool_:
                n = int(selector.sum())
            else:
                n = len(selector)
            return type(self)._from_rows(self.schema, [()] if n else [])
        taken = tuple(c.take(selector) for c in acols)
        return type(self)._from_acols(self.schema, taken, len(taken[0]))

    def _row_codes(self, positions: Sequence[int]):
        """``(keys, domain)``: one int64 key per row over *positions*."""
        acols = self.arrays()
        code = None
        size = 1
        for p in positions:
            col = acols[p]
            c = col.codes()
            k = max(col._nuniq, 1)
            if code is None:
                code, size = c, k
                continue
            if size > _CODE_LIMIT // k:
                uniques, inverse = np.unique(code, return_inverse=True)
                code = inverse.astype(np.int64, copy=False)
                size = len(uniques)
            code = code * k + c
            size *= k
        if code is None:
            code = np.zeros(self._nrows, dtype=np.int64)
        return code, size

    def _stacked_row_codes(
        self,
        other: "ArrayRelation",
        positions: Sequence[int] | None = None,
        other_positions: Sequence[int] | None = None,
    ):
        """``(self_keys, other_keys, domain)`` — jointly factorized row
        keys for self vs *other* (aligned attrs)."""
        if positions is None:
            positions = range(len(self.schema))
            other_positions = range(len(other.schema))
        acols, ocols = self.arrays(), other.arrays()
        pairs = [
            _pair_codes(acols[p], ocols[q])
            for p, q in zip(positions, other_positions)
        ]
        if not pairs:
            return (
                np.zeros(self._nrows, dtype=np.int64),
                np.zeros(len(other), dtype=np.int64),
                1,
            )
        return _combine_codes(pairs[0], pairs[1:])

    def _aligned_array(self, other: "ColumnarRelation | Relation") -> "ArrayRelation":
        """*other* as an ArrayRelation in this relation's attribute order."""
        if isinstance(other, ArrayRelation):
            aligned = other
        elif isinstance(other, ColumnarRelation):
            aligned = ArrayRelation._from_rows(other.schema, other.row_list())
        else:
            aligned = as_array(other)
        return aligned._reordered(self.schema.attributes)

    def _operand_columns(
        self, other: "ColumnarRelation | Relation", attributes: Sequence[str]
    ) -> list[_Column]:
        """*other*'s columns for *attributes*, as typed arrays."""
        if isinstance(other, ArrayRelation):
            ocols = other.arrays()
            return [ocols[other.schema.index(a)] for a in attributes]
        source = as_columnar(other)
        return [
            _Column.from_values(list(source.column_values(a)))
            for a in attributes
        ]

    # -- vectorized operators --------------------------------------------------

    def _reordered(self, attributes: Sequence[str]) -> "ArrayRelation":
        positions = self.schema.indices(attributes)
        if positions == tuple(range(len(self.schema))):
            return self
        if self._acols is None and self._columns is not None:
            return super()._reordered(attributes)
        acols = self.arrays()
        return type(self)._from_acols(
            Schema(attributes), tuple(acols[p] for p in positions), self._nrows
        )

    def project(self, attributes: Sequence[str]) -> "ArrayRelation":
        checkpoint("project", self._nrows)
        schema = self.schema.project(attributes)
        positions = self.schema.indices(attributes)
        if positions == tuple(range(len(self.schema))):
            return type(self)._share(self, schema)
        if len(positions) == len(self.schema):
            return self._reordered(attributes)
        if not positions:
            return type(self)._from_rows(schema, [()] if self._nrows else [])
        storage = self._acols if self._acols is not None else self._columns
        if storage is not None:
            kept = set(positions)
            kept_objects = {id(storage[p]) for p in positions}
            if all(
                id(storage[q]) in kept_objects
                for q in range(len(storage))
                if q not in kept
            ):
                # Every dropped column aliases a kept one: rows stay
                # distinct, so this is a zero-copy column selection.
                if self._acols is not None:
                    return type(self)._from_acols(
                        schema,
                        tuple(self._acols[p] for p in positions),
                        self._nrows,
                    )
                return type(self)._from_columns(
                    schema,
                    tuple(self._columns[p] for p in positions),
                    self._nrows,
                )
        code, domain = self._row_codes(positions)
        first = _first_rows(code, domain)
        acols = self.arrays()
        if len(first) == self._nrows:
            return type(self)._from_acols(
                schema, tuple(acols[p] for p in positions), self._nrows
            )
        return type(self)._from_acols(
            schema, tuple(acols[p].take(first) for p in positions), len(first)
        )

    def copy_attribute(self, source: str, target: str) -> "ArrayRelation":
        if target in self.schema:
            raise SchemaError(f"attribute {target!r} already exists")
        position = self.schema.index(source)
        acols = self.arrays()
        return type(self)._from_acols(
            Schema(self.schema.attributes + (target,)),
            acols + (acols[position],),
            self._nrows,
        )

    def _check_aligned(self, other: "ColumnarRelation | Relation", op: str) -> None:
        if not self.schema.same_attributes(other.schema):
            raise SchemaError(
                f"{op} operands must have equal attribute sets; "
                f"got {list(self.schema)} vs {list(other.schema)}"
            )

    def union(self, other: "ColumnarRelation | Relation") -> "ArrayRelation":
        self._check_aligned(other, "union")
        checkpoint("union", self._nrows + len(other))
        if len(other) == 0:
            return self
        aligned = self._aligned_array(other)
        if self._nrows == 0:
            return aligned
        acols, ocols = self.arrays(), aligned.arrays()
        merged = tuple(
            _concat_columns(a, b) for a, b in zip(acols, ocols)
        )
        combined = type(self)._from_acols(
            self.schema, merged, self._nrows + len(aligned)
        )
        code, domain = combined._row_codes(range(len(self.schema)))
        first = _first_rows(code, domain)
        if len(first) == len(combined):
            return combined
        return combined._take(first)

    def difference(self, other: "ColumnarRelation | Relation") -> "ArrayRelation":
        self._check_aligned(other, "difference")
        checkpoint("difference", self._nrows + len(other))
        if len(other) == 0 or self._nrows == 0:
            return self
        aligned = self._aligned_array(other)
        codes_s, codes_o, domain = self._stacked_row_codes(aligned)
        keep = ~_member_mask(codes_s, codes_o, domain)
        if keep.all():
            return self
        return self._take(keep)

    def intersection(self, other: "ColumnarRelation | Relation") -> "ArrayRelation":
        self._check_aligned(other, "intersection")
        checkpoint("intersection", self._nrows + len(other))
        if len(other) == 0 or self._nrows == 0:
            return type(self)._from_rows(self.schema, [])
        aligned = self._aligned_array(other)
        codes_s, codes_o, domain = self._stacked_row_codes(aligned)
        keep = _member_mask(codes_s, codes_o, domain)
        if keep.all():
            return self
        return self._take(keep)

    def join_on(
        self, other: "ColumnarRelation | Relation", pairs: Sequence[tuple[str, str]]
    ) -> "ArrayRelation":
        if not pairs:
            return self.product(other)
        left_set = self.schema.as_set()
        check_join_pairs_cover_shared(left_set, other.schema, pairs)
        right_rest = tuple(
            i for i, a in enumerate(other.schema) if a not in left_set
        )
        if right_rest:
            # General join: the row-path build/probe (still returns an
            # ArrayRelation through the type(self) constructors).
            return super().join_on(other, pairs)
        # Right side is pure key: the join degenerates to a semijoin
        # (the answer ⋈ world-projection pattern of the lazy §5.3 form)
        # — one joint factorization and one np.isin pass.
        return self._semijoin_on(
            other,
            tuple(a for a, _ in pairs),
            tuple(b for _, b in pairs),
            keep_matching=True,
        )

    def _semijoin_on(
        self,
        other: "ColumnarRelation | Relation",
        left_attrs: Sequence[str],
        right_attrs: Sequence[str],
        keep_matching: bool,
    ) -> "ArrayRelation":
        checkpoint("semijoin", self._nrows + len(other))
        positions = self.schema.indices(left_attrs)
        acols = self.arrays()
        ocols = self._operand_columns(other, right_attrs)
        col_pairs = [
            _pair_codes(acols[p], ocol) for p, ocol in zip(positions, ocols)
        ]
        if not col_pairs:
            codes_s = np.zeros(self._nrows, dtype=np.int64)
            codes_o = np.zeros(len(other), dtype=np.int64)
            domain = 1
        else:
            codes_s, codes_o, domain = _combine_codes(col_pairs[0], col_pairs[1:])
        keep = _member_mask(codes_s, codes_o, domain)
        if not keep_matching:
            keep = ~keep
        if keep.all():
            return self
        return self._take(keep)

    def semijoin(self, other: "ColumnarRelation | Relation") -> "ArrayRelation":
        common = self.schema.common(other.schema)
        if not common:
            return self if len(other) else type(self)._from_rows(self.schema, [])
        return self._semijoin_on(other, common, common, keep_matching=True)

    def antijoin(self, other: "ColumnarRelation | Relation") -> "ArrayRelation":
        common = self.schema.common(other.schema)
        if not common:
            return type(self)._from_rows(self.schema, []) if len(other) else self
        return self._semijoin_on(other, common, common, keep_matching=False)

    def mask(
        self,
        matched: "ColumnarRelation | Relation",
        attributes: Sequence[str] | None = None,
    ) -> "ArrayRelation":
        attrs = (
            tuple(attributes) if attributes is not None else self.schema.attributes
        )
        self.schema.indices(attrs)  # validate eagerly, like the twins
        if len(matched) == 0 or self._nrows == 0:
            return self
        return self._semijoin_on(matched, attrs, attrs, keep_matching=False)

    # -- vectorized selection ---------------------------------------------------

    def select(self, predicate: Predicate) -> "ArrayRelation":
        selector = self._predicate_mask(predicate)
        if selector is None:
            return super().select(predicate)
        checkpoint("select", self._nrows)
        if selector.all():
            return self
        return self._take(selector)

    def _predicate_mask(self, predicate: Predicate):
        """Predicate → boolean mask, or None when only the row path fits.

        Covers comparisons over attributes and constants plus
        and/or/not and TRUE/FALSE — the closure semantics are matched
        exactly (mixed-type comparisons are elementwise False, ``!=``
        elementwise True; no translatable predicate can raise, so
        short-circuit evaluation is unobservable). Arithmetic terms,
        PAD-defaulting reads and scalar guards (which may raise) and
        object-dtype columns fall back by returning None.
        """
        if isinstance(predicate, Comparison):
            return self._compare_mask(predicate)
        if isinstance(predicate, And):
            left = self._predicate_mask(predicate.left)
            if left is None:
                return None
            right = self._predicate_mask(predicate.right)
            if right is None:
                return None
            return left & right
        if isinstance(predicate, Or):
            left = self._predicate_mask(predicate.left)
            if left is None:
                return None
            right = self._predicate_mask(predicate.right)
            if right is None:
                return None
            return left | right
        if isinstance(predicate, Not):
            inner = self._predicate_mask(predicate.operand)
            return None if inner is None else ~inner
        if isinstance(predicate, _Boolean):
            return self._const_mask(predicate.value)
        return None

    def _const_mask(self, value: bool):
        if value:
            return np.ones(self._nrows, dtype=np.bool_)
        return np.zeros(self._nrows, dtype=np.bool_)

    def _term_vector(self, term):
        """Term → ("col", _Column) | ("const", value) | None."""
        if isinstance(term, Attr):
            return ("col", self.arrays()[self.schema.index(term.name)])
        if isinstance(term, Const):
            return ("const", term.value)
        return None

    def _compare_mask(self, comparison: Comparison):
        left = self._term_vector(comparison.left)
        if left is None:
            return None
        right = self._term_vector(comparison.right)
        if right is None:
            return None
        op = comparison.op
        if left[0] == "const" and right[0] == "const":
            try:
                outcome = bool(_NP_OPS[op](left[1], right[1]))
            except TypeError:
                outcome = False
            return self._const_mask(outcome)
        if left[0] == "const":
            return self._column_mask(right[1], left[1], _FLIPPED[op])
        if right[0] == "const":
            return self._column_mask(left[1], right[1], op)
        return self._column_pair_mask(left[1], right[1], op)

    def _column_mask(self, column: _Column, constant, op: str):
        """col ⟨op⟩ const as one elementwise pass (op already oriented)."""
        values = column.values
        kind = values.dtype.kind
        if kind == "O":
            return None
        if kind in "ifb":
            compatible = isinstance(constant, (bool, int, float))
        else:  # U
            compatible = isinstance(constant, str)
        if not compatible:
            # The closure's TypeError → False net: mixed-type equality
            # is elementwise False, inequality elementwise True,
            # orderings False.
            return self._const_mask(op == "!=")
        try:
            return np.asarray(_NP_OPS[op](values, constant), dtype=np.bool_)
        except (TypeError, OverflowError):
            # e.g. an int beyond int64 — let the row path decide.
            return None

    def _column_pair_mask(self, left: _Column, right: _Column, op: str):
        lk, rk = left.values.dtype.kind, right.values.dtype.kind
        if lk == "O" or rk == "O":
            return None
        if (lk in "ifb") != (rk in "ifb"):
            return self._const_mask(op == "!=")
        try:
            return np.asarray(
                _NP_OPS[op](left.values, right.values), dtype=np.bool_
            )
        except TypeError:
            return None

    # -- DML kernel ops ---------------------------------------------------------

    def masked_assign(self, mask, settings) -> "ArrayRelation":
        """Rewrite columns under a boolean *mask* and dedup — the update kernel.

        *settings* is a sequence of ``(position, kind, payload)``
        triples: kind ``"const"`` writes a literal (*payload* is the
        value), kind ``"col"`` copies another column (*payload* is the
        source position). Untouched columns pass through by reference so
        their cached factorizations survive; a rewritten column keeps
        its dtype when the incoming values fit and widens to object
        otherwise. Rows that collide after the rewrite collapse to the
        first occurrence, exactly like the row pipeline's
        ``dict.fromkeys`` dedup.
        """
        checkpoint("masked_assign", self._nrows)
        acols = self.arrays()
        new_cols = list(acols)
        for position, kind, payload in settings:
            if kind == "const":
                new_cols[position] = _assign_const(acols[position], mask, payload)
            else:
                new_cols[position] = _assign_column(
                    acols[position], mask, acols[payload]
                )
        candidate = type(self)._from_acols(
            self.schema, tuple(new_cols), self._nrows
        )
        if not new_cols:
            return candidate
        codes, domain = candidate._row_codes(range(len(self.schema)))
        first = _first_rows(codes, domain)
        if len(first) == candidate._nrows:
            return candidate
        return candidate._take(first)

    def scatter_update(self, matches, setters) -> "ArrayRelation":
        matches = as_columnar(matches)
        if len(matches) == 0:
            # An empty *relation* is NOT a shortcut: a match row names a
            # target that need not be present, and its rewrite is still
            # produced (the tuple engine's Section 3 semantics).
            return self
        checkpoint("scatter_update", self._nrows + len(matches))
        positions = [self.schema.index(attribute) for attribute, _ in setters]
        functions = [function for _, function in setters]
        targets: list[Row] = []
        rewritten: list[Row] = []
        append = rewritten.append
        pairs = zip(matches.row_list(), matches.tuples(self.schema.attributes))
        if len(functions) == 1:
            position, function = positions[0], functions[0]
            tail = position + 1
            for match, target in pairs:
                targets.append(target)
                append(target[:position] + (function(match),) + target[tail:])
        else:
            for match, target in pairs:
                targets.append(target)
                new_row = list(target)
                for position, function in zip(positions, functions):
                    new_row[position] = function(match)
                append(tuple(new_row))
        kept = self.mask(
            type(self)._from_rows(self.schema, list(dict.fromkeys(targets)))
        )
        fresh = type(self)._from_rows(
            self.schema, list(dict.fromkeys(rewritten))
        )
        return fresh.union(kept)

    def append_broadcast(
        self,
        template: Sequence,
        id_positions: Sequence[int],
        id_rows: Sequence[tuple],
    ) -> "ArrayRelation":
        """Append *template* once per *id_rows* entry, ids patched in.

        The insert kernel for one value row replicated over world ids:
        value columns extend by a repeated constant, id columns by the
        id lists — no per-row tuples. The caller guarantees the
        additions are distinct from each other and from existing rows
        (``id_rows`` must already exclude claimed ids).
        """
        k = len(id_rows)
        if k == 0:
            return self
        checkpoint("append", self._nrows + k)
        width = len(self.schema)
        if width == 0:
            return type(self)._from_rows(self.schema, [()])
        by_id = {p: j for j, p in enumerate(id_positions)}
        columns = []
        for position in range(width):
            j = by_id.get(position)
            if j is None:
                values = [template[position]] * k
            else:
                values = [row[j] for row in id_rows]
            columns.append(_Column.from_values(values))
        merged = tuple(
            _concat_columns(a, b) for a, b in zip(self.arrays(), columns)
        )
        return type(self)._from_acols(self.schema, merged, self._nrows + k)

    def append(self, rows: Iterable[Row]) -> "ArrayRelation":
        additions = [row if isinstance(row, tuple) else tuple(row) for row in rows]
        width = len(self.schema)
        for row in additions:
            if len(row) != width:
                raise SchemaError(
                    f"appended row {row!r} has {len(row)} values; schema "
                    f"{list(self.schema)} expects {width}"
                )
        if not additions:
            return self
        if width == 0 or self._nrows == 0 or self._rowset is not None:
            return super().append(additions)
        checkpoint("append", self._nrows + len(additions))
        additions = list(dict.fromkeys(additions))
        incoming = ArrayRelation._from_rows(self.schema, additions)
        codes_s, codes_a, domain = self._stacked_row_codes(incoming)
        fresh_mask = ~_member_mask(codes_a, codes_s, domain)
        if not fresh_mask.any():
            return self
        fresh = incoming._take(fresh_mask)
        merged = tuple(
            _concat_columns(a, b) for a, b in zip(self.arrays(), fresh.arrays())
        )
        return type(self)._from_acols(
            self.schema, merged, self._nrows + len(fresh)
        )

    # -- cert counting -----------------------------------------------------------

    def certain_rows(self, attributes: Sequence[str], need: int) -> list[Row]:
        """π_attributes rows occurring in exactly *need* distinct rows.

        The ``cert``/``÷ W`` closing of the inline plan: with this
        relation holding distinct (world ids, value) rows, a value is
        certain iff its occurrence count equals the world count — one
        ``np.bincount`` over a single column's codes, or one
        ``np.unique`` with counts over the combined row codes.
        """
        positions = self.schema.indices(attributes)
        if len(positions) == 1:
            col = self.arrays()[positions[0]]
            codes = col.codes()
            counts = np.bincount(codes, minlength=col._nuniq)
            hits = np.flatnonzero(counts == need)
            if not len(hits):
                return []
            return [(value,) for value in col.decode(hits)]
        code, domain = self._row_codes(positions)
        if domain <= 4 * len(code) + 1024:
            counts = np.bincount(code, minlength=domain)
            first = np.full(domain, -1, dtype=np.int64)
            first[code[::-1]] = np.arange(len(code) - 1, -1, -1, dtype=np.int64)
            chosen = first[counts == need]
        else:
            _, first, counts = np.unique(
                code, return_index=True, return_counts=True
            )
            chosen = first[counts == need]
        if not len(chosen):
            return []
        acols = self.arrays()
        columns = [acols[p].values[chosen].tolist() for p in positions]
        return list(zip(*columns))


def missing_world_ids(
    table: ArrayRelation,
    table_positions: Sequence[int],
    world: ArrayRelation,
    world_positions: Sequence[int],
) -> list[tuple] | None:
    """Id tuples in *table* absent from *world*; ``None`` when all known.

    One joint factorization + ``np.isin`` pass — the vectorized form of
    ``set(tuples_of(table, ids)) <= set(tuples_of(world, ids))`` that
    representation validation runs on every commit.
    """
    codes_t, codes_w, domain = table._stacked_row_codes(
        world, table_positions, world_positions
    )
    missing = ~_member_mask(codes_t, codes_w, domain)
    if not missing.any():
        return None
    where = np.flatnonzero(missing)
    acols = table.arrays()
    columns = [acols[p].values[where].tolist() for p in table_positions]
    return sorted(set(zip(*columns)), key=repr)


# -- kernel conversion boundary ------------------------------------------------------


def as_array(relation: "Relation | ColumnarRelation") -> ArrayRelation:
    """The array-kernel view of *relation*, cached on the source object."""
    _require_numpy()
    if isinstance(relation, ArrayRelation):
        return relation
    if isinstance(relation, ColumnarRelation):
        relation = relation.to_relation()
    cached = relation._array
    if cached is None:
        cached = ArrayRelation._from_rows(relation.schema, list(relation.rows))
        cached._rowset = relation.rows
        cached._twin = relation
        relation._array = cached
    return cached


def _array_from_distinct_rows(schema, rows) -> ArrayRelation:
    return ArrayRelation._from_rows(
        schema, rows if isinstance(rows, list) else list(rows)
    )


def _array_unit() -> ArrayRelation:
    return ArrayRelation._from_rows(Schema(()), [()])


def array_kernel_ops() -> KernelOps:
    """The array kernel's :class:`KernelOps` (raises without numpy)."""
    _require_numpy()
    return KernelOps("array", as_array, _array_from_distinct_rows, _array_unit)


if np is not None:
    import operator as _operator

    _NP_OPS = {
        "=": _operator.eq,
        "!=": _operator.ne,
        "<": _operator.lt,
        "<=": _operator.le,
        ">": _operator.gt,
        ">=": _operator.ge,
    }
    #: const ⟨op⟩ col rewritten as col ⟨flipped op⟩ const.
    _FLIPPED = {"=": "=", "!=": "!=", "<": ">", "<=": ">=", ">": "<", ">=": "<="}
