"""Immutable set-semantics relations and their algebraic operations.

A :class:`Relation` is a schema plus a frozen set of rows (value tuples
aligned positionally with the schema). All operations are pure and
return new relations. The operation set covers the six base operators of
Section 4.1 (σ, π, δ, ×, ∪, −), the derived operators ∩, ⋈ and ÷, the
semijoin, and the padded left outer join ``=⊳⊲`` of Remark 5.5.

Joins on explicit equality conditions and the natural join use hash
partitioning so that the translation of Figure 6 (which is join-heavy on
world-id attributes) evaluates in near-linear time per operator.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Mapping, Sequence

from repro.errors import SchemaError
from repro.relational.pad import PAD, row_sort_key
from repro.relational.predicates import Predicate
from repro.relational.schema import Schema

Row = tuple


def _coerce_row(schema: Schema, row: object) -> Row:
    """Normalize a dict / sequence row to a positional tuple."""
    if isinstance(row, dict):
        missing = [a for a in schema if a not in row]
        if missing:
            raise SchemaError(f"row {row!r} is missing attributes {missing}")
        extra = [key for key in row if key not in schema]
        if extra:
            raise SchemaError(f"row {row!r} has unknown attributes {extra}")
        return tuple(row[a] for a in schema)
    values = tuple(row)  # type: ignore[arg-type]
    if len(values) != len(schema):
        raise SchemaError(
            f"row {values!r} has {len(values)} values; schema {list(schema)} "
            f"expects {len(schema)}"
        )
    return values


class Relation:
    """An immutable relation: a schema and a frozen set of rows."""

    __slots__ = ("schema", "rows")

    def __init__(self, schema: Schema | Sequence[str], rows: Iterable[object] = ()) -> None:
        if not isinstance(schema, Schema):
            schema = Schema(schema)
        self.schema = schema
        self.rows: frozenset[Row] = frozenset(_coerce_row(schema, row) for row in rows)

    # -- constructors --------------------------------------------------------

    @staticmethod
    def empty(attributes: Sequence[str]) -> "Relation":
        """An empty relation over *attributes*."""
        return Relation(attributes, ())

    @staticmethod
    def unit() -> "Relation":
        """The nullary relation {⟨⟩}: one empty tuple, zero attributes.

        This is the world table ``W = {⟨⟩}`` that encodes a single
        (complete) world in Definition 5.1.
        """
        return Relation((), ((),))

    @staticmethod
    def from_named_rows(rows: Iterable[Mapping[str, object]], attributes: Sequence[str]) -> "Relation":
        """Build a relation from dict rows with an explicit attribute order."""
        return Relation(attributes, rows)

    # -- container protocol --------------------------------------------------

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self.rows)

    def __contains__(self, row: object) -> bool:
        return row in self.rows

    def __bool__(self) -> bool:
        return bool(self.rows)

    def __eq__(self, other: object) -> bool:
        """Structural equality: same attribute set and same tuples.

        Attribute *order* is irrelevant (named perspective): the rows of
        the other relation are compared after aligning its columns.
        """
        if not isinstance(other, Relation):
            return NotImplemented
        if self.schema == other.schema:
            return self.rows == other.rows
        if not self.schema.same_attributes(other.schema):
            return False
        aligned = other._reordered(self.schema.attributes)
        return self.rows == aligned.rows

    def __hash__(self) -> int:
        canonical_attrs = tuple(sorted(self.schema.attributes))
        canonical = self._reordered(canonical_attrs) if canonical_attrs != self.schema.attributes else self
        return hash((canonical_attrs, canonical.rows))

    def __repr__(self) -> str:
        return f"Relation({list(self.schema)!r}, {len(self.rows)} rows)"

    def sorted_rows(self) -> list[Row]:
        """Rows in a deterministic display order."""
        return sorted(self.rows, key=row_sort_key)

    def named_rows(self) -> list[dict[str, object]]:
        """Rows as attribute-name dictionaries (deterministic order)."""
        attrs = self.schema.attributes
        return [dict(zip(attrs, row)) for row in self.sorted_rows()]

    def _reordered(self, attributes: Sequence[str]) -> "Relation":
        """The same relation with columns in the given order."""
        positions = self.schema.indices(attributes)
        return Relation(attributes, (tuple(row[p] for p in positions) for row in self.rows))

    # -- unary operators -------------------------------------------------------

    def select(self, predicate: Predicate) -> "Relation":
        """Selection σ_φ: keep rows satisfying *predicate*."""
        check = predicate.bind(self.schema)
        return Relation(self.schema, (row for row in self.rows if check(row)))

    def select_values(self, assignment: Mapping[str, object]) -> "Relation":
        """Selection σ_{A=v,...} for a constant assignment (fast path)."""
        positions = [(self.schema.index(a), v) for a, v in assignment.items()]
        return Relation(
            self.schema,
            (row for row in self.rows if all(row[p] == v for p, v in positions)),
        )

    def project(self, attributes: Sequence[str]) -> "Relation":
        """Projection π_U with set-semantics deduplication."""
        schema = self.schema.project(attributes)
        positions = self.schema.indices(attributes)
        return Relation(schema, (tuple(row[p] for p in positions) for row in self.rows))

    def rename(self, mapping: Mapping[str, str]) -> "Relation":
        """Renaming δ_{old→new}; value tuples are unchanged."""
        return Relation(self.schema.rename(mapping), self.rows)

    def extend(self, attribute: str, function: Callable[[dict[str, object]], object]) -> "Relation":
        """Append a computed attribute (used by I-SQL expressions).

        *function* receives the row as a dict and returns the new value.
        Not part of world-set algebra proper; the Figure 6 translation
        only ever copies existing attributes (see :meth:`copy_attribute`).
        """
        if attribute in self.schema:
            raise SchemaError(f"attribute {attribute!r} already exists")
        attrs = self.schema.attributes
        schema = Schema(attrs + (attribute,))
        rows = (row + (function(dict(zip(attrs, row))),) for row in self.rows)
        return Relation(schema, rows)

    def copy_attribute(self, source: str, target: str) -> "Relation":
        """π_{*, source as target}: duplicate a column under a new name.

        This is the ``π_{*,Dep as V_Dep}`` step of Example 5.6.
        """
        if target in self.schema:
            raise SchemaError(f"attribute {target!r} already exists")
        position = self.schema.index(source)
        schema = Schema(self.schema.attributes + (target,))
        return Relation(schema, (row + (row[position],) for row in self.rows))

    # -- binary operators --------------------------------------------------------

    def _require_union_compatible(self, other: "Relation", op: str) -> "Relation":
        if not self.schema.same_attributes(other.schema):
            raise SchemaError(
                f"{op} operands must have equal attribute sets; "
                f"got {list(self.schema)} vs {list(other.schema)}"
            )
        return other._reordered(self.schema.attributes)

    def union(self, other: "Relation") -> "Relation":
        """Set union ∪ (named perspective: equal attribute sets)."""
        other = self._require_union_compatible(other, "union")
        return Relation(self.schema, self.rows | other.rows)

    def difference(self, other: "Relation") -> "Relation":
        """Set difference −."""
        other = self._require_union_compatible(other, "difference")
        return Relation(self.schema, self.rows - other.rows)

    def intersection(self, other: "Relation") -> "Relation":
        """Set intersection ∩."""
        other = self._require_union_compatible(other, "intersection")
        return Relation(self.schema, self.rows & other.rows)

    def product(self, other: "Relation") -> "Relation":
        """Cartesian product ×; attribute sets must be disjoint."""
        schema = self.schema.concat(other.schema)
        rows = (left + right for left in self.rows for right in other.rows)
        return Relation(schema, rows)

    def natural_join(self, other: "Relation") -> "Relation":
        """Natural join ⋈ on all shared attribute names (hash-based)."""
        common = self.schema.common(other.schema)
        if not common:
            return self.product(other)
        left_key = self.schema.indices(common)
        right_key = other.schema.indices(common)
        right_rest = [i for i, a in enumerate(other.schema) if a not in common]
        schema = Schema(self.schema.attributes + tuple(other.schema[i] for i in right_rest))

        buckets: dict[tuple, list[Row]] = {}
        for row in other.rows:
            buckets.setdefault(tuple(row[i] for i in right_key), []).append(row)

        def generate() -> Iterator[Row]:
            for left in self.rows:
                key = tuple(left[i] for i in left_key)
                for right in buckets.get(key, ()):  # pragma: no branch
                    yield left + tuple(right[i] for i in right_rest)

        return Relation(schema, generate())

    def equi_join(self, other: "Relation", pairs: Sequence[tuple[str, str]]) -> "Relation":
        """θ-join on a conjunction of cross-schema equalities (hash-based).

        *pairs* lists ``(left_attr, right_attr)`` equalities. Attribute
        sets must be disjoint (rename first, as the paper does with its
        positional qualifiers like ``1.CID``).
        """
        schema = self.schema.concat(other.schema)
        if not pairs:
            return self.product(other)
        left_key = self.schema.indices(a for a, _ in pairs)
        right_key = other.schema.indices(b for _, b in pairs)

        buckets: dict[tuple, list[Row]] = {}
        for row in other.rows:
            buckets.setdefault(tuple(row[i] for i in right_key), []).append(row)

        def generate() -> Iterator[Row]:
            for left in self.rows:
                key = tuple(left[i] for i in left_key)
                for right in buckets.get(key, ()):  # pragma: no branch
                    yield left + right

        return Relation(schema, generate())

    def theta_join(self, other: "Relation", predicate: Predicate) -> "Relation":
        """θ-join with an arbitrary predicate over the concatenated schema."""
        pairs = predicate.equality_pairs()
        if pairs is not None:
            left_attrs = self.schema.as_set()
            oriented: list[tuple[str, str]] = []
            for a, b in pairs:
                if a in left_attrs and b not in left_attrs:
                    oriented.append((a, b))
                elif b in left_attrs and a not in left_attrs:
                    oriented.append((b, a))
                else:
                    oriented = []
                    break
            if oriented or not pairs:
                return self.equi_join(other, oriented)
        return self.product(other).select(predicate)

    def semijoin(self, other: "Relation") -> "Relation":
        """Left semijoin ⋉ on shared attributes: rows with a join partner."""
        common = self.schema.common(other.schema)
        if not common:
            return self if other.rows else Relation(self.schema)
        left_key = self.schema.indices(common)
        right_keys = {tuple(row[i] for i in other.schema.indices(common)) for row in other.rows}
        return Relation(
            self.schema,
            (row for row in self.rows if tuple(row[i] for i in left_key) in right_keys),
        )

    def antijoin(self, other: "Relation") -> "Relation":
        """Left antijoin: rows of self with no join partner in other."""
        common = self.schema.common(other.schema)
        if not common:
            return Relation(self.schema) if other.rows else self
        left_key = self.schema.indices(common)
        right_keys = {tuple(row[i] for i in other.schema.indices(common)) for row in other.rows}
        return Relation(
            self.schema,
            (row for row in self.rows if tuple(row[i] for i in left_key) not in right_keys),
        )

    def divide(self, other: "Relation") -> "Relation":
        """Relational division ÷.

        ``R[D ∪ V] ÷ S[V]`` returns the D-tuples d such that ⟨d, v⟩ ∈ R
        for *every* v ∈ S. Division by an empty relation returns the
        projection π_D(R) (the universally quantified condition is
        vacuously true), matching the classical definition
        π_D(R) − π_D((π_D(R) × S) − R).
        """
        divisor_attrs = other.schema.as_set()
        if not divisor_attrs <= self.schema.as_set():
            raise SchemaError(
                f"division requires divisor attributes {sorted(divisor_attrs)} "
                f"⊆ dividend attributes {list(self.schema)}"
            )
        keep = tuple(a for a in self.schema if a not in divisor_attrs)
        quotient_positions = self.schema.indices(keep)
        divisor_positions = self.schema.indices(other.schema.attributes)
        required = frozenset(other.rows)

        seen: dict[tuple, set[tuple]] = {}
        for row in self.rows:
            d = tuple(row[p] for p in quotient_positions)
            seen.setdefault(d, set()).add(tuple(row[p] for p in divisor_positions))
        return Relation(keep, (d for d, vs in seen.items() if required <= vs))

    def left_outer_join_padded(self, other: "Relation") -> "Relation":
        """The modified left outer join ``=⊳⊲`` of Remark 5.5.

        ``R =⊳⊲ S = (R ⋈ S) ∪ ((R − R ⋉ S) × {⟨c,…,c⟩})`` — dangling
        R-rows are padded with the special constant :data:`PAD` on S's
        non-shared attributes.
        """
        joined = self.natural_join(other)
        dangling = self.difference(self.semijoin(other))
        pad_attrs = tuple(a for a in other.schema if a not in self.schema.as_set())
        pad_row = (PAD,) * len(pad_attrs)
        # joined's schema is self's attributes followed by pad_attrs.
        padded = Relation(
            joined.schema,
            (row + pad_row for row in dangling._reordered(self.schema.attributes).rows),
        )
        return joined.union(padded)

    # -- helpers used by the world-set machinery ---------------------------------

    def distinct_values(self, attributes: Sequence[str]) -> list[tuple]:
        """Distinct value combinations of *attributes*, in stable order."""
        return self.project(attributes).sorted_rows()

    def active_domain(self) -> frozenset[object]:
        """All values appearing anywhere in the relation."""
        return frozenset(value for row in self.rows for value in row)
