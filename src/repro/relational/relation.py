"""Immutable set-semantics relations and their algebraic operations.

A :class:`Relation` is a schema plus a frozen set of rows (value tuples
aligned positionally with the schema). All operations are pure and
return new relations. The operation set covers the six base operators of
Section 4.1 (σ, π, δ, ×, ∪, −), the derived operators ∩, ⋈ and ÷, the
semijoin, and the padded left outer join ``=⊳⊲`` of Remark 5.5.

Joins on explicit equality conditions and the natural join use hash
partitioning so that the translation of Figure 6 (which is join-heavy on
world-id attributes) evaluates in near-linear time per operator. Because
relations are immutable, every relation lazily caches

* per-attribute-set hash indexes (:meth:`Relation._index`), shared by
  the hash joins, semijoins and the constant-assignment selection that
  decodes inlined representations world by world — repeated joins on
  the same world-id columns build the partition once;
* its canonical hash, so worlds containing large relations can enter
  world-sets without re-sorting columns on every membership test.

Row tuples are *interned* in a bounded pool: the same value tuple
loaded twice (or appearing in many decoded worlds) is one object, which
makes the set algebra's equality checks short-circuit on identity and
shares memory across the many per-world copies an explicit world-set
drags around.
"""

from __future__ import annotations

from operator import itemgetter
from typing import Callable, Iterable, Iterator, Mapping, Sequence

from repro.errors import SchemaError
from repro.relational.guards import checkpoint
from repro.relational.pad import PAD, row_sort_key
from repro.relational.predicates import Predicate
from repro.relational.schema import Schema

Row = tuple

#: Bound on the row intern pool; beyond it rows pass through uninterned.
_INTERN_LIMIT = 1 << 20

_INTERNED: dict[Row, Row] = {}

#: Cell types for which type-identical equality implies interchangeability.
_SCALAR_TYPES = frozenset((int, float, str, bool, bytes, type(None)))


def clear_intern_pool() -> None:
    """Empty the process-global row intern pool.

    Interning is a pure optimization (see :func:`intern_row`), so
    clearing never affects correctness — it releases the canonical row
    objects a long-lived process has accumulated across sessions.
    ``ISQLSession.close()`` calls this.
    """
    _INTERNED.clear()


def intern_row(values: Row) -> Row:
    """Return the canonical object for the row tuple *values*.

    When the pool fills it is cleared wholesale (a generational reset):
    interning is purely an optimization, so dropping canonical objects
    only costs sharing, never correctness — and a reset both bounds
    memory when a large throwaway dataset passed through and keeps
    interning effective for whatever data comes next.
    """
    cached = _INTERNED.get(values)
    if cached is not None:
        if cached is values:
            return values
        # Python equality crosses types (1 == 1.0 == True), and for
        # container cells equal types can still hide differently typed
        # contents ((1,) vs (1.0,)). Substituting the canonical row is
        # transparent only when every cell is the same object or a
        # scalar of the identical type; otherwise keep the caller's.
        for canonical, value in zip(cached, values):
            if canonical is value:
                continue
            if type(canonical) is not type(value) or type(value) not in _SCALAR_TYPES:
                return values
        return cached
    if len(_INTERNED) >= _INTERN_LIMIT:
        _INTERNED.clear()
    _INTERNED[values] = values
    return values


def oriented_equality_pairs(
    left_attrs: frozenset[str], pairs: Sequence[tuple[str, str]]
) -> list[tuple[str, str]] | None:
    """Orient attr=attr equality pairs as (left, right), or None.

    Shared by both kernels' θ-joins: each pair must have exactly one
    side among *left_attrs*; otherwise the predicate cannot drive a
    hash equi-join and the caller falls back to σ(×).
    """
    oriented: list[tuple[str, str]] = []
    for a, b in pairs:
        if a in left_attrs and b not in left_attrs:
            oriented.append((a, b))
        elif b in left_attrs and a not in left_attrs:
            oriented.append((b, a))
        else:
            return None
    return oriented


def check_join_pairs_cover_shared(
    left_attrs: frozenset[str], right_schema: Schema, pairs: Sequence[tuple[str, str]]
) -> None:
    """``join_on`` precondition, shared by both kernels: every attribute
    name on both sides must be joined positionally via an ``(a, a)``
    pair — otherwise the output would carry a duplicate column name."""
    listed = set(tuple(pairs))
    for attr in right_schema:
        if attr in left_attrs and (attr, attr) not in listed:
            raise SchemaError(
                f"join_on operands share attribute {attr!r} without an "
                "explicit (a, a) key pair"
            )


def tuple_getter(positions: Sequence[int]) -> Callable[[Row], tuple]:
    """A C-speed extractor mapping a row to the tuple of *positions*."""
    if not positions:
        return lambda row: ()
    if len(positions) == 1:
        position = positions[0]
        return lambda row: (row[position],)
    return itemgetter(*positions)


def _coerce_row(schema: Schema, row: object) -> Row:
    """Normalize a dict / sequence row to an interned positional tuple."""
    if isinstance(row, dict):
        missing = [a for a in schema if a not in row]
        if missing:
            raise SchemaError(f"row {row!r} is missing attributes {missing}")
        extra = [key for key in row if key not in schema]
        if extra:
            raise SchemaError(f"row {row!r} has unknown attributes {extra}")
        return intern_row(tuple(row[a] for a in schema))
    values = tuple(row)  # type: ignore[arg-type]
    if len(values) != len(schema):
        raise SchemaError(
            f"row {values!r} has {len(values)} values; schema {list(schema)} "
            f"expects {len(schema)}"
        )
    return intern_row(values)


class Relation:
    """An immutable relation: a schema and a frozen set of rows."""

    __slots__ = ("schema", "_rows", "_indexes", "_hash", "_columnar", "_array")

    def __init__(self, schema: Schema | Sequence[str], rows: Iterable[object] = ()) -> None:
        if not isinstance(schema, Schema):
            schema = Schema(schema)
        self.schema = schema
        self._rows: frozenset[Row] | None = frozenset(
            _coerce_row(schema, row) for row in rows
        )
        self._indexes: dict[tuple[int, ...], dict[tuple, tuple[Row, ...]]] = {}
        self._hash: int | None = None
        self._columnar = None
        self._array = None

    @property
    def rows(self) -> frozenset[Row]:
        """The row set; materialized lazily from a kernel twin.

        A relation committed from a columnar/array kernel result
        (:meth:`ColumnarRelation.to_relation`) starts with its rows
        unmaterialized — the kernel twin holds the data as column
        storage, and the tuple set is built only when something actually
        reads it (world decoding, the tuple kernel, equality). Queries
        that stay in one kernel never pay the conversion.
        """
        rows = self._rows
        if rows is None:
            twin = self._array if self._array is not None else self._columnar
            rows = self._rows = twin.rows
        return rows

    @classmethod
    def _raw(cls, schema: Schema, rows: Iterable[Row]) -> "Relation":
        """Internal fast constructor: *rows* must already be aligned tuples."""
        relation = object.__new__(cls)
        relation.schema = schema
        relation._rows = rows if isinstance(rows, frozenset) else frozenset(rows)
        relation._indexes = {}
        relation._hash = None
        relation._columnar = None
        relation._array = None
        return relation

    @classmethod
    def _from_kernel(cls, schema: Schema) -> "Relation":
        """A relation whose rows materialize lazily from a kernel twin.

        The caller must attach the twin (``_columnar`` or ``_array``)
        before the relation is used — :meth:`rows` reads through it.
        """
        relation = object.__new__(cls)
        relation.schema = schema
        relation._rows = None
        relation._indexes = {}
        relation._hash = None
        relation._columnar = None
        relation._array = None
        return relation

    def clear_caches(self) -> None:
        """Drop the lazily built hash indexes, hash, and kernel twins.

        All three are rebuilt on demand; a long-lived session calls this
        through ``ISQLSession.close()`` to release derived state held by
        relations that stay reachable (registered base tables). A
        lazily committed row set materializes first — the twins being
        dropped are what it would have read through.
        """
        if self._rows is None:
            _ = self.rows
        self._indexes = {}
        self._hash = None
        self._columnar = None
        self._array = None

    @staticmethod
    def _coerce_operand(other: "Relation") -> "Relation":
        """Accept a ColumnarRelation operand by converting it (cached).

        Mixed-kernel operand pairs arise at the kernel boundary (e.g. a
        literal world table inside a translated plan whose base tables
        run columnar); each side of the boundary coerces toward itself.
        """
        return other if isinstance(other, Relation) else other.to_relation()

    def _index(self, positions: tuple[int, ...]) -> dict[tuple, tuple[Row, ...]]:
        """Hash partition of the rows by the attribute *positions* (cached)."""
        cached = self._indexes.get(positions)
        if cached is None:
            key_of = tuple_getter(positions)
            groups: dict[tuple, list[Row]] = {}
            for row in self.rows:
                groups.setdefault(key_of(row), []).append(row)
            cached = {key: tuple(rows) for key, rows in groups.items()}
            self._indexes[positions] = cached
        return cached

    # -- constructors --------------------------------------------------------

    @staticmethod
    def empty(attributes: Sequence[str]) -> "Relation":
        """An empty relation over *attributes*."""
        return Relation(attributes, ())

    @staticmethod
    def unit() -> "Relation":
        """The nullary relation {⟨⟩}: one empty tuple, zero attributes.

        This is the world table ``W = {⟨⟩}`` that encodes a single
        (complete) world in Definition 5.1.
        """
        return Relation((), ((),))

    @staticmethod
    def from_named_rows(rows: Iterable[Mapping[str, object]], attributes: Sequence[str]) -> "Relation":
        """Build a relation from dict rows with an explicit attribute order."""
        return Relation(attributes, rows)

    # -- container protocol --------------------------------------------------

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self.rows)

    def __contains__(self, row: object) -> bool:
        return row in self.rows

    def __bool__(self) -> bool:
        return bool(self.rows)

    def __eq__(self, other: object) -> bool:
        """Structural equality: same attribute set and same tuples.

        Attribute *order* is irrelevant (named perspective): the rows of
        the other relation are compared after aligning its columns.
        """
        if not isinstance(other, Relation):
            return NotImplemented
        if self.schema == other.schema:
            return self.rows == other.rows
        if not self.schema.same_attributes(other.schema):
            return False
        aligned = other._reordered(self.schema.attributes)
        return self.rows == aligned.rows

    def __hash__(self) -> int:
        if self._hash is None:
            canonical_attrs = tuple(sorted(self.schema.attributes))
            canonical = self._reordered(canonical_attrs) if canonical_attrs != self.schema.attributes else self
            self._hash = hash((canonical_attrs, canonical.rows))
        return self._hash

    def __repr__(self) -> str:
        return f"Relation({list(self.schema)!r}, {len(self.rows)} rows)"

    def sorted_rows(self) -> list[Row]:
        """Rows in a deterministic display order."""
        return sorted(self.rows, key=row_sort_key)

    def named_rows(self) -> list[dict[str, object]]:
        """Rows as attribute-name dictionaries (deterministic order)."""
        attrs = self.schema.attributes
        return [dict(zip(attrs, row)) for row in self.sorted_rows()]

    def _reordered(self, attributes: Sequence[str]) -> "Relation":
        """The same relation with columns in the given order."""
        positions = self.schema.indices(attributes)
        if positions == tuple(range(len(self.schema))):
            return self
        getter = tuple_getter(positions)
        return Relation._raw(Schema(attributes), map(getter, self.rows))

    # -- unary operators -------------------------------------------------------

    def select(self, predicate: Predicate) -> "Relation":
        """Selection σ_φ: keep rows satisfying *predicate*."""
        checkpoint("select", len(self.rows))
        check = predicate.bind(self.schema)
        return Relation._raw(self.schema, (row for row in self.rows if check(row)))

    def select_values(self, assignment: Mapping[str, object]) -> "Relation":
        """Selection σ_{A=v,...} for a constant assignment.

        Served from the cached hash index on the assignment's attributes,
        so decoding an inlined representation world by world costs one
        partition pass rather than one scan per world.
        """
        positions = self.schema.indices(assignment)
        key = tuple(assignment.values())
        return Relation._raw(self.schema, self._index(positions).get(key, ()))

    def project(self, attributes: Sequence[str]) -> "Relation":
        """Projection π_U with set-semantics deduplication."""
        checkpoint("project", len(self.rows))
        schema = self.schema.project(attributes)
        positions = self.schema.indices(attributes)
        if positions == tuple(range(len(self.schema))):
            return Relation._raw(schema, self.rows)
        getter = tuple_getter(positions)
        return Relation._raw(schema, map(getter, self.rows))

    def rename(self, mapping: Mapping[str, str]) -> "Relation":
        """Renaming δ_{old→new}; value tuples are unchanged."""
        return Relation._raw(self.schema.rename(mapping), self.rows)

    def extend(self, attribute: str, function: Callable[[dict[str, object]], object]) -> "Relation":
        """Append a computed attribute (used by I-SQL expressions).

        *function* receives the row as a dict and returns the new value.
        Not part of world-set algebra proper; the Figure 6 translation
        only ever copies existing attributes (see :meth:`copy_attribute`).
        """
        if attribute in self.schema:
            raise SchemaError(f"attribute {attribute!r} already exists")
        checkpoint("extend", len(self.rows))
        attrs = self.schema.attributes
        schema = Schema(attrs + (attribute,))
        rows = (row + (function(dict(zip(attrs, row))),) for row in self.rows)
        return Relation(schema, rows)

    def copy_attribute(self, source: str, target: str) -> "Relation":
        """π_{*, source as target}: duplicate a column under a new name.

        This is the ``π_{*,Dep as V_Dep}`` step of Example 5.6.
        """
        if target in self.schema:
            raise SchemaError(f"attribute {target!r} already exists")
        position = self.schema.index(source)
        schema = Schema(self.schema.attributes + (target,))
        return Relation._raw(schema, (row + (row[position],) for row in self.rows))

    # -- binary operators --------------------------------------------------------

    def _require_union_compatible(self, other: "Relation", op: str) -> "Relation":
        other = Relation._coerce_operand(other)
        if not self.schema.same_attributes(other.schema):
            raise SchemaError(
                f"{op} operands must have equal attribute sets; "
                f"got {list(self.schema)} vs {list(other.schema)}"
            )
        return other._reordered(self.schema.attributes)

    def union(self, other: "Relation") -> "Relation":
        """Set union ∪ (named perspective: equal attribute sets)."""
        other = self._require_union_compatible(other, "union")
        checkpoint("union", len(self.rows) + len(other.rows))
        return Relation._raw(self.schema, self.rows | other.rows)

    def difference(self, other: "Relation") -> "Relation":
        """Set difference −."""
        other = self._require_union_compatible(other, "difference")
        checkpoint("difference", len(self.rows) + len(other.rows))
        return Relation._raw(self.schema, self.rows - other.rows)

    def intersection(self, other: "Relation") -> "Relation":
        """Set intersection ∩."""
        other = self._require_union_compatible(other, "intersection")
        checkpoint("intersection", len(self.rows) + len(other.rows))
        return Relation._raw(self.schema, self.rows & other.rows)

    def product(self, other: "Relation") -> "Relation":
        """Cartesian product ×; attribute sets must be disjoint."""
        other = Relation._coerce_operand(other)
        checkpoint("product", len(self.rows) + len(other.rows))
        schema = self.schema.concat(other.schema)
        rows = (left + right for left in self.rows for right in other.rows)
        return Relation._raw(schema, rows)

    def natural_join(self, other: "Relation") -> "Relation":
        """Natural join ⋈ on all shared attribute names (hash-based)."""
        other = Relation._coerce_operand(other)
        common = self.schema.common(other.schema)
        return self.join_on(other, [(a, a) for a in common])

    def equi_join(self, other: "Relation", pairs: Sequence[tuple[str, str]]) -> "Relation":
        """θ-join on a conjunction of cross-schema equalities (hash-based).

        *pairs* lists ``(left_attr, right_attr)`` equalities. Attribute
        sets must be disjoint (rename first, as the paper does with its
        positional qualifiers like ``1.CID``).
        """
        other = Relation._coerce_operand(other)
        self.schema.concat(other.schema)  # equi-join requires disjoint schemas
        return self.join_on(other, pairs)

    def join_on(self, other: "Relation", pairs: Sequence[tuple[str, str]]) -> "Relation":
        """Hash join on explicit ``(left_attr, right_attr)`` key pairs.

        The one build/probe loop behind :meth:`natural_join` (all shared
        names as ``(a, a)`` pairs) and :meth:`equi_join` (disjoint
        schemas); the tuple-kernel counterpart of
        ``ColumnarRelation.join_on``. Shared attribute names must be
        listed as ``(a, a)`` pairs and join positionally; cross-named
        equalities keep both columns. The output schema is the left
        schema followed by the right attributes not named on the left.
        This also fuses σ_{eq}(R × S) plans into one hash join — the
        product is never materialized.
        """
        other = Relation._coerce_operand(other)
        if not pairs:
            return self.product(other)
        checkpoint("join_on", len(self.rows) + len(other.rows))
        left_set = self.schema.as_set()
        check_join_pairs_cover_shared(left_set, other.schema, pairs)
        left_key = self.schema.indices(a for a, _ in pairs)
        right_key = other.schema.indices(b for _, b in pairs)
        right_rest = tuple(
            i for i, a in enumerate(other.schema) if a not in left_set
        )
        schema = Schema(
            self.schema.attributes + tuple(other.schema[i] for i in right_rest)
        )
        buckets = other._index(right_key)
        key_of = tuple_getter(left_key)
        if not right_rest:
            # Right side is pure key: the join degenerates to a semijoin.
            return Relation._raw(
                schema, (row for row in self.rows if key_of(row) in buckets)
            )
        rest_of = tuple_getter(right_rest)

        def generate() -> Iterator[Row]:
            empty: tuple[Row, ...] = ()
            for left in self.rows:
                for right in buckets.get(key_of(left), empty):  # pragma: no branch
                    yield left + rest_of(right)

        return Relation._raw(schema, generate())

    def theta_join(self, other: "Relation", predicate: Predicate) -> "Relation":
        """θ-join with an arbitrary predicate over the concatenated schema."""
        other = Relation._coerce_operand(other)
        pairs = predicate.equality_pairs()
        if pairs is not None:
            oriented = oriented_equality_pairs(self.schema.as_set(), pairs)
            if oriented is not None:
                return self.equi_join(other, oriented)
        return self.product(other).select(predicate)

    def semijoin(self, other: "Relation") -> "Relation":
        """Left semijoin ⋉ on shared attributes: rows with a join partner."""
        other = Relation._coerce_operand(other)
        common = self.schema.common(other.schema)
        if not common:
            return self if other.rows else Relation(self.schema)
        checkpoint("semijoin", len(self.rows) + len(other.rows))
        key_of = tuple_getter(self.schema.indices(common))
        right_keys = other._index(other.schema.indices(common)).keys()
        return Relation._raw(
            self.schema, (row for row in self.rows if key_of(row) in right_keys)
        )

    def antijoin(self, other: "Relation") -> "Relation":
        """Left antijoin: rows of self with no join partner in other."""
        other = Relation._coerce_operand(other)
        common = self.schema.common(other.schema)
        if not common:
            return Relation(self.schema) if other.rows else self
        checkpoint("antijoin", len(self.rows) + len(other.rows))
        key_of = tuple_getter(self.schema.indices(common))
        right_keys = other._index(other.schema.indices(common)).keys()
        return Relation._raw(
            self.schema, (row for row in self.rows if key_of(row) not in right_keys)
        )

    def divide(self, other: "Relation") -> "Relation":
        """Relational division ÷.

        ``R[D ∪ V] ÷ S[V]`` returns the D-tuples d such that ⟨d, v⟩ ∈ R
        for *every* v ∈ S. Division by an empty relation returns the
        projection π_D(R) (the universally quantified condition is
        vacuously true), matching the classical definition
        π_D(R) − π_D((π_D(R) × S) − R).
        """
        other = Relation._coerce_operand(other)
        divisor_attrs = other.schema.as_set()
        if not divisor_attrs <= self.schema.as_set():
            raise SchemaError(
                f"division requires divisor attributes {sorted(divisor_attrs)} "
                f"⊆ dividend attributes {list(self.schema)}"
            )
        checkpoint("divide", len(self.rows) + len(other.rows))
        keep = tuple(a for a in self.schema if a not in divisor_attrs)
        quotient_of = tuple_getter(self.schema.indices(keep))
        divisor_of = tuple_getter(self.schema.indices(other.schema.attributes))
        required = frozenset(other.rows)
        need = len(required)

        seen: dict[tuple, set[tuple]] = {}
        for row in self.rows:
            seen.setdefault(quotient_of(row), set()).add(divisor_of(row))
        return Relation._raw(
            Schema(keep),
            (d for d, vs in seen.items() if len(vs) >= need and required <= vs),
        )

    # -- DML kernel ops: mask / scatter / append ----------------------------------

    def mask(
        self, matched: "Relation", attributes: Sequence[str] | None = None
    ) -> "Relation":
        """Boolean-keep by hashed key lookup: drop the rows *matched* names.

        Keeps exactly the rows whose *attributes* sub-tuple does **not**
        occur in π_attributes(*matched*); *attributes* defaults to the
        whole schema (full-row identity). This is the flat-table form of
        the Section 3 delete rule: the match plan's answer, keyed by
        world ids plus the row values, masks the id-expanded table in
        one hashed pass — the antijoin specialized to an explicit key so
        the two operands may share value columns under different roles.
        """
        matched = Relation._coerce_operand(matched)
        checkpoint("mask", len(self.rows) + len(matched.rows))
        attrs = (
            tuple(attributes) if attributes is not None else self.schema.attributes
        )
        key_of = tuple_getter(self.schema.indices(attrs))
        drop = frozenset(
            map(tuple_getter(matched.schema.indices(attrs)), matched.rows)
        )
        if not drop:
            return self
        return Relation._raw(
            self.schema, (row for row in self.rows if key_of(row) not in drop)
        )

    def scatter_update(
        self,
        matches: "Relation",
        setters: Sequence[tuple[str, Callable[[Row], object]]],
    ) -> "Relation":
        """Rewrite the rows *matches* selects from a computed-value relation.

        *matches*' schema must contain every attribute of this relation;
        each match row ``m`` names the target row π_self(m) — which is
        removed — and contributes its rewrite: the target with every
        ``(attribute, function)`` of *setters* overridden by
        ``function(m)`` (``m`` as a positional tuple aligned with
        *matches*' schema, so value terms bound against the match plan's
        answer schema read the *pre-update* row). This is the flat-table
        form of the Section 3 update rule; the result is deduplicated
        (a rewrite may collide with a kept row).
        """
        matches = Relation._coerce_operand(matches)
        checkpoint("scatter_update", len(self.rows) + len(matches.rows))
        target_of = tuple_getter(matches.schema.indices(self.schema.attributes))
        positions = [self.schema.index(attribute) for attribute, _ in setters]
        functions = [function for _, function in setters]
        drop: set[Row] = set()
        rewritten: list[Row] = []
        for match in matches.rows:
            target = target_of(match)
            drop.add(target)
            new_row = list(target)
            for position, function in zip(positions, functions):
                new_row[position] = function(match)
            rewritten.append(tuple(new_row))
        kept = [row for row in self.rows if row not in drop]
        return Relation._raw(self.schema, frozenset(rewritten).union(kept))

    def append(self, rows: Iterable[Row]) -> "Relation":
        """The relation with the aligned tuples *rows* added.

        The incremental twin of rebuilding through the constructor: the
        existing rows are reused as-is (one C-speed set copy, no per-row
        re-coercion or interning), only the additions are checked for
        arity and deduplicated. Rows already present are no-ops (set
        semantics) — an insert hitting an existing row changes nothing.
        """
        additions = [row if isinstance(row, tuple) else tuple(row) for row in rows]
        checkpoint("append", len(self.rows) + len(additions))
        width = len(self.schema)
        for row in additions:
            if len(row) != width:
                raise SchemaError(
                    f"appended row {row!r} has {len(row)} values; schema "
                    f"{list(self.schema)} expects {width}"
                )
        fresh = frozenset(additions) - self.rows
        if not fresh:
            return self
        return Relation._raw(self.schema, self.rows | fresh)

    def aggregate_by(self, keys: Sequence[str], specs: Sequence["AggSpec"]) -> "Relation":
        """Grouped SQL aggregation: one row per distinct *keys* value.

        The I-SQL extension beyond pure relational algebra (like
        repair-by-key): rows are grouped by *keys* and each
        :class:`~repro.relational.aggregates.AggSpec` folds its argument
        column within the group, with the engine's set-based value
        semantics (``count`` distinct, ``sum``/``avg`` over the distinct
        rows). A *global* aggregate (``keys = ()``) over an empty
        relation yields the single default row — SQL's one empty group.
        """
        from repro.relational.aggregates import aggregate_rows, default_row

        checkpoint("aggregate_by", len(self.rows))
        keys = tuple(keys)
        schema = Schema(keys + tuple(spec.output for spec in specs))
        rows = list(self.rows)
        key_of = (
            tuple_getter(self.schema.indices(keys)) if keys else (lambda row: ())
        )
        positions = [
            self.schema.index(spec.argument) if spec.argument is not None else None
            for spec in specs
        ]
        args = (
            tuple(row[p] if p is not None else None for p in positions)
            for row in rows
        )
        out = aggregate_rows(map(key_of, rows), args, specs)
        if not out and not keys:
            out = [default_row(specs)]
        return Relation._raw(schema, out)

    def left_outer_join_padded(self, other: "Relation") -> "Relation":
        """The modified left outer join ``=⊳⊲`` of Remark 5.5.

        ``R =⊳⊲ S = (R ⋈ S) ∪ ((R − R ⋉ S) × {⟨c,…,c⟩})`` — dangling
        R-rows are padded with the special constant :data:`PAD` on S's
        non-shared attributes.
        """
        other = Relation._coerce_operand(other)
        checkpoint("left_outer_join_padded", len(self.rows) + len(other.rows))
        joined = self.natural_join(other)
        dangling = self.difference(self.semijoin(other))
        pad_attrs = tuple(a for a in other.schema if a not in self.schema.as_set())
        pad_row = (PAD,) * len(pad_attrs)
        # joined's schema is self's attributes followed by pad_attrs.
        padded = Relation(
            joined.schema,
            (row + pad_row for row in dangling._reordered(self.schema.attributes).rows),
        )
        return joined.union(padded)

    # -- helpers used by the world-set machinery ---------------------------------

    def distinct_values(self, attributes: Sequence[str]) -> list[tuple]:
        """Distinct value combinations of *attributes*, in stable order."""
        return self.project(attributes).sorted_rows()

    def active_domain(self) -> frozenset[object]:
        """All values appearing anywhere in the relation."""
        return frozenset(value for row in self.rows for value in row)
