"""Cooperative checkpoints at kernel-op boundaries.

Every relational kernel op (select/join/mask/scatter/append/… on the
tuple, columnar and array kernels) calls :func:`checkpoint` exactly
once, before it starts mutating or allocating in earnest. The
checkpoint is the single place where two cross-cutting concerns hook
into the kernels:

* **Resource budgets** — :func:`guarded` installs a per-statement
  budget of cumulative input rows (``max_rows``) and wall time
  (``max_seconds``); an exceeded budget raises
  :class:`~repro.errors.ResourceLimitError`. Because the check fires at
  op *boundaries* — before the op commits anything into session state —
  the error is guaranteed recoverable: the session's state still equals
  its last commit.
* **Fault injection** — :func:`op_hook` installs an arbitrary callable
  invoked on every checkpoint; ``repro.testing.faults`` uses it to
  raise at the Nth op invocation and prove crash-consistency (the
  differential sweep in ``tests/backend/test_fault_injection.py``).

Like :mod:`repro.backend.instrument`, the disarmed fast path is two
module-global ``None`` checks per *op* (not per row), so kernels pay
nothing measurable when no guard or hook is installed — the benchmark
gate in ``benchmarks/check_regression.py`` holds armed-guard overhead
under 1.1× as well.

The installation state is process-global and not thread-safe, matching
the instrumentation collector: sessions are single-threaded by design.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Callable, Iterator

from repro.errors import ResourceLimitError

#: The active resource budget, or ``None`` (disarmed).
_guard: "ResourceGuard | None" = None

#: The active fault/observation hook, or ``None`` (disarmed).
_hook: Callable[[str, int], None] | None = None


class ResourceGuard:
    """A per-statement budget: cumulative input rows and a deadline."""

    __slots__ = ("max_rows", "max_seconds", "deadline", "rows")

    def __init__(self, max_rows: int | None, max_seconds: float | None) -> None:
        self.max_rows = max_rows
        self.max_seconds = max_seconds
        self.deadline = (
            None if max_seconds is None else time.perf_counter() + max_seconds
        )
        self.rows = 0


def checkpoint(op: str, rows: int = 0) -> None:
    """The kernel-op boundary: feed *rows* to the budget, fire the hook.

    *rows* is the op's input size (sum of operand cardinalities) — an
    upper-bound proxy for the work the op is about to do. Near-free when
    nothing is installed.
    """
    if _hook is None and _guard is None:
        return
    _checkpoint_armed(op, rows)


def _checkpoint_armed(op: str, rows: int) -> None:
    hook = _hook
    if hook is not None:
        hook(op, rows)
    guard = _guard
    if guard is None:
        return
    guard.rows += rows
    if guard.max_rows is not None and guard.rows > guard.max_rows:
        raise ResourceLimitError(
            f"statement exceeded max_rows={guard.max_rows}: "
            f"{guard.rows} cumulative input rows at kernel op {op!r}"
        )
    if guard.deadline is not None and time.perf_counter() > guard.deadline:
        raise ResourceLimitError(
            f"statement exceeded max_seconds={guard.max_seconds} "
            f"at kernel op {op!r}"
        )


@contextmanager
def guarded(
    max_rows: int | None = None, max_seconds: float | None = None
) -> Iterator[ResourceGuard | None]:
    """Install a fresh resource budget for the duration of the block.

    With both limits ``None`` this is a no-op (the fast path stays
    disarmed). Budgets do not nest additively: an inner ``guarded``
    shadows the outer one and restores it on exit, so each statement
    gets its own fresh budget.
    """
    global _guard
    if max_rows is None and max_seconds is None:
        yield None
        return
    previous = _guard
    _guard = guard = ResourceGuard(max_rows, max_seconds)
    try:
        yield guard
    finally:
        _guard = previous


@contextmanager
def op_hook(hook: Callable[[str, int], None]) -> Iterator[None]:
    """Install *hook* to observe (or sabotage) every checkpoint.

    The hook receives ``(op, rows)`` and may raise — that is exactly
    how the fault injector simulates a crash inside a kernel op. The
    previous hook is restored on exit; hooks do not chain.
    """
    global _hook
    previous = _hook
    _hook = hook
    try:
        yield
    finally:
        _hook = previous


__all__ = ["ResourceGuard", "checkpoint", "guarded", "op_hook"]
