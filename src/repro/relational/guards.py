"""Cooperative checkpoints at kernel-op boundaries.

Every relational kernel op (select/join/mask/scatter/append/… on the
tuple, columnar and array kernels) calls :func:`checkpoint` exactly
once, before it starts mutating or allocating in earnest. The
checkpoint is the single place where two cross-cutting concerns hook
into the kernels:

* **Resource budgets** — :func:`guarded` installs a per-statement
  budget of cumulative input rows (``max_rows``) and wall time
  (``max_seconds``); an exceeded budget raises
  :class:`~repro.errors.ResourceLimitError`. Because the check fires at
  op *boundaries* — before the op commits anything into session state —
  the error is guaranteed recoverable: the session's state still equals
  its last commit.
* **Fault injection** — :func:`op_hook` installs an arbitrary callable
  invoked on every checkpoint; ``repro.testing.faults`` uses it to
  raise at the Nth op invocation and prove crash-consistency (the
  differential sweep in ``tests/backend/test_fault_injection.py``).

Like :mod:`repro.backend.instrument`, the disarmed fast path is one
module-global counter check per *op* (not per row), so kernels pay
nothing measurable when no guard or hook is installed — the benchmark
gate in ``benchmarks/check_regression.py`` holds armed-guard overhead
under 1.1× as well.

Budgets and hooks are **per-thread**: :func:`guarded` and
:func:`op_hook` install for the calling thread only, so the service
layer (:mod:`repro.service`) can run N pooled sessions concurrently,
each under its own connection's ``max_rows``/``max_seconds`` budget,
without one thread's budget charging (or aborting) another's
statement. A statement therefore always runs under the budget of the
thread that executes it — matching the per-session guards contract the
single-threaded library always had.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Callable, Iterator

from repro.errors import ResourceLimitError

#: Per-thread active resource budgets, keyed by thread ident.
_guards: "dict[int, ResourceGuard]" = {}

#: Per-thread fault/observation hooks, keyed by thread ident.
_hooks: dict[int, Callable[[str, int], None]] = {}

#: Fast-path arm counter: ``len(_guards) + len(_hooks)``, maintained
#: under ``_install_lock`` so concurrent installs cannot lose an
#: increment. Zero means every checkpoint is a single falsy check.
_armed = 0

_install_lock = threading.Lock()


class ResourceGuard:
    """A per-statement budget: cumulative input rows and a deadline."""

    __slots__ = ("max_rows", "max_seconds", "deadline", "rows")

    def __init__(self, max_rows: int | None, max_seconds: float | None) -> None:
        self.max_rows = max_rows
        self.max_seconds = max_seconds
        self.deadline = (
            None if max_seconds is None else time.perf_counter() + max_seconds
        )
        self.rows = 0


def checkpoint(op: str, rows: int = 0) -> None:
    """The kernel-op boundary: feed *rows* to the budget, fire the hook.

    *rows* is the op's input size (sum of operand cardinalities) — an
    upper-bound proxy for the work the op is about to do. Near-free when
    nothing is installed.
    """
    if not _armed:
        return
    _checkpoint_armed(op, rows)


def _checkpoint_armed(op: str, rows: int) -> None:
    ident = threading.get_ident()
    hook = _hooks.get(ident)
    if hook is not None:
        hook(op, rows)
    guard = _guards.get(ident)
    if guard is None:
        return
    guard.rows += rows
    if guard.max_rows is not None and guard.rows > guard.max_rows:
        raise ResourceLimitError(
            f"statement exceeded max_rows={guard.max_rows}: "
            f"{guard.rows} cumulative input rows at kernel op {op!r}"
        )
    if guard.deadline is not None and time.perf_counter() > guard.deadline:
        raise ResourceLimitError(
            f"statement exceeded max_seconds={guard.max_seconds} "
            f"at kernel op {op!r}"
        )


@contextmanager
def guarded(
    max_rows: int | None = None, max_seconds: float | None = None
) -> Iterator[ResourceGuard | None]:
    """Install a fresh resource budget for the calling thread's block.

    With both limits ``None`` this is a no-op (the fast path stays
    disarmed). Budgets do not nest additively: an inner ``guarded``
    shadows the outer one and restores it on exit, so each statement
    gets its own fresh budget. Other threads' budgets are untouched.
    """
    if max_rows is None and max_seconds is None:
        yield None
        return
    ident = threading.get_ident()
    guard = ResourceGuard(max_rows, max_seconds)
    with _install_lock:
        previous = _guards.get(ident)
        _guards[ident] = guard
        _rearm()
    try:
        yield guard
    finally:
        with _install_lock:
            if previous is None:
                _guards.pop(ident, None)
            else:
                _guards[ident] = previous
            _rearm()


@contextmanager
def op_hook(hook: Callable[[str, int], None]) -> Iterator[None]:
    """Install *hook* to observe (or sabotage) every checkpoint.

    The hook receives ``(op, rows)`` and may raise — that is exactly
    how the fault injector simulates a crash inside a kernel op. The
    previous hook (of the calling thread) is restored on exit; hooks
    do not chain and never observe other threads' ops.
    """
    ident = threading.get_ident()
    with _install_lock:
        previous = _hooks.get(ident)
        _hooks[ident] = hook
        _rearm()
    try:
        yield
    finally:
        with _install_lock:
            if previous is None:
                _hooks.pop(ident, None)
            else:
                _hooks[ident] = previous
            _rearm()


def _rearm() -> None:
    """Recompute the fast-path counter; caller holds ``_install_lock``."""
    global _armed
    _armed = len(_guards) + len(_hooks)


__all__ = ["ResourceGuard", "checkpoint", "guarded", "op_hook"]
