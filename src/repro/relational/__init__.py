"""Relational algebra substrate: schemas, relations, predicates, RA ASTs.

This package implements the complete-database machinery the paper builds
on: the named perspective of the relational model (Section 4.1), set
semantics, the six base operators plus derived join/division operators,
and the padded left outer join of Remark 5.5.
"""

from repro.relational.algebra import (
    Antijoin,
    CopyAttr,
    Difference,
    Divide,
    Intersection,
    Literal,
    NaturalJoin,
    OuterJoinPad,
    Product,
    Project,
    RAExpr,
    Rename,
    Select,
    Semijoin,
    Table,
    ThetaJoin,
    Union,
    evaluate,
)
from repro.relational.database import Database
from repro.relational.pad import PAD, PadConstant
from repro.relational.predicates import (
    And,
    Attr,
    Comparison,
    Const,
    FALSE,
    Not,
    Or,
    Predicate,
    TRUE,
    conjunction,
    eq,
    ge,
    gt,
    le,
    lt,
    neq,
)
from repro.relational.relation import Relation
from repro.relational.schema import (
    ID_PREFIX,
    Schema,
    id_attribute,
    is_id_attribute,
    value_attribute,
)
from repro.relational.simplify import simplify

__all__ = [
    "Antijoin",
    "And",
    "Attr",
    "Comparison",
    "Const",
    "CopyAttr",
    "Database",
    "Difference",
    "Divide",
    "FALSE",
    "ID_PREFIX",
    "Intersection",
    "Literal",
    "NaturalJoin",
    "Not",
    "Or",
    "OuterJoinPad",
    "PAD",
    "PadConstant",
    "Predicate",
    "Product",
    "Project",
    "RAExpr",
    "Relation",
    "Rename",
    "Schema",
    "Select",
    "Semijoin",
    "Table",
    "ThetaJoin",
    "TRUE",
    "Union",
    "conjunction",
    "eq",
    "evaluate",
    "ge",
    "gt",
    "id_attribute",
    "is_id_attribute",
    "le",
    "lt",
    "neq",
    "simplify",
    "value_attribute",
]
