"""Relation schemas for the named perspective of the relational model.

A :class:`Schema` is an ordered sequence of distinct attribute names.
Following Section 4.1 of the paper we use the *named* perspective:
set operations require equal attribute sets, products require disjoint
ones, and attributes are addressed by name rather than position.

World-id attributes (Section 5.1) live in the same namespace but are
marked with the ``$`` prefix so that they can never collide with value
attributes; :func:`is_id_attribute` and :func:`id_attribute` implement
the convention.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

from repro.errors import SchemaError

#: Prefix that marks world-identifier attributes in inlined representations.
ID_PREFIX = "$"


def id_attribute(name: str) -> str:
    """Return the world-id attribute derived from value attribute *name*.

    This realizes the ``V_B`` naming of Section 5.2: the choice-of
    translation extends a table with id attributes that copy the choice
    attributes, e.g. ``Dep`` gives rise to ``$Dep``.
    """
    if name.startswith(ID_PREFIX):
        raise SchemaError(f"attribute {name!r} is already a world-id attribute")
    return ID_PREFIX + name


def is_id_attribute(name: str) -> bool:
    """Return True iff *name* follows the world-id naming convention."""
    return name.startswith(ID_PREFIX)


def value_attribute(name: str) -> str:
    """Strip the id prefix from a world-id attribute name."""
    if not is_id_attribute(name):
        raise SchemaError(f"attribute {name!r} is not a world-id attribute")
    return name[len(ID_PREFIX) :]


class Schema:
    """An ordered list of distinct attribute names.

    Schemas are immutable and hashable. Order matters only for display
    and for positional row storage; all algebraic comparisons are by
    attribute *set*, per the named perspective.
    """

    __slots__ = ("_attrs", "_index")

    def __init__(self, attributes: Iterable[str]) -> None:
        attrs = tuple(attributes)
        index: dict[str, int] = {}
        for position, name in enumerate(attrs):
            if not isinstance(name, str) or not name:
                raise SchemaError(f"invalid attribute name: {name!r}")
            if name in index:
                raise SchemaError(f"duplicate attribute name: {name!r}")
            index[name] = position
        self._attrs = attrs
        self._index = index

    # -- basic container protocol -----------------------------------------

    @property
    def attributes(self) -> tuple[str, ...]:
        """The attribute names, in declaration order."""
        return self._attrs

    def __iter__(self) -> Iterator[str]:
        return iter(self._attrs)

    def __len__(self) -> int:
        return len(self._attrs)

    def __contains__(self, name: object) -> bool:
        return name in self._index

    def __getitem__(self, position: int) -> str:
        return self._attrs[position]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._attrs == other._attrs

    def __hash__(self) -> int:
        return hash(self._attrs)

    def __repr__(self) -> str:
        return f"Schema({list(self._attrs)!r})"

    # -- queries ------------------------------------------------------------

    def index(self, name: str) -> int:
        """Return the position of attribute *name*."""
        try:
            return self._index[name]
        except KeyError:
            raise SchemaError(
                f"unknown attribute {name!r}; schema has {list(self._attrs)}"
            ) from None

    def indices(self, names: Iterable[str]) -> tuple[int, ...]:
        """Return positions for each of *names*, in the order given."""
        return tuple(self.index(name) for name in names)

    def as_set(self) -> frozenset[str]:
        """The attribute names as a frozen set."""
        return frozenset(self._attrs)

    def same_attributes(self, other: "Schema") -> bool:
        """True iff both schemas have the same attribute *set*."""
        return self.as_set() == other.as_set()

    def disjoint_from(self, other: "Schema") -> bool:
        """True iff the two schemas share no attribute name."""
        return not (self.as_set() & other.as_set())

    def common(self, other: "Schema") -> tuple[str, ...]:
        """Attributes present in both schemas, in this schema's order."""
        other_set = other.as_set()
        return tuple(a for a in self._attrs if a in other_set)

    @property
    def id_attributes(self) -> tuple[str, ...]:
        """The world-id attributes (``$``-prefixed), in order."""
        return tuple(a for a in self._attrs if is_id_attribute(a))

    @property
    def value_attributes(self) -> tuple[str, ...]:
        """The data attributes (non-``$``-prefixed), in order."""
        return tuple(a for a in self._attrs if not is_id_attribute(a))

    # -- construction of derived schemas ------------------------------------

    def project(self, names: Iterable[str]) -> "Schema":
        """Schema of a projection onto *names* (validates membership)."""
        names = tuple(names)
        for name in names:
            self.index(name)
        return Schema(names)

    def rename(self, mapping: Mapping[str, str]) -> "Schema":
        """Schema after the renaming δ given by *mapping* (old → new)."""
        for old in mapping:
            self.index(old)
        return Schema(mapping.get(a, a) for a in self._attrs)

    def concat(self, other: "Schema") -> "Schema":
        """Schema of a product; requires disjoint attribute sets."""
        if not self.disjoint_from(other):
            shared = sorted(self.as_set() & other.as_set())
            raise SchemaError(
                f"product operands share attributes {shared}; rename first"
            )
        return Schema(self._attrs + other._attrs)

    def drop(self, names: Iterable[str]) -> "Schema":
        """Schema without the attributes in *names*."""
        dropped = set(names)
        for name in dropped:
            self.index(name)
        return Schema(a for a in self._attrs if a not in dropped)
