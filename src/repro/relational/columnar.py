"""Columnar vectorized execution kernel for the inline hot path.

The tuple engine (:class:`repro.relational.relation.Relation`) stores a
relation as a frozenset of row tuples and pays, on *every* operator, a
per-row Python loop plus a fresh frozenset build — exactly the
tuple-at-a-time evaluation shape the paper's §8 performance discussion
warns turns polynomial plans into slow ones in practice. This module is
the alternative: a :class:`ColumnarRelation` stores the table as one
sequence per attribute and implements the same operator set with
vectorized passes —

* selection filters one cached row view (no set rebuild: selections of a
  distinct relation stay distinct);
* projection and renaming are column slices; the column-copy projection
  of the choice-of translation (§5.2) is a single column alias, O(1)
  regardless of row count;
* joins, semijoins and antijoins hash column slices and probe with
  C-speed ``zip`` iteration; :meth:`ColumnarRelation.join_on`
  additionally fuses σ(R × S) plans into one hash join pass;
* the ``cert``/``÷ W`` closing is a single ``Counter`` pass over a
  column slice (see :func:`repro.inline.physical`).

Distinctness is an invariant, not a per-operator pass: every public
``ColumnarRelation`` holds distinct rows, and operators that provably
preserve distinctness (selection, renaming, column copies, hash joins
of distinct operands, set differences) skip deduplication entirely.
Only projection onto a proper attribute subset and union pay one
``dict.fromkeys`` pass.

Which engine runs is a process-wide switch: ``REPRO_KERNEL=columnar``
(the default) or ``REPRO_KERNEL=tuple`` keeps the original tuple-at-a-
time path alive for differential testing; evaluators also accept an
explicit ``kernel=`` argument overriding the environment. Conversions
(:func:`as_columnar` / :func:`as_tuple`) are cached on the source
object, so routing a session's base tables through the kernel costs one
transposition per table, not one per statement.
"""

from __future__ import annotations

import os
from itertools import repeat
from operator import itemgetter
from typing import Callable, Iterable, Iterator, Mapping, NamedTuple, Sequence

from repro.errors import EvaluationError, SchemaError
from repro.relational.guards import checkpoint
from repro.relational.pad import PAD, row_sort_key
from repro.relational.predicates import Predicate
from repro.relational.relation import (
    Relation,
    Row,
    _coerce_row,
    check_join_pairs_cover_shared,
    oriented_equality_pairs,
    tuple_getter,
)
from repro.relational.schema import Schema

#: Environment variable selecting the execution kernel.
KERNEL_ENV = "REPRO_KERNEL"


class KernelOps(NamedTuple):
    """The per-kernel operation table the evaluators dispatch through.

    Every kernel switch site (the physical evaluator, the translate
    route, the representation's expansion cache, the DML paths) asks
    the registry for these three functions instead of branching on the
    kernel name, so adding a kernel is one :func:`register_kernel`
    call, not an edit at every site.
    """

    name: str
    #: Relation | ColumnarRelation → this kernel's representation (cached
    #: on the source object at the conversion boundary).
    convert: Callable[["Relation | ColumnarRelation"], "Relation | ColumnarRelation"]
    #: (schema, distinct aligned row tuples) → kernel relation.
    from_distinct_rows: Callable[..., "Relation | ColumnarRelation"]
    #: The nullary one-row relation {⟨⟩} (a single complete world's W).
    unit: Callable[[], "Relation | ColumnarRelation"]


#: name → lazy :class:`KernelOps` loader. Loaders run on first *use*, so
#: a kernel with an optional dependency (``array`` needs numpy) is
#: always a *valid name*; the dependency error surfaces only when that
#: kernel is actually selected.
_KERNEL_LOADERS: dict[str, Callable[[], KernelOps]] = {}
_KERNEL_OPS: dict[str, KernelOps] = {}


def register_kernel(name: str, loader: Callable[[], KernelOps]) -> None:
    """Register an execution kernel under *name* (one line per kernel)."""
    _KERNEL_LOADERS[name] = loader


def kernel_names() -> tuple[str, ...]:
    """The registered kernel names, in registration order."""
    return tuple(_KERNEL_LOADERS)


def active_kernel() -> str:
    """The kernel selected by ``REPRO_KERNEL`` (default ``columnar``)."""
    kernel = os.environ.get(KERNEL_ENV, "columnar").strip().lower()
    if kernel not in _KERNEL_LOADERS:
        raise EvaluationError(
            f"unknown kernel {kernel!r} in ${KERNEL_ENV}; "
            f"expected one of {kernel_names()}"
        )
    return kernel


def resolve_kernel(kernel: str | None) -> str:
    """An explicit kernel choice, falling back to :func:`active_kernel`."""
    if kernel is None:
        return active_kernel()
    if kernel not in _KERNEL_LOADERS:
        raise EvaluationError(
            f"unknown kernel {kernel!r}; expected one of {kernel_names()}"
        )
    return kernel


def kernel_ops(kernel: str | None = None) -> KernelOps:
    """The :class:`KernelOps` of *kernel* (or the active kernel).

    Loads the kernel lazily on first use and caches the table; a kernel
    whose loader fails (e.g. ``array`` without numpy installed) raises
    its loader's :class:`EvaluationError` here, at selection time.
    """
    name = resolve_kernel(kernel)
    ops = _KERNEL_OPS.get(name)
    if ops is None:
        ops = _KERNEL_LOADERS[name]()
        _KERNEL_OPS[name] = ops
    return ops


def _transpose(rows: Sequence[Row], width: int) -> tuple[tuple, ...]:
    """Rows → columns. ``zip(*rows)`` runs at C speed."""
    if width == 0:
        return ()
    if not rows:
        return ((),) * width
    return tuple(zip(*rows))


class ColumnarRelation:
    """An immutable relation stored column-wise; rows are distinct.

    Mirrors the public operator surface of :class:`Relation` (the two
    are interchangeable inside the inline evaluator), caching both the
    column view and the row view — whichever an operator needs — plus
    hash indexes keyed by attribute positions, like the tuple engine.
    """

    __slots__ = (
        "schema",
        "_nrows",
        "_columns",
        "_row_list",
        "_rowset",
        "_indexes",
        "_twin",
        "_hash",
    )

    def __init__(self, schema: Schema | Sequence[str], rows: Iterable[object] = ()) -> None:
        if not isinstance(schema, Schema):
            schema = Schema(schema)
        coerced = dict.fromkeys(_coerce_row(schema, row) for row in rows)
        self.schema = schema
        self._row_list: list[Row] | None = list(coerced)
        self._nrows = len(self._row_list)
        self._columns: tuple[tuple, ...] | None = None
        self._rowset: frozenset[Row] | None = None
        self._indexes: dict[tuple[int, ...], dict[tuple, list[int]]] = {}
        self._twin: Relation | None = None
        self._hash: int | None = None

    # -- trusted constructors ------------------------------------------------

    @classmethod
    def _blank(cls, schema: Schema, nrows: int) -> "ColumnarRelation":
        relation = object.__new__(cls)
        relation.schema = schema
        relation._nrows = nrows
        relation._columns = None
        relation._row_list = None
        relation._rowset = None
        relation._indexes = {}
        relation._twin = None
        relation._hash = None
        return relation

    @classmethod
    def _from_rows(cls, schema: Schema, rows: Sequence[Row]) -> "ColumnarRelation":
        """Internal constructor: *rows* must be distinct aligned tuples."""
        rows = rows if isinstance(rows, list) else list(rows)
        relation = cls._blank(schema, len(rows))
        relation._row_list = rows
        return relation

    @classmethod
    def _from_columns(
        cls, schema: Schema, columns: Sequence[Sequence], nrows: int
    ) -> "ColumnarRelation":
        """Internal constructor: *columns* must hold distinct rows."""
        relation = cls._blank(schema, nrows)
        relation._columns = tuple(columns)
        return relation

    @classmethod
    def _deduped(cls, schema: Schema, rows: Iterable[Row]) -> "ColumnarRelation":
        """Internal constructor deduplicating aligned row tuples."""
        return cls._from_rows(schema, list(dict.fromkeys(rows)))

    @staticmethod
    def unit() -> "ColumnarRelation":
        """The nullary relation {⟨⟩} (a single complete world's W)."""
        return ColumnarRelation._from_rows(Schema(()), [()])

    @staticmethod
    def empty(attributes: Sequence[str]) -> "ColumnarRelation":
        return ColumnarRelation._from_rows(Schema(attributes), [])

    @staticmethod
    def from_relation(relation: Relation) -> "ColumnarRelation":
        columnar = ColumnarRelation._from_rows(relation.schema, list(relation.rows))
        columnar._rowset = relation.rows
        columnar._twin = relation
        return columnar

    def to_relation(self) -> Relation:
        if self._twin is None:
            if self._rowset is not None:
                twin = Relation._raw(self.schema, self._rowset)
            else:
                # Defer the tuple materialization: the twin reads rows
                # through this relation only if something needs them.
                twin = Relation._from_kernel(self.schema)
            twin._columnar = self
            self._twin = twin
        return self._twin

    # -- the two cached views -------------------------------------------------

    @property
    def columns(self) -> tuple[tuple, ...]:
        if self._columns is None:
            self._columns = _transpose(self._row_list, len(self.schema))
        return self._columns

    def row_list(self) -> list[Row]:
        if self._row_list is None:
            if len(self.schema) == 0:
                self._row_list = [()] * self._nrows
            else:
                self._row_list = list(zip(*self._columns))
        return self._row_list

    @property
    def rows(self) -> frozenset[Row]:
        if self._rowset is None:
            self._rowset = frozenset(self.row_list())
        return self._rowset

    def tuples(self, attributes: Sequence[str]) -> Iterator[tuple]:
        """C-speed iterator over the sub-tuples of *attributes*.

        The workhorse of the vectorized passes: world-id extraction,
        join keys, group fingerprints and cert counting all reduce to
        zipping a handful of column slices.
        """
        if not attributes:
            return repeat((), self._nrows)
        schema = self.schema
        if self._columns is not None:
            return zip(*(self._columns[schema.index(a)] for a in attributes))
        # Row-list representation: extract at C speed without a full
        # transpose. itemgetter over several positions yields tuples
        # directly; for one position, zip() over the scalar stream
        # wraps each value into a 1-tuple, still at C speed.
        positions = schema.indices(attributes)
        if len(positions) == 1:
            return zip(map(itemgetter(positions[0]), self._row_list))
        return map(itemgetter(*positions), self._row_list)

    def column_values(self, attribute: str):
        """One column's value stream (C-speed; never transposes)."""
        position = self.schema.index(attribute)
        if self._columns is not None:
            return self._columns[position]
        return map(itemgetter(position), self._row_list)

    def _index(self, positions: tuple[int, ...]) -> dict[tuple, list[int]]:
        """Hash partition: key sub-tuple → row indices (cached)."""
        cached = self._indexes.get(positions)
        if cached is None:
            attributes = tuple(self.schema[p] for p in positions)
            cached = {}
            for where, key in enumerate(self.tuples(attributes)):
                bucket = cached.get(key)
                if bucket is None:
                    cached[key] = [where]
                else:
                    bucket.append(where)
            self._indexes[positions] = cached
        return cached

    def _gather(self, indices: Sequence[int]) -> "ColumnarRelation":
        rows = self.row_list()
        return type(self)._from_rows(self.schema, [rows[i] for i in indices])

    # -- container protocol ---------------------------------------------------

    def __len__(self) -> int:
        return self._nrows

    def __iter__(self) -> Iterator[Row]:
        return iter(self.row_list())

    def __contains__(self, row: object) -> bool:
        return row in self.rows

    def __bool__(self) -> bool:
        return self._nrows > 0

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ColumnarRelation) or isinstance(other, Relation):
            if self.schema == other.schema:
                return self.rows == other.rows
            if not self.schema.same_attributes(other.schema):
                return False
            aligned = frozenset(
                as_columnar(other).tuples(self.schema.attributes)
            )
            return self.rows == aligned
        return NotImplemented

    def __hash__(self) -> int:
        # Matches Relation.__hash__ for equal content, so mixed-kernel
        # relations can coexist in one set or dict.
        if self._hash is None:
            canonical_attrs = tuple(sorted(self.schema.attributes))
            if canonical_attrs == self.schema.attributes:
                canonical_rows = self.rows
            else:
                canonical_rows = frozenset(self.tuples(canonical_attrs))
            self._hash = hash((canonical_attrs, canonical_rows))
        return self._hash

    def __repr__(self) -> str:
        return f"ColumnarRelation({list(self.schema)!r}, {self._nrows} rows)"

    def sorted_rows(self) -> list[Row]:
        return sorted(self.row_list(), key=row_sort_key)

    def named_rows(self) -> list[dict[str, object]]:
        attrs = self.schema.attributes
        return [dict(zip(attrs, row)) for row in self.sorted_rows()]

    def _reordered(self, attributes: Sequence[str]) -> "ColumnarRelation":
        positions = self.schema.indices(attributes)
        if positions == tuple(range(len(self.schema))):
            return self
        columns = self.columns
        return type(self)._from_columns(
            Schema(attributes), tuple(columns[p] for p in positions), self._nrows
        )

    # -- unary operators -------------------------------------------------------

    def select(self, predicate: Predicate) -> "ColumnarRelation":
        checkpoint("select", self._nrows)
        check = predicate.bind(self.schema)
        return type(self)._from_rows(
            self.schema, [row for row in self.row_list() if check(row)]
        )

    def select_values(self, assignment: Mapping[str, object]) -> "ColumnarRelation":
        positions = self.schema.indices(assignment)
        key = tuple(assignment.values())
        return self._gather(self._index(positions).get(key, ()))

    def project(self, attributes: Sequence[str]) -> "ColumnarRelation":
        checkpoint("project", self._nrows)
        schema = self.schema.project(attributes)
        positions = self.schema.indices(attributes)
        if positions == tuple(range(len(self.schema))):
            return type(self)._share(self, schema)
        if len(positions) == len(self.schema):
            # A permutation of all attributes: distinctness is preserved.
            return self._reordered(attributes)
        if not positions:
            return type(self)._from_rows(
                schema, [()] if self._nrows else []
            )
        columns = self._columns
        if columns is not None:
            kept = set(positions)
            kept_objects = {id(columns[p]) for p in positions}
            if all(
                id(columns[q]) in kept_objects
                for q in range(len(columns))
                if q not in kept
            ):
                # Every dropped column is the *same object* as a kept
                # one (a copy_attribute alias, e.g. dropping Dep while
                # keeping the world id $Dep): rows stay pairwise
                # distinct, so this is a zero-copy column selection.
                return type(self)._from_columns(
                    schema, tuple(columns[p] for p in positions), self._nrows
                )
        return type(self)._deduped(schema, self.tuples(attributes))

    @classmethod
    def _share(cls, source: "ColumnarRelation", schema: Schema) -> "ColumnarRelation":
        """The same rows under a renamed/reordered-free schema (zero copy)."""
        relation = cls._blank(schema, source._nrows)
        relation._columns = source._columns
        relation._row_list = source._row_list
        relation._rowset = source._rowset
        relation._indexes = source._indexes
        return relation

    def rename(self, mapping: Mapping[str, str]) -> "ColumnarRelation":
        return type(self)._share(self, self.schema.rename(mapping))

    def extend(
        self, attribute: str, function: Callable[[dict[str, object]], object]
    ) -> "ColumnarRelation":
        if attribute in self.schema:
            raise SchemaError(f"attribute {attribute!r} already exists")
        checkpoint("extend", self._nrows)
        attrs = self.schema.attributes
        schema = Schema(attrs + (attribute,))
        rows = [
            row + (function(dict(zip(attrs, row))),) for row in self.row_list()
        ]
        return type(self)._from_rows(schema, rows)

    def copy_attribute(self, source: str, target: str) -> "ColumnarRelation":
        """π_{*, source as target}: O(1) — the column object is aliased."""
        if target in self.schema:
            raise SchemaError(f"attribute {target!r} already exists")
        position = self.schema.index(source)
        columns = self.columns
        return type(self)._from_columns(
            Schema(self.schema.attributes + (target,)),
            columns + (columns[position],),
            self._nrows,
        )

    # -- binary operators --------------------------------------------------------

    def _aligned_tuples(self, other: "ColumnarRelation | Relation", op: str) -> Iterator[tuple]:
        if not self.schema.same_attributes(other.schema):
            raise SchemaError(
                f"{op} operands must have equal attribute sets; "
                f"got {list(self.schema)} vs {list(other.schema)}"
            )
        return as_columnar(other).tuples(self.schema.attributes)

    def union(self, other: "ColumnarRelation | Relation") -> "ColumnarRelation":
        checkpoint("union", self._nrows + len(other))
        aligned = self._aligned_tuples(other, "union")
        combined = dict.fromkeys(self.row_list())
        combined.update(dict.fromkeys(aligned))
        return type(self)._from_rows(self.schema, list(combined))

    def difference(self, other: "ColumnarRelation | Relation") -> "ColumnarRelation":
        checkpoint("difference", self._nrows + len(other))
        drop = frozenset(self._aligned_tuples(other, "difference"))
        return type(self)._from_rows(
            self.schema, [row for row in self.row_list() if row not in drop]
        )

    def intersection(self, other: "ColumnarRelation | Relation") -> "ColumnarRelation":
        checkpoint("intersection", self._nrows + len(other))
        keep = frozenset(self._aligned_tuples(other, "intersection"))
        return type(self)._from_rows(
            self.schema, [row for row in self.row_list() if row in keep]
        )

    def product(self, other: "ColumnarRelation | Relation") -> "ColumnarRelation":
        other = as_columnar(other)
        checkpoint("product", self._nrows + len(other))
        schema = self.schema.concat(other.schema)
        if not self.schema:
            # {⟨⟩} × R = R (the unit world table is a frequent operand).
            if self._nrows == 0:
                return type(self)._from_rows(schema, [])
            return type(other)._share(other, schema)
        if not other.schema:
            if len(other) == 0:
                return type(self)._from_rows(schema, [])
            return type(self)._share(self, schema)
        right = other.row_list()
        rows = [left + r for left in self.row_list() for r in right]
        return type(self)._from_rows(schema, rows)

    def natural_join(self, other: "ColumnarRelation | Relation") -> "ColumnarRelation":
        other = as_columnar(other)
        common = self.schema.common(other.schema)
        return self.join_on(other, [(a, a) for a in common])

    def equi_join(
        self, other: "ColumnarRelation | Relation", pairs: Sequence[tuple[str, str]]
    ) -> "ColumnarRelation":
        other = as_columnar(other)
        self.schema.concat(other.schema)  # equi-join requires disjoint schemas
        return self.join_on(other, pairs)

    def join_on(
        self, other: "ColumnarRelation | Relation", pairs: Sequence[tuple[str, str]]
    ) -> "ColumnarRelation":
        """Hash join on explicit ``(left_attr, right_attr)`` key pairs.

        The one build/probe loop behind :meth:`natural_join` (all shared
        names as ``(a, a)`` pairs) and :meth:`equi_join` (disjoint
        schemas): shared attribute names join positionally when listed
        as ``(a, a)``, and cross-named equalities keep both columns. The
        output schema is the left schema followed by the right
        attributes not named on the left. This is also the fused
        evaluation of σ_{eq}(R × S) plans — the product is never
        materialized.
        """
        other = as_columnar(other)
        if not pairs:
            return self.product(other)
        checkpoint("join_on", self._nrows + len(other))
        left_set = self.schema.as_set()
        check_join_pairs_cover_shared(left_set, other.schema, pairs)
        right_key = other.schema.indices(b for _, b in pairs)
        buckets = other._index(right_key)
        right_rest = tuple(
            i for i, a in enumerate(other.schema) if a not in left_set
        )
        schema = Schema(
            self.schema.attributes + tuple(other.schema[i] for i in right_rest)
        )
        left_keys = self.tuples(tuple(a for a, _ in pairs))
        if not right_rest:
            # Right side is pure key: the join degenerates to a semijoin
            # (the answer ⋈ world-projection pattern of the lazy §5.3 form).
            return type(self)._from_rows(
                schema,
                [
                    row
                    for row, key in zip(self.row_list(), left_keys)
                    if key in buckets
                ],
            )
        rest_of = tuple_getter(right_rest)
        right_rows = other.row_list()
        rows: list[Row] = []
        append = rows.append
        for left, key in zip(self.row_list(), left_keys):
            bucket = buckets.get(key)
            if bucket is not None:
                for i in bucket:
                    append(left + rest_of(right_rows[i]))
        return type(self)._from_rows(schema, rows)

    def theta_join(
        self, other: "ColumnarRelation | Relation", predicate: Predicate
    ) -> "ColumnarRelation":
        other = as_columnar(other)
        pairs = predicate.equality_pairs()
        if pairs is not None:
            oriented = oriented_equality_pairs(self.schema.as_set(), pairs)
            if oriented is not None:
                return self.equi_join(other, oriented)
        return self.product(other).select(predicate)

    def semijoin(self, other: "ColumnarRelation | Relation") -> "ColumnarRelation":
        other = as_columnar(other)
        common = self.schema.common(other.schema)
        if not common:
            return self if len(other) else type(self)._from_rows(self.schema, [])
        checkpoint("semijoin", self._nrows + len(other))
        keys = other._index(other.schema.indices(common))
        return type(self)._from_rows(
            self.schema,
            [
                row
                for row, key in zip(self.row_list(), self.tuples(common))
                if key in keys
            ],
        )

    def antijoin(self, other: "ColumnarRelation | Relation") -> "ColumnarRelation":
        other = as_columnar(other)
        common = self.schema.common(other.schema)
        if not common:
            return type(self)._from_rows(self.schema, []) if len(other) else self
        checkpoint("antijoin", self._nrows + len(other))
        keys = other._index(other.schema.indices(common))
        return type(self)._from_rows(
            self.schema,
            [
                row
                for row, key in zip(self.row_list(), self.tuples(common))
                if key not in keys
            ],
        )

    def divide(self, other: "ColumnarRelation | Relation") -> "ColumnarRelation":
        other = as_columnar(other)
        divisor_attrs = other.schema.as_set()
        if not divisor_attrs <= self.schema.as_set():
            raise SchemaError(
                f"division requires divisor attributes {sorted(divisor_attrs)} "
                f"⊆ dividend attributes {list(self.schema)}"
            )
        checkpoint("divide", self._nrows + len(other))
        keep = tuple(a for a in self.schema if a not in divisor_attrs)
        required = other.rows
        need = len(required)
        seen: dict[tuple, set[tuple]] = {}
        for quotient, divisor in zip(
            self.tuples(keep), self.tuples(other.schema.attributes)
        ):
            group = seen.get(quotient)
            if group is None:
                seen[quotient] = {divisor}
            else:
                group.add(divisor)
        return type(self)._from_rows(
            Schema(keep),
            [d for d, vs in seen.items() if len(vs) >= need and required <= vs],
        )

    # -- DML kernel ops: mask / scatter / append ----------------------------------

    def mask(
        self,
        matched: "ColumnarRelation | Relation",
        attributes: Sequence[str] | None = None,
    ) -> "ColumnarRelation":
        """Boolean-keep by hashed key lookup (see :meth:`Relation.mask`).

        One build pass over *matched*'s key columns and one C-speed
        zip-and-probe over this relation's row view — the columnar hot
        path of ``delete``: no tuple materialization beyond the key
        sub-tuples, and the kept rows are shared, not copied.
        """
        matched = as_columnar(matched)
        checkpoint("mask", self._nrows + len(matched))
        attrs = (
            tuple(attributes) if attributes is not None else self.schema.attributes
        )
        self.schema.indices(attrs)  # validate eagerly, like the tuple twin
        drop = set(matched.tuples(attrs))
        if not drop:
            return self
        return type(self)._from_rows(
            self.schema,
            [
                row
                for row, key in zip(self.row_list(), self.tuples(attrs))
                if key not in drop
            ],
        )

    def scatter_update(
        self,
        matches: "ColumnarRelation | Relation",
        setters: Sequence[tuple[str, Callable[[Row], object]]],
    ) -> "ColumnarRelation":
        """Rewrite the rows *matches* selects (see :meth:`Relation.scatter_update`).

        The matched targets stream through :meth:`tuples` as column
        slices; kept rows are probed against the target set at C speed.
        Only the rewritten rows are materialized anew.
        """
        matches = as_columnar(matches)
        checkpoint("scatter_update", self._nrows + len(matches))
        positions = [self.schema.index(attribute) for attribute, _ in setters]
        functions = [function for _, function in setters]
        drop: set[Row] = set()
        rewritten: list[Row] = []
        append = rewritten.append
        pairs = zip(matches.row_list(), matches.tuples(self.schema.attributes))
        if len(functions) == 1:
            # The common one-set-clause statement: rewrite by tuple
            # slicing instead of a per-row list round-trip.
            position, function = positions[0], functions[0]
            tail = position + 1
            for match, target in pairs:
                drop.add(target)
                append(target[:position] + (function(match),) + target[tail:])
        else:
            for match, target in pairs:
                drop.add(target)
                new_row = list(target)
                for position, function in zip(positions, functions):
                    new_row[position] = function(match)
                append(tuple(new_row))
        kept = [row for row in self.row_list() if row not in drop]
        return type(self)._deduped(self.schema, rewritten + kept)

    def append(self, rows: Iterable[Row]) -> "ColumnarRelation":
        """The relation with the aligned tuples *rows* added.

        O(additions) probe work against the cached row set plus one
        pointer-copy of the existing row view — no per-row re-coercion
        like the constructor (see :meth:`Relation.append`).
        """
        additions = [row if isinstance(row, tuple) else tuple(row) for row in rows]
        checkpoint("append", self._nrows + len(additions))
        width = len(self.schema)
        for row in additions:
            if len(row) != width:
                raise SchemaError(
                    f"appended row {row!r} has {len(row)} values; schema "
                    f"{list(self.schema)} expects {width}"
                )
        present = self.rows
        fresh = list(dict.fromkeys(row for row in additions if row not in present))
        if not fresh:
            return self
        return type(self)._from_rows(self.schema, self.row_list() + fresh)

    def aggregate_by(
        self, keys: Sequence[str], specs: Sequence["AggSpec"]
    ) -> "ColumnarRelation":
        """Grouped SQL aggregation, vectorized: one fold pass.

        The group keys stream through :meth:`tuples` and each aggregate
        argument through :meth:`column_values` — C-speed zips feeding
        the shared fold of :mod:`repro.relational.aggregates` — so the
        world-grouped aggregation of the inline hot path (keys = world
        ids + the user's GROUP BY columns) costs one dictionary pass
        over the flat answer table, never a per-world loop. Output rows
        are distinct by construction (one per key).
        """
        from repro.relational.aggregates import aggregate_rows, default_row

        checkpoint("aggregate_by", self._nrows)
        keys = tuple(keys)
        schema = Schema(keys + tuple(spec.output for spec in specs))
        columns = [
            self.column_values(spec.argument)
            if spec.argument is not None
            else repeat(None, self._nrows)
            for spec in specs
        ]
        args = zip(*columns) if columns else repeat((), self._nrows)
        out = aggregate_rows(self.tuples(keys), args, specs)
        if not out and not keys:
            out = [default_row(specs)]
        return type(self)._from_rows(schema, out)

    def left_outer_join_padded(self, other: "ColumnarRelation | Relation") -> "ColumnarRelation":
        other = as_columnar(other)
        checkpoint("left_outer_join_padded", self._nrows + len(other))
        common = self.schema.common(other.schema)
        if not common:
            joined = self.natural_join(other)
            pad_attrs = other.schema.attributes
            pad_row = (PAD,) * len(pad_attrs)
            padded = [row + pad_row for row in ([] if other else self.row_list())]
            return joined.union(
                type(self)._from_rows(joined.schema, padded)
            )
        # One fused build/probe pass: each left row emits its join
        # partners, or one PAD-padded row when dangling — instead of
        # separate ⋈, antijoin and ∪ passes over the whole relation
        # (this sits on the scalar-subquery hot path of DML match
        # plans). Joined rows carry real choice values, padded rows
        # carry PAD on the pad attributes — the two row sets are
        # disjoint unless the data itself contains PAD, so the final
        # dedup pass is the safety net, not the common case.
        left_set = self.schema.as_set()
        buckets = other._index(other.schema.indices(common))
        rest_positions = tuple(
            i for i, a in enumerate(other.schema) if a not in left_set
        )
        schema = Schema(
            self.schema.attributes
            + tuple(other.schema[i] for i in rest_positions)
        )
        rest_of = tuple_getter(rest_positions)
        right_rows = other.row_list()
        pad_row = (PAD,) * len(rest_positions)
        rows: list[Row] = []
        append = rows.append
        for left, key in zip(self.row_list(), self.tuples(common)):
            bucket = buckets.get(key)
            if bucket is None:
                append(left + pad_row)
            else:
                for i in bucket:
                    append(left + rest_of(right_rows[i]))
        return type(self)._deduped(schema, rows)

    # -- helpers used by the world-set machinery ---------------------------------

    def distinct_values(self, attributes: Sequence[str]) -> list[tuple]:
        return self.project(attributes).sorted_rows()

    def active_domain(self) -> frozenset[object]:
        return frozenset(
            value for column in self.columns for value in column
        )


# -- kernel conversion boundary -----------------------------------------------------


def as_columnar(relation: "Relation | ColumnarRelation") -> ColumnarRelation:
    """The columnar view of *relation*, cached on the source object."""
    if isinstance(relation, ColumnarRelation):
        return relation
    cached = relation._columnar
    if cached is None:
        cached = ColumnarRelation.from_relation(relation)
        relation._columnar = cached
    return cached


def as_tuple(relation: "Relation | ColumnarRelation") -> Relation:
    """The tuple-engine view of *relation*, cached on the source object."""
    if isinstance(relation, Relation):
        return relation
    return relation.to_relation()


def kernel_unit(kernel: str | None) -> "Relation | ColumnarRelation":
    """The nullary one-row relation {⟨⟩} in the *kernel*'s representation."""
    return kernel_ops(kernel).unit()


def tuples_of(
    relation: "Relation | ColumnarRelation", attributes: Sequence[str]
) -> Iterator[tuple]:
    """C-speed iterator over sub-tuples of *attributes*, either kernel."""
    if isinstance(relation, ColumnarRelation):
        return relation.tuples(attributes)
    if not attributes:
        return repeat((), len(relation.rows))
    return map(tuple_getter(relation.schema.indices(attributes)), relation.rows)


# -- kernel registry ----------------------------------------------------------------


def _load_array_kernel() -> KernelOps:
    # Deferred import: the array kernel needs numpy, which is optional;
    # array_kernel_ops raises a clear EvaluationError when it is absent.
    from repro.relational.array_kernel import array_kernel_ops

    return array_kernel_ops()


register_kernel(
    "columnar",
    lambda: KernelOps(
        "columnar", as_columnar, ColumnarRelation._from_rows, ColumnarRelation.unit
    ),
)
register_kernel(
    "tuple", lambda: KernelOps("tuple", as_tuple, Relation._raw, Relation.unit)
)
register_kernel("array", _load_array_kernel)
