"""The padding constant of the modified left outer join (Remark 5.5).

The paper's translation of choice-of uses a left outer join that pads
dangling tuples with "a special constant c" (footnote 1 of the paper)
instead of SQL nulls. The same constant realizes the dummy choice
``v = 1`` that Figure 3 assigns when choice-of is applied to an empty
relation.

We deviate from the literal ``1`` of Figure 3 and use a dedicated
sentinel: a data value ``1`` in a choice column would otherwise collide
with the dummy world id (see the faithfulness notes in DESIGN.md). The
sentinel is hashable, self-equal, and orders before every other value so
that rendered tables are deterministic.
"""

from __future__ import annotations

from typing import Any


class PadConstant:
    """Singleton sentinel used to pad dangling outer-join tuples."""

    _instance: "PadConstant | None" = None

    def __new__(cls) -> "PadConstant":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "⊥"

    def __hash__(self) -> int:
        return hash("repro.relational.pad.PadConstant")

    def __eq__(self, other: object) -> bool:
        return isinstance(other, PadConstant)

    def __lt__(self, other: object) -> bool:
        return not isinstance(other, PadConstant)

    def __gt__(self, other: object) -> bool:
        return False

    def __le__(self, other: object) -> bool:
        return True

    def __ge__(self, other: object) -> bool:
        return isinstance(other, PadConstant)

    def __reduce__(self) -> tuple[Any, ...]:
        return (PadConstant, ())


#: The padding constant ``c`` of Remark 5.5.
PAD = PadConstant()


def sort_key(value: object) -> tuple[int, str, object]:
    """A total order over mixed-type values, for deterministic rendering.

    ``PAD`` sorts first, then values grouped by type name and compared
    within their own type. This is only used for display and stable
    iteration, never for query semantics.
    """
    if isinstance(value, PadConstant):
        return (0, "", "")
    if isinstance(value, bool):
        return (1, "bool", value)
    if isinstance(value, (int, float)):
        return (1, "number", value)
    return (1, type(value).__name__, value)  # type: ignore[return-value]


def row_sort_key(row: tuple) -> tuple:
    """Sort key for whole rows (tuple of per-value keys)."""
    return tuple(sort_key(v) for v in row)
