"""Relational algebra expressions: AST, schema inference, evaluation.

This module gives relational algebra a first-class syntax so that the
Figure 6 translation can *construct* relational queries (Theorem 5.7
produces a query, not just an answer). Expressions are immutable and
hashable; evaluation against a :class:`Database` memoizes shared
subexpressions, which the translation produces in abundance (the world
table expression is referenced by several operands).

The node set covers the six base operators (σ, π, δ, ×, ∪, −), the
derived operators (∩, ⋈, θ-join, ⋉, antijoin, ÷), the padded left outer
join ``=⊳⊲`` of Remark 5.5, literal relations, and the column-copy
projection ``π_{*, A as B}`` used by the choice-of translation.
"""

from __future__ import annotations

from typing import Iterator, Mapping, Sequence

from repro.errors import EvaluationError, SchemaError
from repro.relational.database import Database
from repro.relational.predicates import Predicate
from repro.relational.relation import Relation
from repro.relational.schema import Schema

SchemaEnv = Mapping[str, Schema]


class RAExpr:
    """Abstract base class of relational algebra expressions."""

    __slots__ = ()

    def children(self) -> tuple["RAExpr", ...]:
        """Immediate subexpressions."""
        raise NotImplementedError

    def schema(self, env: SchemaEnv) -> Schema:
        """Infer the output schema under the table-schema environment."""
        raise NotImplementedError

    def _evaluate(self, db: Database, cache: dict[int, Relation]) -> Relation:
        raise NotImplementedError

    def evaluate(self, db: Database) -> Relation:
        """Evaluate against *db*, memoizing shared subexpressions."""
        return self._evaluate(db, {})

    def _cached(self, db: Database, cache: dict[int, Relation]) -> Relation:
        key = id(self)
        hit = cache.get(key)
        if hit is None:
            hit = self._evaluate(db, cache)
            cache[key] = hit
        return hit

    # -- analysis -------------------------------------------------------------

    def size(self) -> int:
        """Number of operator nodes, counting shared subtrees repeatedly."""
        return 1 + sum(child.size() for child in self.children())

    def dag_size(self) -> int:
        """Number of *distinct* operator nodes (shared subtrees once).

        This is the faithful metric for Theorem 5.7's polynomial-size
        claim: Figure 6's translation is written with let-bound
        intermediate expressions, i.e. as a DAG, and evaluation memoizes
        shared nodes accordingly.
        """
        seen: set[int] = set()

        def visit(node: "RAExpr") -> int:
            if id(node) in seen:
                return 0
            seen.add(id(node))
            return 1 + sum(visit(child) for child in node.children())

        return visit(self)

    def depth(self) -> int:
        """Height of the expression tree."""
        kids = self.children()
        return 1 + (max(child.depth() for child in kids) if kids else 0)

    def tables(self) -> frozenset[str]:
        """Names of base tables referenced anywhere in the expression."""
        found: set[str] = set()
        for node in self.walk():
            if isinstance(node, Table):
                found.add(node.name)
        return frozenset(found)

    def walk(self) -> Iterator["RAExpr"]:
        """Pre-order traversal of the expression tree."""
        yield self
        for child in self.children():
            yield from child.walk()

    def to_text(self) -> str:
        """A compact textbook-style rendering (π, σ, δ, ⋈, ÷ …)."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return self.to_text()

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self._key() == other._key()  # type: ignore[attr-defined]

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._key()))

    def _key(self) -> tuple:
        raise NotImplementedError


class Table(RAExpr):
    """Reference to a database relation by name."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def children(self) -> tuple[RAExpr, ...]:
        return ()

    def schema(self, env: SchemaEnv) -> Schema:
        try:
            return env[self.name]
        except KeyError:
            raise SchemaError(f"unknown table {self.name!r}") from None

    def _evaluate(self, db: Database, cache: dict[int, Relation]) -> Relation:
        return db[self.name]

    def to_text(self) -> str:
        return self.name

    def _key(self) -> tuple:
        return (self.name,)


class Literal(RAExpr):
    """A constant relation embedded in the query (e.g. W = {⟨⟩})."""

    __slots__ = ("relation",)

    def __init__(self, relation: Relation) -> None:
        self.relation = relation

    def children(self) -> tuple[RAExpr, ...]:
        return ()

    def schema(self, env: SchemaEnv) -> Schema:
        return self.relation.schema

    def _evaluate(self, db: Database, cache: dict[int, Relation]) -> Relation:
        return self.relation

    def to_text(self) -> str:
        if not self.relation.schema and len(self.relation) == 1:
            return "{⟨⟩}"
        return f"lit[{len(self.relation)}]"

    def _key(self) -> tuple:
        return (self.relation,)


class Select(RAExpr):
    """Selection σ_φ(q)."""

    __slots__ = ("predicate", "child")

    def __init__(self, predicate: Predicate, child: RAExpr) -> None:
        self.predicate = predicate
        self.child = child

    def children(self) -> tuple[RAExpr, ...]:
        return (self.child,)

    def schema(self, env: SchemaEnv) -> Schema:
        schema = self.child.schema(env)
        for attr in self.predicate.attributes():
            schema.index(attr)
        return schema

    def _evaluate(self, db: Database, cache: dict[int, Relation]) -> Relation:
        return self.child._cached(db, cache).select(self.predicate)

    def to_text(self) -> str:
        return f"σ[{self.predicate!r}]({self.child.to_text()})"

    def _key(self) -> tuple:
        return (self.predicate, self.child)


class Project(RAExpr):
    """Projection π_U(q)."""

    __slots__ = ("attributes", "child")

    def __init__(self, attributes: Sequence[str], child: RAExpr) -> None:
        self.attributes = tuple(attributes)
        self.child = child

    def children(self) -> tuple[RAExpr, ...]:
        return (self.child,)

    def schema(self, env: SchemaEnv) -> Schema:
        return self.child.schema(env).project(self.attributes)

    def _evaluate(self, db: Database, cache: dict[int, Relation]) -> Relation:
        return self.child._cached(db, cache).project(self.attributes)

    def to_text(self) -> str:
        return f"π[{','.join(self.attributes)}]({self.child.to_text()})"

    def _key(self) -> tuple:
        return (self.attributes, self.child)


class Rename(RAExpr):
    """Renaming δ_{old→new}(q)."""

    __slots__ = ("mapping", "child")

    def __init__(self, mapping: Mapping[str, str], child: RAExpr) -> None:
        self.mapping = dict(mapping)
        self.child = child

    def children(self) -> tuple[RAExpr, ...]:
        return (self.child,)

    def schema(self, env: SchemaEnv) -> Schema:
        return self.child.schema(env).rename(self.mapping)

    def _evaluate(self, db: Database, cache: dict[int, Relation]) -> Relation:
        return self.child._cached(db, cache).rename(self.mapping)

    def to_text(self) -> str:
        renames = ",".join(f"{old}→{new}" for old, new in sorted(self.mapping.items()))
        return f"δ[{renames}]({self.child.to_text()})"

    def _key(self) -> tuple:
        return (tuple(sorted(self.mapping.items())), self.child)


class CopyAttr(RAExpr):
    """The column-copy projection π_{*, source as target}(q) of §5.2."""

    __slots__ = ("source", "target", "child")

    def __init__(self, source: str, target: str, child: RAExpr) -> None:
        self.source = source
        self.target = target
        self.child = child

    def children(self) -> tuple[RAExpr, ...]:
        return (self.child,)

    def schema(self, env: SchemaEnv) -> Schema:
        schema = self.child.schema(env)
        schema.index(self.source)
        return Schema(schema.attributes + (self.target,))

    def _evaluate(self, db: Database, cache: dict[int, Relation]) -> Relation:
        return self.child._cached(db, cache).copy_attribute(self.source, self.target)

    def to_text(self) -> str:
        return f"π[*,{self.source} as {self.target}]({self.child.to_text()})"

    def _key(self) -> tuple:
        return (self.source, self.target, self.child)


class _Binary(RAExpr):
    """Shared plumbing for binary operator nodes."""

    __slots__ = ("left", "right")
    symbol = "?"

    def __init__(self, left: RAExpr, right: RAExpr) -> None:
        self.left = left
        self.right = right

    def children(self) -> tuple[RAExpr, ...]:
        return (self.left, self.right)

    def to_text(self) -> str:
        return f"({self.left.to_text()} {self.symbol} {self.right.to_text()})"

    def _key(self) -> tuple:
        return (self.left, self.right)

    def _same_attrs_schema(self, env: SchemaEnv, op: str) -> Schema:
        left = self.left.schema(env)
        right = self.right.schema(env)
        if not left.same_attributes(right):
            raise SchemaError(
                f"{op} operands must have equal attribute sets; "
                f"got {list(left)} vs {list(right)}"
            )
        return left


class Union(_Binary):
    """Set union q₁ ∪ q₂."""

    __slots__ = ()
    symbol = "∪"

    def schema(self, env: SchemaEnv) -> Schema:
        return self._same_attrs_schema(env, "union")

    def _evaluate(self, db: Database, cache: dict[int, Relation]) -> Relation:
        return self.left._cached(db, cache).union(self.right._cached(db, cache))


class Difference(_Binary):
    """Set difference q₁ − q₂."""

    __slots__ = ()
    symbol = "−"

    def schema(self, env: SchemaEnv) -> Schema:
        return self._same_attrs_schema(env, "difference")

    def _evaluate(self, db: Database, cache: dict[int, Relation]) -> Relation:
        return self.left._cached(db, cache).difference(self.right._cached(db, cache))


class Intersection(_Binary):
    """Set intersection q₁ ∩ q₂."""

    __slots__ = ()
    symbol = "∩"

    def schema(self, env: SchemaEnv) -> Schema:
        return self._same_attrs_schema(env, "intersection")

    def _evaluate(self, db: Database, cache: dict[int, Relation]) -> Relation:
        return self.left._cached(db, cache).intersection(self.right._cached(db, cache))


class Product(_Binary):
    """Cartesian product q₁ × q₂ (disjoint attribute sets)."""

    __slots__ = ()
    symbol = "×"

    def schema(self, env: SchemaEnv) -> Schema:
        return self.left.schema(env).concat(self.right.schema(env))

    def _evaluate(self, db: Database, cache: dict[int, Relation]) -> Relation:
        return self.left._cached(db, cache).product(self.right._cached(db, cache))


class NaturalJoin(_Binary):
    """Natural join q₁ ⋈ q₂ on all shared attribute names."""

    __slots__ = ()
    symbol = "⋈"

    def schema(self, env: SchemaEnv) -> Schema:
        left = self.left.schema(env)
        right = self.right.schema(env)
        shared = left.as_set() & right.as_set()
        return Schema(left.attributes + tuple(a for a in right if a not in shared))

    def _evaluate(self, db: Database, cache: dict[int, Relation]) -> Relation:
        return self.left._cached(db, cache).natural_join(self.right._cached(db, cache))


class ThetaJoin(RAExpr):
    """θ-join q₁ ⋈_φ q₂ over disjoint schemas."""

    __slots__ = ("predicate", "left", "right")

    def __init__(self, predicate: Predicate, left: RAExpr, right: RAExpr) -> None:
        self.predicate = predicate
        self.left = left
        self.right = right

    def children(self) -> tuple[RAExpr, ...]:
        return (self.left, self.right)

    def schema(self, env: SchemaEnv) -> Schema:
        schema = self.left.schema(env).concat(self.right.schema(env))
        for attr in self.predicate.attributes():
            schema.index(attr)
        return schema

    def _evaluate(self, db: Database, cache: dict[int, Relation]) -> Relation:
        return self.left._cached(db, cache).theta_join(
            self.right._cached(db, cache), self.predicate
        )

    def to_text(self) -> str:
        return f"({self.left.to_text()} ⋈[{self.predicate!r}] {self.right.to_text()})"

    def _key(self) -> tuple:
        return (self.predicate, self.left, self.right)


class Semijoin(_Binary):
    """Left semijoin q₁ ⋉ q₂ on shared attributes."""

    __slots__ = ()
    symbol = "⋉"

    def schema(self, env: SchemaEnv) -> Schema:
        self.right.schema(env)
        return self.left.schema(env)

    def _evaluate(self, db: Database, cache: dict[int, Relation]) -> Relation:
        return self.left._cached(db, cache).semijoin(self.right._cached(db, cache))


class Antijoin(_Binary):
    """Left antijoin q₁ ▷ q₂ on shared attributes (not-exists)."""

    __slots__ = ()
    symbol = "▷"

    def schema(self, env: SchemaEnv) -> Schema:
        self.right.schema(env)
        return self.left.schema(env)

    def _evaluate(self, db: Database, cache: dict[int, Relation]) -> Relation:
        return self.left._cached(db, cache).antijoin(self.right._cached(db, cache))


class Divide(_Binary):
    """Relational division q₁ ÷ q₂."""

    __slots__ = ()
    symbol = "÷"

    def schema(self, env: SchemaEnv) -> Schema:
        left = self.left.schema(env)
        right = self.right.schema(env)
        if not right.as_set() <= left.as_set():
            raise SchemaError("division requires divisor attributes ⊆ dividend attributes")
        return left.drop(right.attributes)

    def _evaluate(self, db: Database, cache: dict[int, Relation]) -> Relation:
        return self.left._cached(db, cache).divide(self.right._cached(db, cache))


class GroupAggregate(RAExpr):
    """Grouped SQL aggregation γ_{keys; specs}(q) — the I-SQL extension.

    Not part of pure relational algebra (Section 4 defines the algebra
    as the aggregation-free fragment); the Figure 6 translation uses it
    the way it already uses ``=⊳⊲`` and the column copy: as a documented
    operator extension, so the RA-DAG route can carry I-SQL aggregation
    on the inlined representation. *keys* are the grouping attributes
    (world ids + the user's GROUP BY columns on the inline route);
    *specs* the aggregate columns. The optional *pad* expression
    supplies key tuples that must appear in the output even when the
    child has no matching rows — each padded with the empty-group
    default values (a world whose answer is empty still answers a
    global aggregate: count 0, sum 0).
    """

    __slots__ = ("keys", "specs", "child", "pad")

    def __init__(
        self,
        keys: Sequence[str],
        specs: Sequence,
        child: RAExpr,
        pad: RAExpr | None = None,
    ) -> None:
        self.keys = tuple(keys)
        self.specs = tuple(specs)
        self.child = child
        self.pad = pad

    def children(self) -> tuple[RAExpr, ...]:
        if self.pad is None:
            return (self.child,)
        return (self.child, self.pad)

    def schema(self, env: SchemaEnv) -> Schema:
        child = self.child.schema(env)
        for key in self.keys:
            child.index(key)
        for spec in self.specs:
            if spec.argument is not None:
                child.index(spec.argument)
        out = Schema(self.keys + tuple(spec.output for spec in self.specs))
        if self.pad is not None:
            pad = self.pad.schema(env)
            if pad.as_set() != set(self.keys):
                raise SchemaError(
                    f"aggregation pad attributes {list(pad)} must equal "
                    f"the grouping keys {list(self.keys)}"
                )
        return out

    def _evaluate(self, db: Database, cache: dict[int, Relation]) -> Relation:
        from repro.relational.aggregates import missing_group_rows

        out = self.child._cached(db, cache).aggregate_by(self.keys, self.specs)
        if self.pad is not None:
            missing = missing_group_rows(
                out, self.keys, self.specs, self.pad._cached(db, cache)
            )
            if missing:
                schema = Schema(self.keys + tuple(s.output for s in self.specs))
                out = out.union(Relation._raw(schema, missing))
        return out

    def to_text(self) -> str:
        aggs = ",".join(spec.render() for spec in self.specs)
        keys = ",".join(self.keys) or "∅"
        padded = " (padded)" if self.pad is not None else ""
        return f"γ[{aggs}; by {keys}]{padded}({self.child.to_text()})"

    def _key(self) -> tuple:
        return (self.keys, self.specs, self.child, self.pad)


class OuterJoinPad(_Binary):
    """The padded left outer join q₁ =⊳⊲ q₂ of Remark 5.5."""

    __slots__ = ()
    symbol = "=⊳⊲"

    def schema(self, env: SchemaEnv) -> Schema:
        left = self.left.schema(env)
        right = self.right.schema(env)
        shared = left.as_set() & right.as_set()
        return Schema(left.attributes + tuple(a for a in right if a not in shared))

    def _evaluate(self, db: Database, cache: dict[int, Relation]) -> Relation:
        return self.left._cached(db, cache).left_outer_join_padded(
            self.right._cached(db, cache)
        )


def evaluate(expression: RAExpr, db: Database) -> Relation:
    """Evaluate *expression* against *db* (module-level convenience)."""
    if not isinstance(expression, RAExpr):
        raise EvaluationError(f"not a relational algebra expression: {expression!r}")
    return expression.evaluate(db)
