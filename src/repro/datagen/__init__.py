"""Seeded workload and random-instance generators."""

from repro.datagen.random_worlds import (
    DEFAULT_SCHEMAS,
    RandomQueryBuilder,
    random_query,
    random_relation,
    random_world_set,
)
from repro.datagen.workloads import (
    Scenario,
    census,
    census_blocks,
    company,
    flights,
    hotels,
    lineitem,
    nightly_scenarios,
    paper_company,
    paper_flights,
    random_graph,
    scenarios,
    xl_scenarios,
)

__all__ = [
    "DEFAULT_SCHEMAS",
    "RandomQueryBuilder",
    "Scenario",
    "census",
    "census_blocks",
    "company",
    "flights",
    "hotels",
    "lineitem",
    "nightly_scenarios",
    "paper_company",
    "paper_flights",
    "random_graph",
    "random_query",
    "random_relation",
    "random_world_set",
    "scenarios",
    "xl_scenarios",
]
