"""Seeded workload generators for the paper's application scenarios.

Each generator is deterministic in its seed and scales with explicit
size parameters, so benchmarks can sweep them. The schemas are the ones
Section 2 of the paper uses:

* ``Flights(Dep, Arr)`` / ``Flights(Fid, Dep, Arr, Dtime, Atime)`` —
  trip planning;
* ``Company_Emp(CID, EID)`` and ``Emp_Skills(EID, Skill)`` — business
  decision support;
* ``Census(SSN, Name, POB, POW)`` — dirty data for repair-by-key;
* ``Lineitem(Product, Quantity, Price, Year)`` — the simplified TPC-H
  relation of the Q17-like what-if query;
* ``Hotels(Name, City, Price)`` — the Example 6.1 extension;
* ``Cand(VID, Color)`` / ``E(U, V)`` — the Proposition 4.2
  3-colorability reduction, promoted to a replayable workload;
* ``Alt(Pick, A)`` — the Remark 4.6 ULDB/TriQL genericity example: two
  different packagings of one world-set.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

from repro.core.np_hard import coloring_candidates, edge_relation
from repro.relational.relation import Relation

#: The five-row Flights relation of Figure 2 (a).
PAPER_FLIGHTS_ROWS = (
    ("FRA", "BCN"),
    ("FRA", "ATL"),
    ("PAR", "ATL"),
    ("PAR", "BCN"),
    ("PHL", "ATL"),
)


def paper_flights() -> Relation:
    """The exact Flights relation of Figure 2 (a)."""
    return Relation(("Dep", "Arr"), PAPER_FLIGHTS_ROWS)


def paper_company() -> tuple[Relation, Relation]:
    """The exact Company_Emp / Emp_Skills relations of Section 2."""
    company_emp = Relation(
        ("CID", "EID"),
        [("ACME", "e1"), ("ACME", "e2"), ("HAL", "e3"), ("HAL", "e4"), ("HAL", "e5")],
    )
    emp_skills = Relation(
        ("EID", "Skill"),
        [
            ("e1", "Web"),
            ("e2", "Web"),
            ("e3", "Java"),
            ("e3", "Web"),
            ("e4", "SQL"),
            ("e5", "Java"),
        ],
    )
    return company_emp, emp_skills


def flights(
    n_departures: int,
    n_arrivals: int,
    flights_per_departure: int,
    seed: int = 0,
) -> Relation:
    """A random ``Flights(Dep, Arr)`` with a guaranteed common arrival.

    Every departure gets a flight to arrival ``A0`` so that the trip
    planning query ("certain arrivals") has a non-trivial answer, plus
    *flights_per_departure − 1* random destinations.
    """
    rng = random.Random(seed)
    departures = [f"D{i}" for i in range(n_departures)]
    arrivals = [f"A{i}" for i in range(n_arrivals)]
    rows: set[tuple] = set()
    for dep in departures:
        rows.add((dep, "A0"))
        for _ in range(max(flights_per_departure - 1, 0)):
            rows.add((dep, rng.choice(arrivals)))
    return Relation(("Dep", "Arr"), rows)


def hotels(n_cities: int, hotels_per_city: int, seed: int = 0) -> Relation:
    """A random ``Hotels(Name, City, Price)`` over arrival cities A0…"""
    rng = random.Random(seed + 1)
    rows = []
    for city_index in range(n_cities):
        for hotel_index in range(hotels_per_city):
            rows.append(
                (
                    f"H{city_index}.{hotel_index}",
                    f"A{city_index}",
                    50 + rng.randrange(20) * 10,
                )
            )
    return Relation(("Name", "City", "Price"), rows)


def company(
    n_companies: int,
    employees_per_company: int,
    n_skills: int,
    skills_per_employee: int,
    seed: int = 0,
) -> tuple[Relation, Relation]:
    """Random ``Company_Emp`` / ``Emp_Skills`` for the acquisition query."""
    rng = random.Random(seed + 2)
    skills = [f"S{i}" for i in range(n_skills)]
    company_rows = []
    skill_rows: set[tuple] = set()
    employee = 0
    for company_index in range(n_companies):
        for _ in range(employees_per_company):
            eid = f"e{employee}"
            employee += 1
            company_rows.append((f"C{company_index}", eid))
            for _ in range(skills_per_employee):
                skill_rows.add((eid, rng.choice(skills)))
    return Relation(("CID", "EID"), company_rows), Relation(("EID", "Skill"), skill_rows)


def census(
    n_people: int,
    duplicate_rate: float = 0.3,
    seed: int = 0,
    duplicates: int | None = None,
) -> Relation:
    """A dirty ``Census(SSN, Name, POB, POW)`` violating SSN → rest.

    A *duplicate_rate* fraction of people get a second, conflicting
    record under the same SSN (a mistyped city), so repair-by-key on
    SSN produces 2^(duplicates) worlds. Passing *duplicates* instead
    pins the number of conflicting records exactly (the first
    *duplicates* people each get one), which benchmarks use to hit a
    target world count deterministically.
    """
    rng = random.Random(seed + 3)
    cities = [f"City{i}" for i in range(max(n_people // 2, 4))]
    rows = []
    for person in range(n_people):
        ssn = 1000 + person
        name = f"Person{person}"
        pob, pow_ = rng.choice(cities), rng.choice(cities)
        rows.append((ssn, name, pob, pow_))
        conflicted = (
            person < duplicates
            if duplicates is not None
            else rng.random() < duplicate_rate
        )
        if conflicted:
            # The conflicting record must differ, or set semantics would
            # collapse it and the key violation would vanish.
            conflicting = rng.choice([c for c in cities if c != pob])
            rows.append((ssn, name, conflicting, pow_))
    return Relation(("SSN", "Name", "POB", "POW"), rows)


def census_blocks(
    n_blocks: int, people_per_block: int = 3, n_cities: int = 12
) -> Relation:
    """A block-partitioned ``Census(Block, SSN, Name, POB, POW)``.

    Deterministic bulk data for the XXL DML-pipeline scenario: SSNs
    enumerate people, cities cycle with different strides so value
    predicates select stable fractions, and ``choice of Block`` splits
    one world per block — 2¹⁶ blocks at the default three people per
    block yield a ~2·10⁵-row flat table under 2¹⁶ worlds.
    """
    rows = []
    ssn = 0
    for block in range(n_blocks):
        for _ in range(people_per_block):
            rows.append(
                (
                    block,
                    ssn,
                    f"P{ssn}",
                    f"City{ssn % n_cities}",
                    f"City{(ssn // 7) % n_cities}",
                )
            )
            ssn += 1
    return Relation(("Block", "SSN", "Name", "POB", "POW"), rows)


def lineitem(
    years: Sequence[int] = (2002, 2003, 2004, 2005),
    n_products: int = 20,
    n_quantities: int = 4,
    rows_per_year: int = 50,
    seed: int = 0,
) -> Relation:
    """The simplified TPC-H ``Lineitem(Product, Quantity, Price, Year)``.

    Quantities model package sizes (e.g. 100 g, 1 kg); prices are drawn
    so that yearly revenues differ enough for the Q17-like threshold
    query to discriminate.
    """
    rng = random.Random(seed + 4)
    quantities = [100 * (index + 1) for index in range(n_quantities)]
    rows: set[tuple] = set()
    for year in years:
        for _ in range(rows_per_year):
            rows.add(
                (
                    f"P{rng.randrange(n_products)}",
                    rng.choice(quantities),
                    (1 + rng.randrange(400)) * 100,
                    year,
                )
            )
    return Relation(("Product", "Quantity", "Price", "Year"), rows)


@dataclass(frozen=True)
class Scenario:
    """One end-to-end I-SQL workload: data, a script, a final query.

    Scenarios are *backend-agnostic* descriptions — plain relations and
    I-SQL text — so the same scenario can be replayed on the explicit
    and the inline backend (``repro.backend.testing.run_scenario``) and
    the answers compared. ``script`` holds the state-building statements
    (assignments, views, DML); ``query`` is the final select whose
    answer the differential harness and the benchmarks compare.

    The registry lives in two generators: :func:`scenarios` (the
    differential/benchmark suite, replayable on every backend at
    ``"small"`` scale) and :func:`xl_scenarios` (inline-only workloads
    beyond the explicit engine's reach, ``explicit_infeasible=True``).
    Benchmarks assert every registered scenario statement records
    ``route=direct`` unless ``uses_fallback`` opts it out.
    """

    name: str
    relations: tuple[tuple[str, Relation], ...]
    query: str
    script: str = ""
    keys: tuple[tuple[str, tuple[str, ...]], ...] = ()
    #: Rough number of worlds the script builds up (documentation aid).
    approx_worlds: int = 1
    #: True when some statement uses residue constructs outside the
    #: evaluatable fragment, i.e. the inline backend exercises its
    #: explicit fallback. Since the fragment widened to aggregation,
    #: condition subqueries and subquery-keyed world grouping, no
    #: benchmark scenario sets this — tests assert that stays true.
    uses_fallback: bool = False
    #: True when the world count puts the scenario beyond the explicit
    #: backend's reach: benchmarks run it inline-only and record the
    #: explicit side as infeasible rather than timing (or zeroing) it.
    explicit_infeasible: bool = False


ACQUISITION_SCRIPT = """
U <- select * from Company_Emp choice of CID;
V <- select R1.CID, R1.EID
     from Company_Emp R1, (select * from U choice of EID) R2
     where R1.CID = R2.CID and R1.EID != R2.EID;
W <- select certain CID, Skill
     from V, Emp_Skills
     where V.EID = Emp_Skills.EID
     group worlds by CID;
"""

ACQUISITION_SCRIPT_SUBQUERY_GROUPING = """
U <- select * from Company_Emp choice of CID;
V <- select R1.CID, R1.EID
     from Company_Emp R1, (select * from U choice of EID) R2
     where R1.CID = R2.CID and R1.EID != R2.EID;
W <- select certain CID, Skill
     from V, Emp_Skills
     where V.EID = Emp_Skills.EID
     group worlds by (select CID from V);
"""

TPCH_SCRIPT = """
create view YearQuantity as
  select A.Year, sum(A.Price) as Revenue
  from (select * from Lineitem choice of Year) as A
  where Quantity not in (select * from Lineitem choice of Quantity)
  group by A.Year;
"""


#: The Proposition 4.2 reduction as an I-SQL script: guess a total
#: color assignment per world (``repair by key VID``), materialize the
#: monochromatic edges, and close over the worlds where none exist.
THREE_COLORING_SCRIPT = """
Guess <- select * from Cand repair by key VID;
Bad <- select U from E, Guess G1, Guess G2
       where E.U = G1.VID and E.V = G2.VID and G1.Color = G2.Color;
"""

#: Remark 4.6: the world-set {{1}, {2}, {}} built two different ways —
#: three alternatives (one filtered out) vs four (two filtered out, in
#: another order). Generic queries cannot tell the packagings apart.
ULDB_GENERICITY_SCRIPT = """
R1 <- select A from (select * from Alt1 choice of Pick) as T1 where A != 0;
R2 <- select A from (select * from Alt2 choice of Pick) as T2 where A != 0;
"""


def three_coloring_instance(
    n_vertices: int = 4, edge_probability: float = 0.7, seed: int = 9
) -> tuple[Relation, Relation]:
    """``(Cand, E)`` for a seeded random graph (symmetric edge closure)."""
    vertices, edges = random_graph(n_vertices, edge_probability, seed)
    return coloring_candidates(vertices), edge_relation(edges)


def scenarios(scale: str = "small") -> tuple[Scenario, ...]:
    """The differential-testing / benchmarking workload suite.

    *scale* ∈ {"small", "large"}: "small" keeps every scenario cheap
    enough for the explicit backend inside the test suite; "large"
    scales the world counts up for benchmarking (≥ 2¹⁰ worlds on the
    trip scenarios).
    """
    large = scale == "large"
    n_flights = 1024 if large else 12
    n_companies = 6 if large else 3
    n_census = 10 if large else 5
    trip_flights = flights(n_flights, 64 if large else 8, 3, seed=1)
    coloring_cand, coloring_edges = (
        three_coloring_instance(6, 0.5, seed=9)
        if large
        else three_coloring_instance(4, 0.7, seed=9)
    )
    company_emp, emp_skills = company(n_companies, 4, 5, 2, seed=2)
    dirty = census(n_census, duplicate_rate=0.8, seed=4)
    # A repair followed by DML on the repaired (factored, wild-column)
    # relation: pinned duplicates keep the world count feasible for the
    # explicit side while the inline side exercises the per-group id
    # factors through update/delete/insert and the key check.
    repair_dml_dirty = census(12 if large else 8, seed=6, duplicates=6 if large else 3)
    # "large" scales the what-if world space to 2⁷ (16 years × 8
    # quantities) so the asymptotic gap shows: the explicit engine pays
    # one aggregation pass per world while the inline backend aggregates
    # all worlds in one flat pass.
    items = lineitem(
        years=tuple(range(2002, 2018)) if large else (2002, 2003, 2004),
        n_products=8,
        n_quantities=8 if large else 3,
        rows_per_year=24 if large else 10,
        seed=2,
    )
    return (
        Scenario(
            name="trip_certain",
            relations=(("HFlights", trip_flights),),
            query="select certain Arr from HFlights choice of Dep;",
            approx_worlds=n_flights,
        ),
        Scenario(
            name="trip_possible_open",
            relations=(("HFlights", trip_flights),),
            query="select Dep, Arr from HFlights choice of Dep;",
            approx_worlds=n_flights,
        ),
        Scenario(
            name="acquisition",
            relations=(("Company_Emp", company_emp), ("Emp_Skills", emp_skills)),
            script=ACQUISITION_SCRIPT,
            query="select possible CID from W where Skill = 'S0';",
            approx_worlds=n_companies * 4,
        ),
        Scenario(
            name="acquisition_subquery_grouping",
            relations=(("Company_Emp", company_emp), ("Emp_Skills", emp_skills)),
            script=ACQUISITION_SCRIPT_SUBQUERY_GROUPING,
            query="select possible CID from W where Skill = 'S0';",
            approx_worlds=n_companies * 4,
        ),
        Scenario(
            name="census_repair",
            relations=(("Census", dirty),),
            script="Clean <- select * from Census repair by key SSN;",
            query="select certain SSN, Name from Clean;",
            approx_worlds=2**n_census,
        ),
        Scenario(
            name="census_repair_dml",
            relations=(("Census", repair_dml_dirty),),
            keys=(("Clean", ("SSN",)),),
            script=(
                "Clean <- select * from Census repair by key SSN;"
                "update Clean set POW = 'City0' where POW = 'City1';"
                "delete from Clean where POB = 'City2';"
                "insert into Clean values (-1, 'AUDIT', 'City0', 'City0');"
            ),
            query="select certain SSN, POW from Clean;",
            approx_worlds=2**6 if large else 2**3,
        ),
        Scenario(
            name="tpch_what_if",
            relations=(("Lineitem", items),),
            script=TPCH_SCRIPT,
            query=(
                "select possible Year from YearQuantity as Y "
                "where (select sum(Price) from Lineitem "
                "       where Lineitem.Year = Y.Year) - Y.Revenue > 1000;"
            ),
            approx_worlds=2**7 if large else 9,
        ),
        Scenario(
            name="dml_subquery_cleanup",
            relations=(
                (
                    "Bookings",
                    Relation(
                        ("Ref", "City", "Price"),
                        [
                            (1, "BCN", 80),
                            (2, "BCN", 15),
                            (3, "ATL", 55),
                            (4, "ATL", 95),
                            (5, "FRA", 40),
                        ],
                    ),
                ),
                (
                    "Fees",
                    Relation(
                        ("Town", "Fee"), [("BCN", 25), ("ATL", 35), ("FRA", 10)]
                    ),
                ),
            ),
            keys=(("B", ("Ref",)),),
            # DML over the *split* relation B with subqueries in the
            # condition, the set expression, and under OR — the ISSUE 4
            # residue, evaluated per world id on the flat table.
            script=(
                "B <- select * from Bookings choice of City;"
                "update B set Price = (select min(Fee) from Fees "
                "    where Town = City) + 100 "
                "  where City in (select Town from Fees) and Price < 50;"
                "delete from B where exists (select * from Fees "
                "    where Town = City and Fee > 30) or Price > 90;"
            ),
            query="select possible Ref, City, Price from B;",
            approx_worlds=3,
        ),
        Scenario(
            # NP-hard-shaped: 3^|V| guess worlds, a triangle-join check,
            # and a closing query whose non-emptiness decides
            # 3-colorability (possible vertices of violation-free worlds).
            name="three_coloring",
            relations=(("Cand", coloring_cand), ("E", coloring_edges)),
            script=THREE_COLORING_SCRIPT,
            query=(
                "select possible VID from Guess "
                "where not exists (select * from Bad);"
            ),
            approx_worlds=3**6 if large else 3**4,
        ),
        Scenario(
            name="uldb_genericity",
            relations=(
                ("Alt1", Relation(("Pick", "A"), [(1, 1), (2, 2), (3, 0)])),
                ("Alt2", Relation(("Pick", "A"), [(1, 2), (2, 0), (3, 1), (4, 0)])),
            ),
            script=ULDB_GENERICITY_SCRIPT,
            query="select possible A from R1 where A in (select A from R2);",
            approx_worlds=9,
        ),
        Scenario(
            name="dml_key_discard",
            relations=(
                ("Bookings", Relation(("Ref", "City"), [(1, "BCN"), (2, "ATL")])),
            ),
            keys=(("Bookings", ("Ref",)),),
            script=(
                "B <- select * from Bookings choice of City;"
                "insert into Bookings values (1, 'FRA');"
                "insert into Bookings values (3, 'FRA');"
                "update Bookings set City = 'PAR' where Ref = 3;"
                "delete from Bookings where City = 'ATL';"
            ),
            query="select possible Ref, City from Bookings;",
            approx_worlds=2,
        ),
    )


def xl_scenarios() -> tuple[Scenario, ...]:
    """Benchmark scenarios beyond the explicit backend's reach.

    These push the inline representation to the scales the paper's §8
    experiments argue for: world counts (2¹⁶) where one-pass-per-world
    evaluation cannot run at all, and representation sizes (≥10⁵ rows)
    where tuple-at-a-time constant factors dominate. They are
    *inline-only*: the benchmark records the explicit side as
    infeasible, and the kernel differential suite replays them columnar
    vs tuple instead of inline vs explicit.
    """
    trip = flights(2**16, 64, 3, seed=1)  # ~196k rows, 2¹⁶ choices of Dep
    # 13 key violations → 2¹³ repairs of a 24-person table: the repaired
    # relation inlines to 2¹³ × 24 ≈ 197k rows.
    dirty = census(24, seed=4, duplicates=13)
    # 2¹¹ companies × 8 employees: choice of CID × choice of EID builds
    # 2¹⁴ worlds, and the correlated self-join V holds ≈114k rows.
    company_emp, emp_skills = company(2048, 8, 12, 2, seed=2)
    # 2⁹ years × 2⁴ quantities: the Q17-like what-if view splits 2¹³
    # worlds; the aggregation-heavy statement set (choice-of inside a
    # from-subquery, NOT IN over a world-splitting subquery, GROUP BY
    # with sum, a correlated scalar aggregate subquery) runs entirely on
    # the inlined representation — one world per pass is out of reach.
    items_xl = lineitem(
        years=tuple(range(1500, 1500 + 2**9)),
        n_products=32,
        n_quantities=2**4,
        rows_per_year=8,
        seed=2,
    )
    # A DML-heavy what-if at 2¹³ worlds: repair a dirty census, then
    # region-normalize and scrub it with subquery-bearing update/delete
    # statements that run per world id on the flat tables — exactly the
    # statements that decoded 2¹³ explicit worlds before ISSUE 4.
    dml_dirty = census(24, seed=7, duplicates=13)
    dml_cities = max(24 // 2, 4)
    regions = Relation(
        ("City", "Region"),
        [(f"City{i}", f"Reg{i % 4}") for i in range(dml_cities)],
    )
    blocked = Relation(("Town",), [("City1",), ("City3",), ("City5",)])
    return (
        Scenario(
            # The DML batch pipeline's headline: one world per census
            # block (2¹⁶ worlds over a ~2·10⁵-row flat table), then a
            # five-statement subquery-free cleanup script against the
            # split relation — ``run_script`` coalesces the whole run
            # into a single backend pass (updates, deletes and an
            # insert that lands one sentinel row in every world), so
            # the scenario measures per-statement pipeline throughput,
            # not per-statement recommit cost. The closing ``certain``
            # finds exactly the world-uniform sentinel.
            name="census_cleanup_dml_xxl",
            relations=(("Census", census_blocks(2**16)),),
            script=(
                "Clean <- select * from Census choice of Block;"
                "update Clean set POW = 'City0' where POW = 'City1';"
                "update Clean set Name = 'REDACTED' where SSN >= 150000;"
                "delete from Clean where POB = 'City2' or POB = 'City3';"
                "delete from Clean where SSN < 9000;"
                "insert into Clean values (-1, -1, 'AUDIT', 'City0', 'City0');"
            ),
            query="select certain SSN, Name from Clean;",
            approx_worlds=2**16,
            explicit_infeasible=True,
        ),
        Scenario(
            name="census_cleanup_dml_xl",
            relations=(
                ("Census", dml_dirty),
                ("Regions", regions),
                ("Blocked", blocked),
            ),
            script=(
                "Clean <- select * from Census repair by key SSN;"
                "update Clean set POW = (select min(Region) from Regions "
                "    where City = POW) "
                "  where POW in (select City from Regions);"
                "delete from Clean where exists (select * from Blocked "
                "    where Town = POB) or SSN > 1020;"
            ),
            query="select certain SSN, POW from Clean;",
            approx_worlds=2**13,
            explicit_infeasible=True,
        ),
        Scenario(
            name="trip_certain_2p16",
            relations=(("HFlights", trip),),
            query="select certain Arr from HFlights choice of Dep;",
            approx_worlds=2**16,
            explicit_infeasible=True,
        ),
        Scenario(
            name="census_repair_xl",
            relations=(("Census", dirty),),
            script="Clean <- select * from Census repair by key SSN;",
            query="select certain SSN, Name from Clean;",
            approx_worlds=2**13,
            explicit_infeasible=True,
        ),
        Scenario(
            name="acquisition_xl",
            relations=(("Company_Emp", company_emp), ("Emp_Skills", emp_skills)),
            script=ACQUISITION_SCRIPT,
            query="select possible CID from W where Skill = 'S0';",
            approx_worlds=2048 * 8,
            explicit_infeasible=True,
        ),
        Scenario(
            name="tpch_what_if_xl",
            relations=(("Lineitem", items_xl),),
            script=TPCH_SCRIPT,
            query=(
                "select possible Year from YearQuantity as Y "
                "where (select sum(Price) from Lineitem "
                "       where Lineitem.Year = Y.Year) - Y.Revenue > 1000;"
            ),
            approx_worlds=2**13,
            explicit_infeasible=True,
        ),
    )


def nightly_scenarios(
    names: Sequence[str] | None = None,
) -> tuple[Scenario, ...]:
    """Scale scenarios for the nightly benchmark job only.

    These sit beyond the PR-time benchmark budget: ``trip_certain_2p20``
    splits 2²⁰ worlds over a ~3·10⁶-row flat table — array-kernel
    territory, where per-row Python passes (the tuple and columnar
    kernels) stop being worth measuring at all. ``census_repair_2p20``
    reaches the same 2²⁰-world count the opposite way: 20 key-violating
    census blocks repaired into 20 independent per-group id factors, so
    the factored representation stays *sum*-sized (~10³ rows over a
    ~4·10³-row table) where the joint product encoding would need 2²⁰
    world-table rows. Both are kept out of :func:`xl_scenarios` so the
    PR-time XL budget asserts (and the 3-way kernel replays) do not pay
    the generation cost.

    *names*, when given, restricts which scenarios are *built* — the
    instances are expensive to generate, and the nightly benchmark
    selects one scenario per test.
    """
    wanted = None if names is None else set(names)

    def want(name: str) -> bool:
        return wanted is None or name in wanted

    out = []
    if want("trip_certain_2p20"):
        out.append(
            Scenario(
                name="trip_certain_2p20",
                relations=(("HFlights", flights(2**20, 64, 3, seed=1)),),
                query="select certain Arr from HFlights choice of Dep;",
                approx_worlds=2**20,
                explicit_infeasible=True,
            )
        )
    if want("census_repair_2p20"):
        out.append(
            Scenario(
                name="census_repair_2p20",
                relations=(("Census", census(4096, seed=5, duplicates=20)),),
                script="Clean <- select * from Census repair by key SSN;",
                query="select certain SSN, Name from Clean;",
                approx_worlds=2**20,
                explicit_infeasible=True,
            )
        )
    return tuple(out)


def random_graph(
    n_vertices: int, edge_probability: float, seed: int = 0
) -> tuple[list[str], list[tuple[str, str]]]:
    """A seeded Erdős–Rényi graph for the 3-colorability reduction."""
    rng = random.Random(seed + 5)
    vertices = [f"v{i}" for i in range(n_vertices)]
    edges = [
        (vertices[i], vertices[j])
        for i in range(n_vertices)
        for j in range(i + 1, n_vertices)
        if rng.random() < edge_probability
    ]
    return vertices, edges
