"""Random world-sets and random world-set algebra queries.

These generators drive the property-based test suites: the Figure 6 and
§5.3 translators are validated against the Figure 3 reference semantics
on randomized inputs, and every Figure 7 equivalence is checked on
randomized world-sets.

Determinism: everything is parameterized by an integer seed.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.core import ast as wsa
from repro.relational.predicates import Const, Predicate, eq, neq
from repro.relational.relation import Relation
from repro.worlds.world import World
from repro.worlds.worldset import WorldSet

#: Attribute pools per relation used by the random generators.
DEFAULT_SCHEMAS: dict[str, tuple[str, ...]] = {
    "R": ("A", "B"),
    "S": ("C", "D"),
}


def random_relation(
    attrs: Sequence[str],
    rng: random.Random,
    max_rows: int = 6,
    domain: Sequence[object] = (0, 1, 2, 3),
) -> Relation:
    """A random relation over *attrs* with up to *max_rows* rows."""
    n_rows = rng.randrange(max_rows + 1)
    rows = {
        tuple(rng.choice(domain) for _ in attrs) for _ in range(n_rows)
    }
    return Relation(tuple(attrs), rows)


def random_world_set(
    seed: int,
    schemas: dict[str, tuple[str, ...]] | None = None,
    max_worlds: int = 4,
    max_rows: int = 5,
    domain: Sequence[object] = (0, 1, 2, 3),
) -> WorldSet:
    """A random non-empty world-set over *schemas*."""
    rng = random.Random(seed)
    schemas = schemas or DEFAULT_SCHEMAS
    n_worlds = 1 + rng.randrange(max_worlds)
    worlds = []
    for _ in range(n_worlds):
        worlds.append(
            World.of(
                {
                    name: random_relation(attrs, rng, max_rows, domain)
                    for name, attrs in schemas.items()
                }
            )
        )
    return WorldSet(worlds)


class RandomQueryBuilder:
    """Builds random, well-typed world-set algebra queries.

    The generator tracks output attributes so every produced query is
    schema-correct; *allow* restricts the operator repertoire (e.g. the
    translator tests exclude repair-by-key).
    """

    def __init__(
        self,
        schemas: dict[str, tuple[str, ...]],
        rng: random.Random,
        domain: Sequence[object] = (0, 1, 2, 3),
        allow_repair: bool = False,
        allow_constants: bool = True,
    ) -> None:
        self.schemas = schemas
        self.rng = rng
        self.domain = domain
        self.allow_repair = allow_repair
        # Constant-free queries are what Definition 4.4's genericity is
        # stated over (the paper defers C-genericity to [1]).
        self.allow_constants = allow_constants
        self._rename_counter = 0

    def _random_predicate(self, attrs: Sequence[str]) -> Predicate:
        rng = self.rng
        attr = rng.choice(list(attrs))
        attr_only = not self.allow_constants
        if (rng.random() < 0.5 or attr_only) and len(attrs) > 1:
            other = rng.choice([a for a in attrs if a != attr])
            return eq(attr, other) if rng.random() < 0.5 else neq(attr, other)
        if attr_only:
            return eq(attr, attr) if rng.random() < 0.5 else neq(attr, attr)
        constant = Const(rng.choice(self.domain))
        return eq(attr, constant) if rng.random() < 0.5 else neq(attr, constant)

    def _subset(self, attrs: Sequence[str], allow_empty: bool = False) -> tuple[str, ...]:
        rng = self.rng
        lower = 0 if allow_empty else 1
        size = rng.randrange(lower, len(attrs) + 1)
        return tuple(rng.sample(list(attrs), size))

    def build(self, depth: int) -> tuple[wsa.WSAQuery, tuple[str, ...]]:
        """A random query of at most *depth* operators plus its attrs."""
        rng = self.rng
        if depth <= 0:
            name = rng.choice(list(self.schemas))
            return wsa.rel(name), self.schemas[name]
        choices = [
            "select",
            "project",
            "rename",
            "choice",
            "poss",
            "cert",
            "pgroup",
            "cgroup",
            "union",
            "difference",
            "intersect",
            "product",
        ]
        if self.allow_repair:
            choices.append("repair")
        kind = rng.choice(choices)
        if kind in ("union", "difference", "intersect"):
            left, attrs = self.build(depth - 1)
            right = self._same_schema_query(left, attrs)
            node = {
                "union": wsa.union,
                "difference": wsa.difference,
                "intersect": wsa.intersect,
            }[kind](left, right)
            return node, attrs
        if kind == "product":
            left, left_attrs = self.build(depth - 1)
            right, right_attrs = self.build(depth - 1)
            overlap = set(left_attrs) & set(right_attrs)
            if overlap:
                self._rename_counter += 1
                mapping = {a: f"{a}_{self._rename_counter}" for a in overlap}
                right = wsa.rename(mapping, right)
                right_attrs = tuple(mapping.get(a, a) for a in right_attrs)
            return wsa.product(left, right), left_attrs + right_attrs
        child, attrs = self.build(depth - 1)
        if kind == "select":
            return wsa.select(self._random_predicate(attrs), child), attrs
        if kind == "project":
            keep = self._subset(attrs)
            return wsa.project(keep, child), keep
        if kind == "rename":
            self._rename_counter += 1
            target = self.rng.choice(list(attrs))
            mapping = {target: f"{target}_{self._rename_counter}"}
            return wsa.rename(mapping, child), tuple(
                mapping.get(a, a) for a in attrs
            )
        if kind == "choice":
            return wsa.choice_of(self._subset(attrs), child), attrs
        if kind == "poss":
            return wsa.poss(child), attrs
        if kind == "cert":
            return wsa.cert(child), attrs
        if kind == "repair":
            return wsa.repair_by_key(self._subset(attrs), child), attrs
        group = self._subset(attrs, allow_empty=True)
        projection = self._subset(attrs)
        constructor = wsa.poss_group if kind == "pgroup" else wsa.cert_group
        return constructor(group, projection, child), projection

    def _same_schema_query(
        self, template: wsa.WSAQuery, attrs: tuple[str, ...]
    ) -> wsa.WSAQuery:
        """A random schema-compatible second operand for a set operation.

        Derives the operand from *template* by stacking random
        schema-preserving operators, which guarantees the attribute sets
        match — base relations with matching schemas are also eligible.
        """
        rng = self.rng
        candidates: list[wsa.WSAQuery] = [template]
        for name, schema in self.schemas.items():
            if set(schema) == set(attrs):
                candidates.append(wsa.rel(name))
            elif set(attrs) <= set(schema):
                candidates.append(wsa.project(attrs, wsa.rel(name)))
        query = rng.choice(candidates)
        for _ in range(rng.randrange(3)):
            wrap = rng.random()
            if wrap < 0.4:
                query = wsa.select(self._random_predicate(attrs), query)
            elif wrap < 0.6:
                query = wsa.choice_of(self._subset(attrs), query)
            elif wrap < 0.8:
                query = wsa.poss(query)
            else:
                query = wsa.cert(query)
        return query


def random_query(
    seed: int,
    schemas: dict[str, tuple[str, ...]] | None = None,
    depth: int = 3,
    allow_repair: bool = False,
    allow_constants: bool = True,
) -> wsa.WSAQuery:
    """A random well-typed query over *schemas* (module-level wrapper)."""
    schemas = schemas or DEFAULT_SCHEMAS
    builder = RandomQueryBuilder(
        schemas,
        random.Random(seed),
        allow_repair=allow_repair,
        allow_constants=allow_constants,
    )
    query, _ = builder.build(depth)
    return query


def query_constants(query: wsa.WSAQuery) -> frozenset[object]:
    """All constant values appearing in a query's selection predicates."""
    from repro.relational.predicates import (
        And,
        Comparison,
        Not,
        Or,
        Predicate,
    )

    found: set[object] = set()

    def visit_predicate(predicate: Predicate) -> None:
        if isinstance(predicate, Comparison):
            for term in (predicate.left, predicate.right):
                if isinstance(term, Const):
                    found.add(term.value)
        elif isinstance(predicate, (And, Or)):
            visit_predicate(predicate.left)
            visit_predicate(predicate.right)
        elif isinstance(predicate, Not):
            visit_predicate(predicate.operand)

    for node in query.walk():
        predicate = getattr(node, "predicate", None)
        if predicate is not None:
            visit_predicate(predicate)
    return frozenset(found)
