"""The rewrite engine for world-set algebra logical optimization (Section 6).

The rewriter applies the Figure 7 equivalences (oriented as in
:mod:`repro.optimizer.equivalences`) bottom-up to fixpoint and records a
derivation trace, so the Example 6.1 / 6.2 rewritings can be replayed
step by step and rendered as the Figure 8 / Figure 9 plan pairs.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.errors import RewriteError
from repro.core.ast import WSAQuery
from repro.optimizer.equivalences import (
    DEFAULT_RULES,
    FINALIZE_RULES,
    RewriteRule,
    SchemaEnv,
    default_rules,
)
from repro.relational.schema import Schema


class RewriteStep:
    """One applied rule: which equation fired and the whole-query effect."""

    __slots__ = ("rule", "before", "after")

    def __init__(self, rule: RewriteRule, before: WSAQuery, after: WSAQuery) -> None:
        self.rule = rule
        self.before = before
        self.after = after

    def __repr__(self) -> str:
        return f"[{self.rule.equation}] {self.before.to_text()} → {self.after.to_text()}"


class Rewriter:
    """Applies rewrite rules to fixpoint with a bounded step count."""

    def __init__(
        self,
        rules: Sequence[RewriteRule] | None = None,
        max_steps: int = 500,
        input_kind: str = "1",
    ) -> None:
        self.rules = tuple(rules) if rules is not None else default_rules(input_kind)
        self.max_steps = max_steps
        self.input_kind = input_kind

    def _rewrite_once(
        self, query: WSAQuery, env: SchemaEnv
    ) -> tuple[WSAQuery, RewriteRule] | None:
        """Apply the first matching rule at the shallowest matching node."""
        for rule in self.rules:
            replacement = rule.apply(query, env)
            if replacement is not None:
                return replacement, rule
        children = query.children()
        for index, child in enumerate(children):
            result = self._rewrite_once(child, env)
            if result is not None:
                rewritten_child, rule = result
                new_children = tuple(
                    rewritten_child if i == index else c
                    for i, c in enumerate(children)
                )
                return query._with_children(new_children), rule
        return None

    def optimize(
        self,
        query: WSAQuery,
        schemas: Mapping[str, Schema | Sequence[str]],
        finalize: bool = True,
    ) -> tuple[WSAQuery, list[RewriteStep]]:
        """Rewrite *query* to fixpoint; return the result and the trace.

        Two phases, both to fixpoint: the main phase pushes the world
        operators down and reduces them; the finalize phase (disable
        with ``finalize=False``) folds selections back into poss/cert
        and forms joins, matching the tail of the paper's Example 6.2
        derivation.
        """
        env = {
            name: schema if isinstance(schema, Schema) else Schema(schema)
            for name, schema in schemas.items()
        }
        query.attributes(env)  # validate before rewriting
        trace: list[RewriteStep] = []
        current = self._to_fixpoint(query, env, self.rules, trace)
        if finalize:
            current = self._to_fixpoint(current, env, FINALIZE_RULES, trace)
        return current, trace

    def _to_fixpoint(
        self,
        query: WSAQuery,
        env: SchemaEnv,
        rules: Sequence[RewriteRule],
        trace: list[RewriteStep],
    ) -> WSAQuery:
        current = query
        original_rules = self.rules
        self.rules = tuple(rules)
        try:
            for _ in range(self.max_steps):
                step = self._rewrite_once(current, env)
                if step is None:
                    return current
                rewritten, rule = step
                rewritten.attributes(env)  # every step must stay well-formed
                trace.append(RewriteStep(rule, current, rewritten))
                current = rewritten
        finally:
            self.rules = original_rules
        raise RewriteError(
            f"rewriting did not converge within {self.max_steps} steps; "
            f"last query: {current.to_text()}"
        )


def optimize(
    query: WSAQuery,
    schemas: Mapping[str, Schema | Sequence[str]],
    rules: Sequence[RewriteRule] | None = None,
    input_kind: str = "1",
) -> tuple[WSAQuery, list[RewriteStep]]:
    """Module-level convenience wrapper around :class:`Rewriter`.

    *input_kind* declares the evaluation setting: ``"1"`` for queries on
    a complete database (the paper's setting), ``"m"`` for arbitrary
    world-set inputs (stricter Eq. (20)/(21) guards).
    """
    return Rewriter(rules, input_kind=input_kind).optimize(query, schemas)
