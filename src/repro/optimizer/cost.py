"""A heuristic cost model for world-set algebra plans.

The paper argues qualitatively that the rewritten plans of Examples
6.1/6.2 are cheaper (fewer world-multiplying operators, smaller
intermediate world-sets). This module quantifies that intuition with a
simple analytical model — it is *not* from the paper; the benchmark
suite additionally measures real evaluation times.

The model tracks, per operator, an estimated (rows per world, number of
worlds) pair and charges rows × worlds work for each operator
evaluation, mirroring how the reference semantics touches every world.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.core.ast import (
    ActiveDomain,
    Aggregate,
    AntiJoin,
    Cert,
    CertGroup,
    CertGroupKey,
    ChoiceOf,
    Difference,
    Divide,
    Intersect,
    NaturalJoin,
    PadJoin,
    Poss,
    PossGroup,
    PossGroupKey,
    Product,
    Project,
    Rel,
    Rename,
    RepairByKey,
    Select,
    SemiJoin,
    ThetaJoin,
    Union,
    WSAQuery,
    _NaturalJoinExpansion,
)

#: Default assumed selectivity of a selection predicate.
SELECTIVITY = 0.5


def _selectivity(predicate) -> float:
    """Predicate-shape-aware selectivity estimate.

    A disjunction keeps the union of its branches' rows — the compiler's
    union-of-semijoins form of ``or`` competes against a single
    disjunctive σ, so the model must not price the σ like a conjunctive
    filter. Conjunctions compound instead.
    """
    from repro.relational.predicates import And, Not, Or

    if isinstance(predicate, Or):
        combined = _selectivity(predicate.left) + _selectivity(predicate.right)
        return min(combined, 1.0)
    if isinstance(predicate, And):
        return _selectivity(predicate.left) * _selectivity(predicate.right)
    if isinstance(predicate, Not):
        return 1.0 - _selectivity(predicate.operand)
    return SELECTIVITY


class CostEstimate:
    """Estimated rows per world, world count, and accumulated work."""

    __slots__ = ("rows", "worlds", "work")

    def __init__(self, rows: float, worlds: float, work: float) -> None:
        self.rows = rows
        self.worlds = worlds
        self.work = work

    def __repr__(self) -> str:
        return (
            f"CostEstimate(rows={self.rows:.1f}, worlds={self.worlds:.1f}, "
            f"work={self.work:.1f})"
        )


def estimate(
    query: WSAQuery, sizes: Mapping[str, int] | None = None, default_size: int = 100
) -> CostEstimate:
    """Estimate the evaluation cost of *query*.

    *sizes* maps base relation names to row counts; unknown relations
    default to *default_size* rows.
    """
    sizes = dict(sizes or {})

    def visit(node: WSAQuery) -> CostEstimate:
        if isinstance(node, Rel):
            rows = float(sizes.get(node.name, default_size))
            return CostEstimate(rows, 1.0, rows)
        if isinstance(node, ActiveDomain):
            rows = float(default_size) ** len(node.attrs)
            return CostEstimate(rows, 1.0, rows)
        children = [visit(child) for child in node.children()]
        if isinstance(node, Select):
            (child,) = children
            rows = child.rows * _selectivity(node.predicate)
            return CostEstimate(rows, child.worlds, child.work + _touch(child))
        if isinstance(node, (Project, Rename)):
            (child,) = children
            return CostEstimate(child.rows, child.worlds, child.work + _touch(child))
        if isinstance(node, ChoiceOf):
            (child,) = children
            worlds = child.worlds * max(child.rows, 1.0)
            rows = max(child.rows / max(child.rows, 1.0), 1.0)
            return CostEstimate(rows, worlds, child.work + _touch(child))
        if isinstance(node, RepairByKey):
            (child,) = children
            worlds = child.worlds * (2.0 ** max(child.rows / 2.0, 1.0))
            return CostEstimate(child.rows / 2.0, worlds, child.work + _touch(child))
        if isinstance(node, (Poss, Cert)):
            (child,) = children
            return CostEstimate(child.rows, child.worlds, child.work + _touch(child))
        if isinstance(node, Aggregate):
            (child,) = children
            # One hashing pass; output one row per group (half the rows
            # as a crude default, one row for a global aggregate).
            rows = child.rows / 2.0 if node.group_attrs else 1.0
            return CostEstimate(rows, child.worlds, child.work + _touch(child))
        if isinstance(node, (SemiJoin, AntiJoin)):
            left, right = children
            worlds = max(left.worlds, right.worlds)
            rows = left.rows * SELECTIVITY
            work = left.work + right.work + (left.rows + right.rows) * worlds
            return CostEstimate(rows, worlds, work)
        if isinstance(node, (PossGroupKey, CertGroupKey)):
            left, right = children
            worlds = max(left.worlds, right.worlds)
            # Grouping compares every pair of worlds (key answers).
            work = left.work + right.work + worlds * worlds + _touch(left)
            return CostEstimate(left.rows, worlds, work)
        if isinstance(node, (PossGroup, CertGroup)):
            (child,) = children
            # Grouping compares every pair of worlds.
            work = child.work + child.worlds * child.worlds + _touch(child)
            return CostEstimate(child.rows, child.worlds, work)
        if isinstance(node, PadJoin):
            left, right = children
            worlds = max(left.worlds, right.worlds)
            work = left.work + right.work + (left.rows + right.rows) * worlds
            return CostEstimate(left.rows, worlds, work)
        if isinstance(node, (Product, ThetaJoin, NaturalJoin, _NaturalJoinExpansion)):
            left, right = children
            worlds = max(left.worlds, right.worlds)
            rows = left.rows * right.rows
            if isinstance(node, (ThetaJoin,)):
                rows *= SELECTIVITY
            work = left.work + right.work + rows * worlds
            return CostEstimate(rows, worlds, work)
        if isinstance(node, (Union, Intersect, Difference, Divide)):
            left, right = children
            worlds = max(left.worlds, right.worlds)
            rows = left.rows + right.rows if isinstance(node, Union) else left.rows
            work = left.work + right.work + rows * worlds
            return CostEstimate(rows, worlds, work)
        raise TypeError(f"no cost model for {type(node).__name__}")

    def _touch(child: CostEstimate) -> float:
        return child.rows * child.worlds

    return visit(query)


def compare(
    before: WSAQuery,
    after: WSAQuery,
    sizes: Mapping[str, int] | None = None,
) -> float:
    """Cost ratio before/after (> 1 means the rewrite is predicted to win)."""
    first = estimate(before, sizes)
    second = estimate(after, sizes)
    return first.work / max(second.work, 1e-9)
