"""The world-set algebra equivalences of Figure 7 (plus Eq. 24–26).

Every numbered equivalence is materialized as a :class:`RewriteRule`
whose direction is the *optimizing* one used in Examples 6.1/6.2:
poss/cert/σ/π are pushed towards the leaves, choice-of is pushed below
products, and the Reduce group eliminates redundant world operators.
Each rule checks its attribute side conditions against a schema
environment.

The rules are exercised two ways: the rewriter (Section 6) composes
them into derivations, and the property-based test-suite validates
every equation on randomized world-sets against the Figure 3 reference
semantics — including both directions, since equivalences are symmetric
even when the optimizer only applies one direction.

Proposition 6.3's inter-expressibility of poss and cert (Eq. 25/26)
is provided as the query constructors :func:`cert_via_poss` and
:func:`poss_via_cert`, since they introduce the active-domain relation
rather than rewrite existing operators.
"""

from __future__ import annotations

from typing import Callable, Mapping, Sequence

from repro.core.ast import (
    Aggregate,
    Cert,
    CertGroup,
    ChoiceOf,
    Difference,
    Intersect,
    Poss,
    PossGroup,
    Product,
    Project,
    Rename,
    Select,
    ThetaJoin,
    Union,
    WSAQuery,
    active_domain,
    difference,
    poss,
)
from repro.relational.schema import Schema

SchemaEnv = Mapping[str, Schema]
Matcher = Callable[[WSAQuery, SchemaEnv], WSAQuery | None]


class RewriteRule:
    """One oriented equivalence l → r with its side condition."""

    __slots__ = ("name", "equation", "_matcher")

    def __init__(self, name: str, equation: str, matcher: Matcher) -> None:
        self.name = name
        self.equation = equation
        self._matcher = matcher

    def apply(self, query: WSAQuery, env: SchemaEnv) -> WSAQuery | None:
        """The rewritten query if the rule matches at the root, else None."""
        return self._matcher(query, env)

    def __repr__(self) -> str:
        return f"RewriteRule({self.equation}: {self.name})"


def _attrs(query: WSAQuery, env: SchemaEnv) -> frozenset[str]:
    return frozenset(query.attributes(env))


# -- Commute rules (Eq. 1–10) ----------------------------------------------------


def _push_closing_through_unary(query: WSAQuery, env: SchemaEnv) -> WSAQuery | None:
    """Eq. (1)/(2)/(4): poss/cert move below selections and projections."""
    if not isinstance(query, (Poss, Cert)):
        return None
    inner = query.child
    closing = type(query)
    if isinstance(inner, Select):
        if isinstance(query, Cert) or isinstance(query, Poss):
            return Select(inner.predicate, closing(inner.child))
    if isinstance(inner, Project) and isinstance(query, Poss):
        return Project(inner.attrs, closing(inner.child))
    return None


RULE_1_2_4 = RewriteRule(
    "push poss/cert below σ, poss below π", "Eq. (1)(2)(4)", _push_closing_through_unary
)


def _poss_over_union(query: WSAQuery, env: SchemaEnv) -> WSAQuery | None:
    """Eq. (3): poss(q₁ ∪ q₂) → poss(q₁) ∪ poss(q₂)."""
    if isinstance(query, Poss) and isinstance(query.child, Union):
        return Union(Poss(query.child.left), Poss(query.child.right))
    return None


RULE_3 = RewriteRule("poss distributes over ∪", "Eq. (3)", _poss_over_union)


def _cert_over_intersection(query: WSAQuery, env: SchemaEnv) -> WSAQuery | None:
    """Eq. (5): cert(q₁ ∩ q₂) → cert(q₁) ∩ cert(q₂)."""
    if isinstance(query, Cert) and isinstance(query.child, Intersect):
        return Intersect(Cert(query.child.left), Cert(query.child.right))
    return None


RULE_5 = RewriteRule("cert distributes over ∩", "Eq. (5)", _cert_over_intersection)


def _cert_over_product(query: WSAQuery, env: SchemaEnv) -> WSAQuery | None:
    """Eq. (6): cert(q₁ × q₂) → cert(q₁) × cert(q₂)."""
    if isinstance(query, Cert) and isinstance(query.child, Product):
        return Product(Cert(query.child.left), Cert(query.child.right))
    return None


RULE_6 = RewriteRule("cert distributes over ×", "Eq. (6)", _cert_over_product)


def _project_below_choice(query: WSAQuery, env: SchemaEnv) -> WSAQuery | None:
    """Eq. (7): π_{X∪Y}(χ_X(q)) → χ_X(π_{X∪Y}(q))."""
    if isinstance(query, Project) and isinstance(query.child, ChoiceOf):
        choice = query.child
        if set(choice.attrs) <= set(query.attrs):
            return ChoiceOf(choice.attrs, Project(query.attrs, choice.child))
    return None


RULE_7 = RewriteRule("π moves below χ", "Eq. (7)", _project_below_choice)


def _choice_below_product(query: WSAQuery, env: SchemaEnv) -> WSAQuery | None:
    """Eq. (8) right-to-left: χ_X(q₁ × q₂) → χ_X(q₁) × q₂ if X ⊆ Attrs(q₁)."""
    if isinstance(query, ChoiceOf) and isinstance(query.child, Product):
        left, right = query.child.left, query.child.right
        attrs = set(query.attrs)
        if attrs <= _attrs(left, env):
            return Product(ChoiceOf(query.attrs, left), right)
        if attrs <= _attrs(right, env):
            return Product(left, ChoiceOf(query.attrs, right))
    return None


RULE_8 = RewriteRule("χ moves below ×", "Eq. (8)", _choice_below_product)


def _make_rule_9_10(input_kind: str) -> RewriteRule:
    def matcher(query: WSAQuery, env: SchemaEnv) -> WSAQuery | None:
        """Eq. (9)/(10): σ_φ(γ^Y_X(q)) → γ^Y_X(σ_φ(q)) if Attrs(φ) ⊆ X ∩ Y.

        Guarded like Eq. (20)/(21): the push is only sound when the
        grouped subquery is world-uniform (kind 1), i.e. grouping is
        degenerate — one fingerprint, one group. When answers vary
        across worlds, filtering *before* grouping can merge worlds
        whose unfiltered fingerprints differed (σ_{B≠3} collapses
        {0,3} and {0} to the same π_B fingerprint), and the per-group
        union/intersection then ranges over different worlds than on
        the left-hand side.
        """
        if isinstance(query, Select) and isinstance(query.child, (PossGroup, CertGroup)):
            from repro.core.typing import ONE, kind_after

            group = query.child
            allowed = set(group.group_attrs) & set(group.proj_attrs)
            if (
                query.predicate.attributes() <= allowed
                and kind_after(group.child, input_kind) == ONE
            ):
                return type(group)(
                    group.group_attrs,
                    group.proj_attrs,
                    Select(query.predicate, group.child),
                )
        return None

    return RewriteRule("σ moves below pγ/cγ", "Eq. (9)(10)", matcher)


RULE_9_10 = _make_rule_9_10("1")


# -- Reduce rules (Eq. 11–23) --------------------------------------------------------


def _poss_absorbs_choice(query: WSAQuery, env: SchemaEnv) -> WSAQuery | None:
    """Eq. (11): poss(χ_X(q)) → poss(q)."""
    if isinstance(query, Poss) and isinstance(query.child, ChoiceOf):
        return Poss(query.child.child)
    return None


RULE_11 = RewriteRule("poss absorbs χ", "Eq. (11)", _poss_absorbs_choice)


def _group_to_projection(query: WSAQuery, env: SchemaEnv) -> WSAQuery | None:
    """Eq. (12): γ^X_{X∪Y}(q) → π_X(q) when proj attrs ⊆ group attrs."""
    if isinstance(query, (PossGroup, CertGroup)):
        if set(query.proj_attrs) <= set(query.group_attrs):
            return Project(query.proj_attrs, query.child)
    return None


RULE_12 = RewriteRule("grouped-by projection is π", "Eq. (12)", _group_to_projection)


def _project_group_to_project(query: WSAQuery, env: SchemaEnv) -> WSAQuery | None:
    """Eq. (13): π_Z(pγ^{Y∪Z}_{X∪Z}(q)) → π_Z(q) when Z ⊆ group ∩ proj attrs.

    Stated for pγ only: π distributes over the per-group unions, but not
    over cγ's intersections (π_Z(∩ …) can be strictly smaller than the
    common π_Z).
    """
    if isinstance(query, Project) and isinstance(query.child, PossGroup):
        group = query.child
        z = set(query.attrs)
        if z <= set(group.group_attrs) and z <= set(group.proj_attrs):
            return Project(query.attrs, group.child)
    return None


RULE_13 = RewriteRule("π over pγ cancels grouping", "Eq. (13)", _project_group_to_project)


def _project_into_poss_group(query: WSAQuery, env: SchemaEnv) -> WSAQuery | None:
    """Eq. (14): π_Z(pγ^{Y∪Z}_X(q)) → pγ^Z_X(q) when Z ⊈ X.

    (For Z ⊆ X ∩ proj attrs, Eq. (13) applies instead and removes the
    grouping altogether; π distributes over the per-group unions, so the
    rewrite is sound whenever Z ⊆ proj attrs.)
    """
    if isinstance(query, Project) and isinstance(query.child, PossGroup):
        group = query.child
        z = set(query.attrs)
        if z <= set(group.proj_attrs) and not z <= set(group.group_attrs):
            return PossGroup(group.group_attrs, query.attrs, group.child)
    return None


RULE_14 = RewriteRule("π merges into pγ", "Eq. (14)", _project_into_poss_group)


def _poss_absorbs_poss_group(query: WSAQuery, env: SchemaEnv) -> WSAQuery | None:
    """Eq. (15): poss(pγ^Y_X(q)) → poss(π_Y(q))."""
    if isinstance(query, Poss) and isinstance(query.child, PossGroup):
        group = query.child
        return Poss(Project(group.proj_attrs, group.child))
    return None


RULE_15 = RewriteRule("poss absorbs pγ", "Eq. (15)", _poss_absorbs_poss_group)


def _cert_absorbs_cert_group(query: WSAQuery, env: SchemaEnv) -> WSAQuery | None:
    """Eq. (16): cert(cγ^Y_X(q)) → cert(π_Y(q))."""
    if isinstance(query, Cert) and isinstance(query.child, CertGroup):
        group = query.child
        return Cert(Project(group.proj_attrs, group.child))
    return None


RULE_16 = RewriteRule("cert absorbs cγ", "Eq. (16)", _cert_absorbs_cert_group)


def _merge_choices(query: WSAQuery, env: SchemaEnv) -> WSAQuery | None:
    """Eq. (17): χ_X(χ_Y(q)) → χ_{X∪Y}(q)."""
    if isinstance(query, ChoiceOf) and isinstance(query.child, ChoiceOf):
        inner = query.child
        merged = query.attrs + tuple(a for a in inner.attrs if a not in set(query.attrs))
        return ChoiceOf(merged, inner.child)
    return None


RULE_17 = RewriteRule("nested χ merge", "Eq. (17)", _merge_choices)


def _merge_groups(query: WSAQuery, env: SchemaEnv) -> WSAQuery | None:
    """Eq. (18), sound instance: nested group-worlds-by over pγ collapse.

    γ^Y_X(pγ^{X∪Z}_X(q)) → pγ^Y_X(q) when the outer and inner grouping
    attributes coincide and the outer attributes all occur among the
    inner projection attributes. Within one inner group every world has
    the identical (union) answer, so any outer regrouping is a no-op and
    both outer kinds agree.

    The paper's general forms — Eq. (18) with extra inner grouping
    attributes V, and Eq. (19) over an inner cγ — admit counterexamples
    (see DESIGN.md and the regression tests): coarsening the grouping
    merges groups whose answers differ, and π_Y does not distribute over
    cγ's intersections.
    """
    if isinstance(query, (PossGroup, CertGroup)) and isinstance(
        query.child, PossGroup
    ):
        inner = query.child
        x = set(query.group_attrs)
        if (
            x == set(inner.group_attrs)
            and x <= set(inner.proj_attrs)
            and set(query.proj_attrs) <= set(inner.proj_attrs)
        ):
            return PossGroup(inner.group_attrs, query.proj_attrs, inner.child)
    return None


RULE_18_19 = RewriteRule("nested γ merge", "Eq. (18)(19)", _merge_groups)


def _uniform_choice_child(choice: ChoiceOf, input_kind: str) -> bool:
    """Soundness guard for Eq. (20)/(21), see the faithfulness notes.

    The Figure 7 equations assume the paper's setting of queries
    evaluated from a complete database. If the subquery under χ itself
    varies across worlds (e.g. contains another χ), the group-worlds-by
    on the left-hand side can mix worlds descending from *different*
    parent worlds, and the equations fail. We therefore require the χ
    operand's answer to be uniform across worlds: of kind 1 given the
    declared *input_kind* of the whole evaluation ("1" = queries on a
    complete database, the paper's example setting; "m" = arbitrary
    world-set inputs, where the operand must close the worlds itself).
    """
    from repro.core.typing import ONE, kind_after

    return kind_after(choice.child, input_kind) == ONE


def _make_rule_20(input_kind: str) -> RewriteRule:
    def matcher(query: WSAQuery, env: SchemaEnv) -> WSAQuery | None:
        """Eq. (20): pγ^Y_X(χ_{X∪Z}(q)) → π_Y(χ_X(q))."""
        if isinstance(query, PossGroup) and isinstance(query.child, ChoiceOf):
            choice = query.child
            if set(query.group_attrs) <= set(
                choice.attrs
            ) and _uniform_choice_child(choice, input_kind):
                return Project(
                    query.proj_attrs, ChoiceOf(query.group_attrs, choice.child)
                )
        return None

    return RewriteRule("pγ over χ", "Eq. (20)", matcher)


def _make_rule_21(input_kind: str) -> RewriteRule:
    def matcher(query: WSAQuery, env: SchemaEnv) -> WSAQuery | None:
        """Eq. (21): cγ^Y_X(χ_{X∪Y∪Z}(q)) → π_Y(χ_{X∪Y∪Z}(q)), for Y ⊆ X.

        As printed the equation fails whenever Y ⊈ X: two χ-worlds with
        the same X-choice but different Y-choices share a group, and the
        per-group intersection of π_Y is empty while the projection is
        not (see the regression test and DESIGN.md). Restricted to
        projection attributes among the grouping attributes — plus the
        same uniformity guard as Eq. (20) — the equation is sound.
        """
        if isinstance(query, CertGroup) and isinstance(query.child, ChoiceOf):
            choice = query.child
            needed = set(query.group_attrs) | set(query.proj_attrs)
            if (
                needed <= set(choice.attrs)
                and set(query.proj_attrs) <= set(query.group_attrs)
                and _uniform_choice_child(choice, input_kind)
            ):
                return Project(query.proj_attrs, choice)
        return None

    return RewriteRule("cγ over χ", "Eq. (21)", matcher)


RULE_20 = _make_rule_20("1")
RULE_21 = _make_rule_21("1")


def _select_below_aggregate(query: WSAQuery, env: SchemaEnv) -> WSAQuery | None:
    """σ_φ(γ^{aggs}_U(q)) → γ^{aggs}_U(σ_φ(q)) when Attrs(φ) ⊆ U.

    The per-world pushdown of a filter on grouped columns below the
    aggregation — sound in every world separately (a group survives the
    left-hand filter iff its key does), so no world-uniformity guard is
    needed. Filters on aggregate *outputs* (HAVING shapes) never match.
    """
    if isinstance(query, Select) and isinstance(query.child, Aggregate):
        group = query.child
        if query.predicate.attributes() <= set(group.group_attrs):
            return Aggregate(
                group.group_attrs,
                group.specs,
                Select(query.predicate, group.child),
            )
    return None


RULE_AGG_SELECT = RewriteRule(
    "σ moves below γ-aggregate", "aggregation", _select_below_aggregate
)


def _make_rule_agg_closing(input_kind: str) -> RewriteRule:
    def matcher(query: WSAQuery, env: SchemaEnv) -> WSAQuery | None:
        """poss/cert(γ^{aggs}_U(q)) → γ^{aggs}_U(q) for world-uniform q.

        Guarded like Eq. (20)/(21): when the aggregated subquery is of
        kind 1 under the declared *input_kind*, every world carries the
        identical aggregate answer, so both closings are the identity.
        With world-varying answers the closing genuinely folds across
        worlds and must stay.
        """
        if isinstance(query, (Poss, Cert)) and isinstance(query.child, Aggregate):
            from repro.core.typing import ONE, kind_after

            if kind_after(query.child.child, input_kind) == ONE:
                return query.child
        return None

    return RewriteRule("poss/cert absorb uniform γ-aggregate", "aggregation", matcher)


RULE_AGG_CLOSING = _make_rule_agg_closing("1")


def _idempotent_closings(query: WSAQuery, env: SchemaEnv) -> WSAQuery | None:
    """Eq. (22)/(23): compositions of poss/cert collapse to the inner one."""
    if isinstance(query, (Poss, Cert)) and isinstance(query.child, (Poss, Cert)):
        return query.child
    return None


RULE_22_23 = RewriteRule("poss/cert composition", "Eq. (22)(23)", _idempotent_closings)


def _cert_difference(query: WSAQuery, env: SchemaEnv) -> WSAQuery | None:
    """Eq. (24) right-to-left: cert(cert(R) − S) → cert(R − S)."""
    if isinstance(query, Cert) and isinstance(query.child, Difference):
        diff = query.child
        if isinstance(diff.left, Cert):
            return Cert(Difference(diff.left.child, diff.right))
    return None


RULE_24 = RewriteRule("cert over difference", "Eq. (24)", _cert_difference)


# -- Union reductions (the compiler's union-of-semijoins form of OR) ---------------------


def _split_free(query: WSAQuery) -> bool:
    """No choice-of / repair-by-key below: safe to merge duplicate
    references — per world the subtree is deterministic, so two
    occurrences denote the same answer. A splitting subtree mints fresh
    world ids per occurrence (independent choices), and merging would
    collapse the off-diagonal worlds the reference semantics produces.
    """
    from repro.core.ast import contains_world_splitter

    return not contains_world_splitter(query)


def _union_select_merge(query: WSAQuery, env: SchemaEnv) -> WSAQuery | None:
    """σ_φ(q) ∪ σ_ψ(q) → σ_{φ∨ψ}(q), for split-free q.

    Un-does the compiler's union-of-chains when a disjunct turned out to
    be plain after all (e.g. its subquery atom rewrote away): one σ pass
    instead of two child evaluations plus a union.
    """
    if not isinstance(query, Union):
        return None
    left, right = query.left, query.right
    if (
        isinstance(left, Select)
        and isinstance(right, Select)
        and left.child == right.child
        and _split_free(left.child)
    ):
        return Select(left.predicate | right.predicate, left.child)
    return None


RULE_UNION_SELECT = RewriteRule(
    "σ∪σ over one child merges", "union reduce", _union_select_merge
)


def _union_idempotent(query: WSAQuery, env: SchemaEnv) -> WSAQuery | None:
    """q ∪ q → q, for split-free q (e.g. duplicate OR disjuncts)."""
    if (
        isinstance(query, Union)
        and query.left == query.right
        and _split_free(query.left)
    ):
        return query.left
    return None


RULE_UNION_IDEMPOTENT = RewriteRule(
    "idempotent union", "union reduce", _union_idempotent
)


# -- Cosmetic rules (used by the paper's example derivations) ----------------------------


def _identity_projection(query: WSAQuery, env: SchemaEnv) -> WSAQuery | None:
    """π_*(q) → q: remove projections onto the full attribute list."""
    if isinstance(query, Project):
        if set(query.attrs) == _attrs(query.child, env):
            return query.child
    return None


RULE_IDENTITY_PI = RewriteRule("identity projection", "cosmetic", _identity_projection)


def _select_product_to_join(query: WSAQuery, env: SchemaEnv) -> WSAQuery | None:
    """σ_φ(q₁ × q₂) → q₁ ⋈_φ q₂ ("transformed the product in a join")."""
    if isinstance(query, Select) and isinstance(query.child, Product):
        return ThetaJoin(query.predicate, query.child.left, query.child.right)
    return None


RULE_JOIN = RewriteRule("σ over × is a join", "cosmetic", _select_product_to_join)


def _projection_cascade(query: WSAQuery, env: SchemaEnv) -> WSAQuery | None:
    """π_A(π_B(q)) → π_A(q)."""
    if isinstance(query, Project) and isinstance(query.child, Project):
        return Project(query.attrs, query.child.child)
    return None


RULE_PI_CASCADE = RewriteRule("projection cascade", "cosmetic", _projection_cascade)


def _select_into_closing(query: WSAQuery, env: SchemaEnv) -> WSAQuery | None:
    """Eq. (1)/(4) left-to-right: σ_φ(poss/cert(q)) → poss/cert(σ_φ(q)).

    The finalize phase uses the commute rules in this direction (as the
    paper's Example 6.2 derivation does) so selections can fuse with the
    products underneath into joins.
    """
    if isinstance(query, Select) and isinstance(query.child, (Poss, Cert)):
        closing = query.child
        return type(closing)(Select(query.predicate, closing.child))
    return None


RULE_1_4_REVERSE = RewriteRule(
    "σ moves inside poss/cert", "Eq. (1)(4)", _select_into_closing
)


#: All Figure 7 rules in the application priority the rewriter uses:
#: reductions first, then commutes, then cosmetics.
DEFAULT_RULES: tuple[RewriteRule, ...] = (
    RULE_22_23,
    RULE_11,
    RULE_15,
    RULE_16,
    RULE_24,
    RULE_UNION_IDEMPOTENT,
    RULE_UNION_SELECT,
    RULE_AGG_CLOSING,
    RULE_AGG_SELECT,
    RULE_12,
    RULE_13,
    RULE_14,
    RULE_17,
    RULE_18_19,
    RULE_20,
    RULE_21,
    RULE_1_2_4,
    RULE_3,
    RULE_5,
    RULE_6,
    RULE_7,
    RULE_8,
    RULE_9_10,
    RULE_PI_CASCADE,
    RULE_IDENTITY_PI,
    RULE_JOIN,
)

#: Rules for the finalize phase: fold selections back into the closing
#: operators and form joins, as the tail of the Example 6.2 derivation.
FINALIZE_RULES: tuple[RewriteRule, ...] = (
    RULE_1_4_REVERSE,
    RULE_PI_CASCADE,
    RULE_IDENTITY_PI,
    RULE_JOIN,
)


def default_rules(input_kind: str = "1") -> tuple[RewriteRule, ...]:
    """The Figure 7 rule set with Eq. (20)/(21) guarded for *input_kind*.

    ``"1"`` (the default) matches the paper's setting — queries
    evaluated from a complete database; ``"m"`` makes the guards strict
    enough for arbitrary world-set inputs.
    """
    replacements = {
        id(RULE_20): _make_rule_20(input_kind),
        id(RULE_21): _make_rule_21(input_kind),
        id(RULE_9_10): _make_rule_9_10(input_kind),
        id(RULE_AGG_CLOSING): _make_rule_agg_closing(input_kind),
    }
    return tuple(replacements.get(id(rule), rule) for rule in DEFAULT_RULES)


# -- Proposition 6.3 -----------------------------------------------------------------------


def cert_via_poss(query: WSAQuery, env: SchemaEnv) -> WSAQuery:
    """Eq. (25): cert(Q) = Q − poss(poss(Q) − Q)."""
    return difference(query, poss(difference(poss(query), query)))


def cert_via_domain(query: WSAQuery, env: SchemaEnv) -> WSAQuery:
    """Eq. (25) first form: cert(Q) = Q − poss(D^arity(Q) − Q)."""
    domain = active_domain(query.attributes(env))
    return difference(query, poss(difference(domain, query)))


def poss_via_cert(query: WSAQuery, env: SchemaEnv) -> WSAQuery:
    """Eq. (26): poss(Q) = D^arity(Q) − cert(D^arity(Q) − Q)."""
    domain = active_domain(query.attributes(env))
    return difference(domain, Cert(difference(domain, query)))
