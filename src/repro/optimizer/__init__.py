"""Algebraic optimization of world-set algebra queries (Section 6)."""

from repro.optimizer.cost import CostEstimate, compare, estimate
from repro.optimizer.equivalences import (
    DEFAULT_RULES,
    FINALIZE_RULES,
    RewriteRule,
    cert_via_domain,
    cert_via_poss,
    default_rules,
    poss_via_cert,
)
from repro.optimizer.rewriter import RewriteStep, Rewriter, optimize

__all__ = [
    "CostEstimate",
    "DEFAULT_RULES",
    "FINALIZE_RULES",
    "RewriteRule",
    "RewriteStep",
    "Rewriter",
    "cert_via_domain",
    "cert_via_poss",
    "compare",
    "default_rules",
    "estimate",
    "optimize",
    "poss_via_cert",
]
