"""ULDB (Trio) substrate: x-relations and the TriQL fragment of Remark 4.6."""

from repro.uldb.triql import (
    horizontal_exists,
    remark_46_instances,
    remark_46_query,
    select_where_horizontal,
)
from repro.uldb.xrelation import XRelation, XTuple

__all__ = [
    "XRelation",
    "XTuple",
    "horizontal_exists",
    "remark_46_instances",
    "remark_46_query",
    "select_where_horizontal",
]
