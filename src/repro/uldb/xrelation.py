"""ULDBs: x-relations with alternatives, '?' (maybe), and lineage.

This is the fragment of the Trio/ULDB model [Benjelloun et al., VLDB
2006] that Remark 4.6 of the paper needs:

* an *x-tuple* has an identifier, one or more *alternatives* (ordinary
  tuples), an optional *maybe* marker ``?``, and per-alternative
  *lineage* — a set of ``(external tuple id, alternative index)`` pairs
  it depends on;
* a possible world chooses one alternative for every external id
  referenced anywhere, includes each x-tuple's alternative whose
  lineage is satisfied by that choice, and may drop maybe-tuples;
* alternatives of one x-tuple are mutually exclusive, and x-tuples
  whose lineage points to different alternatives of the same external
  tuple never co-occur.

:func:`XRelation.possible_worlds` enumerates the represented world-set
as plain :class:`~repro.relational.relation.Relation` instances, which
is what the genericity comparison of Remark 4.6 is stated over.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Sequence

from repro.errors import SchemaError
from repro.relational.relation import Relation
from repro.worlds.world import World
from repro.worlds.worldset import WorldSet

Lineage = frozenset[tuple[str, int]]


class XTuple:
    """One x-tuple: alternatives, a maybe marker, per-alternative lineage."""

    __slots__ = ("tid", "alternatives", "maybe", "lineage")

    def __init__(
        self,
        tid: str,
        alternatives: Sequence[tuple],
        maybe: bool = False,
        lineage: Sequence[Iterable[tuple[str, int]]] | None = None,
    ) -> None:
        if not alternatives:
            raise SchemaError(f"x-tuple {tid!r} needs at least one alternative")
        self.tid = tid
        self.alternatives = tuple(tuple(a) for a in alternatives)
        self.maybe = maybe
        if lineage is None:
            lineage = [frozenset() for _ in self.alternatives]
        if len(lineage) != len(self.alternatives):
            raise SchemaError(
                f"x-tuple {tid!r}: lineage must align with alternatives"
            )
        self.lineage: tuple[Lineage, ...] = tuple(frozenset(l) for l in lineage)

    def __repr__(self) -> str:
        alts = " || ".join(repr(a) for a in self.alternatives)
        marker = " ?" if self.maybe else ""
        return f"{self.tid}: {alts}{marker}"


class XRelation:
    """An uncertain relation: a schema plus a list of x-tuples."""

    __slots__ = ("name", "attributes", "tuples")

    def __init__(
        self, name: str, attributes: Sequence[str], tuples: Sequence[XTuple] = ()
    ) -> None:
        self.name = name
        self.attributes = tuple(attributes)
        self.tuples = list(tuples)
        for x_tuple in self.tuples:
            for alternative in x_tuple.alternatives:
                if len(alternative) != len(self.attributes):
                    raise SchemaError(
                        f"alternative {alternative!r} of {x_tuple.tid!r} does "
                        f"not match schema {list(self.attributes)}"
                    )

    def add(self, x_tuple: XTuple) -> None:
        """Append an x-tuple (validating its arity)."""
        XRelation(self.name, self.attributes, [x_tuple])  # arity check
        self.tuples.append(x_tuple)

    # -- possible worlds ------------------------------------------------------------

    def external_ids(self) -> list[str]:
        """External tuple ids referenced by any lineage, in stable order."""
        own = {x.tid for x in self.tuples}
        seen: list[str] = []
        for x_tuple in self.tuples:
            for lineage in x_tuple.lineage:
                for tid, _ in sorted(lineage):
                    if tid not in own and tid not in seen:
                        seen.append(tid)
        return seen

    def _external_arity(self, tid: str) -> int:
        """Number of alternatives an external id is assumed to have."""
        indices = {
            index
            for x_tuple in self.tuples
            for lineage in x_tuple.lineage
            for t, index in lineage
            if t == tid
        }
        return max(indices) + 1 if indices else 1

    def possible_worlds(self) -> WorldSet:
        """Enumerate the represented set of possible worlds.

        Choices: one alternative per external id, one alternative (or
        absence, if maybe) per x-tuple consistent with its lineage.
        """
        externals = self.external_ids()
        arities = [self._external_arity(tid) for tid in externals]
        worlds: set[World] = set()
        for choice in itertools.product(*(range(a) for a in arities)):
            external_choice = dict(zip(externals, choice))
            options: list[list[tuple | None]] = []
            for x_tuple in self.tuples:
                viable: list[tuple | None] = [
                    alternative
                    for alternative, lineage in zip(
                        x_tuple.alternatives, x_tuple.lineage
                    )
                    if all(
                        external_choice.get(tid, index) == index
                        for tid, index in lineage
                    )
                ]
                if x_tuple.maybe or not viable:
                    viable.append(None)
                options.append(viable)
            for selection in itertools.product(*options):
                rows = [row for row in selection if row is not None]
                worlds.add(
                    World.of({self.name: Relation(self.attributes, rows)})
                )
        return WorldSet(worlds)

    def __repr__(self) -> str:
        return f"XRelation({self.name}, {len(self.tuples)} x-tuples)"
