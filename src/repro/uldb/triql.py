"""The TriQL fragment of Remark 4.6: horizontal subqueries.

TriQL's *horizontal selection* ``[select … from R r1, R r2 where …]``
is evaluated **across the alternatives of each x-tuple** — an x-tuple
is selected iff the bracketed subquery is non-empty over its own
alternatives. Remark 4.6 uses the query

    select * from R where
    exists [select * from R r1, R r2 where r1.A <> r2.A];

("keep x-tuples with at least two distinct alternatives") to show that
TriQL is *not generic*: two ULDBs representing the same world-set can
produce answers representing different world-sets, because the query
reads the representation (how alternatives are packaged into x-tuples),
not the represented worlds.

We implement exactly this query shape: a horizontal exists-condition
comparing pairs of alternatives of one x-tuple.
"""

from __future__ import annotations

from typing import Callable

from repro.uldb.xrelation import XRelation, XTuple

#: A predicate over a pair of alternatives (each a plain value tuple).
PairPredicate = Callable[[tuple, tuple], bool]


def horizontal_exists(x_tuple: XTuple, predicate: PairPredicate) -> bool:
    """Evaluate ``exists [select * from R r1, R r2 where φ(r1, r2)]``.

    The horizontal subquery ranges over the alternatives of the given
    x-tuple only (that is TriQL's horizontal scoping).
    """
    return any(
        predicate(first, second)
        for first in x_tuple.alternatives
        for second in x_tuple.alternatives
    )


def select_where_horizontal(
    relation: XRelation, predicate: PairPredicate
) -> XRelation:
    """``select * from R where exists [… where φ(r1, r2)]``.

    Returns a new x-relation with the x-tuples whose alternative pairs
    satisfy the predicate; alternatives, maybe markers and lineage are
    preserved (the answer of a TriQL query keeps the x-tuple structure).
    """
    selected = [
        x_tuple
        for x_tuple in relation.tuples
        if horizontal_exists(x_tuple, predicate)
    ]
    return XRelation(relation.name, relation.attributes, selected)


def remark_46_query(relation: XRelation) -> XRelation:
    """The exact query of Remark 4.6 over a unary x-relation R(A)."""
    return select_where_horizontal(
        relation, lambda first, second: first[0] != second[0]
    )


def remark_46_instances() -> tuple[XRelation, XRelation]:
    """The ULDBs U₁ and U₂ of Remark 4.6.

    U₁: one maybe x-tuple t1 with alternatives (1) and (2), no lineage.
    U₂: two maybe x-tuples t1 = (1) and t2 = (2) whose lineage points to
    the first and second alternative, respectively, of an external
    x-tuple s1. Both represent the same three worlds {1}, {2}, {}.
    """
    u1 = XRelation("R", ("A",))
    u1.add(XTuple("t1", [(1,), (2,)], maybe=True))

    u2 = XRelation("R", ("A",))
    u2.add(XTuple("t1", [(1,)], maybe=True, lineage=[{("s1", 0)}]))
    u2.add(XTuple("t2", [(2,)], maybe=True, lineage=[{("s1", 1)}]))
    return u1, u2
