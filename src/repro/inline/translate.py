"""The general world-set-algebra → relational-algebra translation (Figure 6).

Given a world-set algebra query and an inlined representation schema,
the translator produces *relational algebra expressions* computing the
output representation ⟨R'₁, …, R'_k, R'_{k+1}, W'⟩, where R'_{k+1}
encodes the answer. Composing those expressions yields Theorem 5.7: a
1↦1 query is equivalent to a single relational algebra query of
polynomial size over the complete input database.

Implementation notes on the paper's formulas (see DESIGN.md):

* the choice-of world-table update ``W' = W =⊳⊲ δ_{B→V_B}(R)`` is
  implemented with R first projected to its id and choice attributes,
  so W' carries only id attributes;
* the grouping relation S' ("an equivalence relation over world ids")
  is computed symmetrically — pairs of worlds whose answer projections
  are *equal*, not merely contained;
* the cγ helper relations P/P' are read as: a tuple is dropped from a
  group when it misses *some* world of the group (the literal
  projection lists in Figure 6 are garbled; Example 5.4 and the
  reference semantics pin the intent).
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.errors import TranslationError, TypingError, WorldLimitError
from repro.core.ast import (
    ActiveDomain,
    Aggregate,
    AntiJoin,
    Cert,
    CertGroup,
    CertGroupKey,
    ChoiceOf,
    Difference,
    Divide,
    Intersect,
    NaturalJoin,
    PadJoin,
    Poss,
    PossGroup,
    PossGroupKey,
    Product,
    Project,
    Rel,
    Rename,
    RepairByKey,
    Select,
    SemiJoin,
    ThetaJoin,
    Union,
    WSAQuery,
    _NaturalJoinExpansion,
)
from repro.core.typing import is_complete_to_complete
from repro.inline.representation import WORLD_TABLE, InlinedRepresentation
from repro.relational import algebra as ra
from repro.relational.columnar import as_tuple, kernel_ops
from repro.relational.database import Database
from repro.relational.predicates import conjunction, eq
from repro.relational.relation import Relation
from repro.relational.schema import Schema

SchemaLike = Mapping[str, Schema | Sequence[str]]


def _schema_env(schemas: SchemaLike) -> dict[str, Schema]:
    env: dict[str, Schema] = {}
    for name, schema in schemas.items():
        env[name] = schema if isinstance(schema, Schema) else Schema(schema)
    return env


def lower_query(query: WSAQuery, env: Mapping[str, Schema]) -> WSAQuery:
    """Expand derived operators (θ-join, natural join, ÷) to base ones."""
    children = tuple(lower_query(child, env) for child in query.children())
    if isinstance(query, ThetaJoin):
        return Select(query.predicate, Product(children[0], children[1]))
    if isinstance(query, (NaturalJoin, _NaturalJoinExpansion)):
        return _NaturalJoinExpansion(children[0], children[1]).expand(env)
    if isinstance(query, Divide):
        return Divide(children[0], children[1]).expand(env)
    if children != query.children():
        return query._with_children(children)
    return query


class TranslationState:
    """The inlined-representation expressions at one translation point."""

    __slots__ = ("tables", "world", "ids")

    def __init__(
        self,
        tables: dict[str, ra.RAExpr],
        world: ra.RAExpr,
        ids: tuple[str, ...],
    ) -> None:
        self.tables = tables
        self.world = world
        self.ids = ids


class GeneralTranslation:
    """The result of translating one query: expressions plus metadata."""

    __slots__ = ("query", "state", "answer", "value_attrs", "source", "counter")

    def __init__(
        self,
        query: WSAQuery,
        state: TranslationState,
        answer: ra.RAExpr,
        value_attrs: tuple[str, ...],
        source: InlinedRepresentation | None,
        counter: int = 0,
    ) -> None:
        self.query = query
        self.state = state
        self.answer = answer
        self.value_attrs = value_attrs
        self.source = source
        self.counter = counter

    def apply(
        self,
        representation: InlinedRepresentation | None = None,
        name: str = "Q",
        max_worlds: int | None = None,
        kernel: str | None = None,
    ) -> InlinedRepresentation:
        """Evaluate all expressions, producing the output representation.

        The answer table is added under *name* (R_{k+1} of Section 5.2).
        The world table is evaluated *first* so that a *max_worlds*
        guard fires before the (often much larger) per-table and answer
        expressions are materialized; the shared cache carries its
        subresults over to them.

        With a vectorized *kernel* (``columnar``, the ``REPRO_KERNEL``
        default, or ``array``) the base tables enter the relational
        algebra DAG as that kernel's views and every operator runs its
        vectorized implementation; the output converts back to tuple
        relations at this method's boundary, so the returned
        representation is kernel-agnostic.
        """
        rep = representation if representation is not None else self.source
        if rep is None:
            raise TranslationError("no input representation supplied")
        database = rep.as_database()
        convert = kernel_ops(kernel).convert
        database = Database(
            (table, convert(relation)) for table, relation in database.items()
        )
        cache: dict[int, Relation] = {}
        world = self.state.world._cached(database, cache)
        if max_worlds is not None and len(world) > max_worlds:
            raise WorldLimitError(
                f"translated evaluation exceeded {max_worlds} worlds"
            )
        tables = [
            (table, as_tuple(expression._cached(database, cache)))
            for table, expression in self.state.tables.items()
        ]
        tables.append((name, as_tuple(self.answer._cached(database, cache))))
        return InlinedRepresentation(tables, as_tuple(world), self.state.ids)

    def answer_size(self) -> int:
        """Operator count of the answer expression (polynomial in |q|)."""
        return self.answer.size()


class GeneralTranslator:
    """Implements the translation function ⟦·⟧τ of Figure 6.

    *counter_start* offsets the fresh world-id attribute counter so a
    session translating one statement after another never reuses an id
    attribute name already present in its state.
    """

    def __init__(
        self,
        value_schemas: SchemaLike,
        base_ids: Sequence[str] = (),
        counter_start: int = 0,
        world_factors: Sequence[tuple[str, Sequence[str]]] = (),
    ) -> None:
        self.env = _schema_env(value_schemas)
        self.base_ids = tuple(base_ids)
        #: (table name, id attributes) per world factor — a factored
        #: input representation exposes ``#W0``, ``#W1``, … instead of
        #: the joint ``#W``, and the translated W is their join.
        self.world_factors = tuple(
            (name, tuple(attrs)) for name, attrs in world_factors
        )
        self._counter = counter_start

    # -- fresh attribute names ---------------------------------------------------

    def _fresh(self) -> int:
        self._counter += 1
        return self._counter

    def _choice_ids(self, attrs: Sequence[str]) -> dict[str, str]:
        n = self._fresh()
        return {a: f"${a}#{n}" for a in attrs}

    def _group_ids(self, ids: Sequence[str]) -> dict[str, str]:
        n = self._fresh()
        return {v: f"$g{n}.{v.lstrip('$')}" for v in ids}

    def _primed(self, attrs: Sequence[str]) -> dict[str, str]:
        n = self._fresh()
        return {a: f"{a}⋆{n}" for a in attrs}

    # -- entry points --------------------------------------------------------------

    def translate(self, query: WSAQuery) -> tuple[TranslationState, ra.RAExpr]:
        """Translate *query*, returning the final state and answer expression."""
        query.attributes(self.env)  # validate up front
        lowered = lower_query(query, self.env)
        initial = TranslationState(
            {name: ra.Table(name) for name in self.env},
            self._initial_world(),
            self.base_ids,
        )
        return self._translate(lowered, initial)

    def _initial_world(self) -> ra.RAExpr:
        """W as an expression: the join of the factor tables (disjoint
        ids, so the join is their product), or the joint ``#W``."""
        if not self.base_ids:
            return ra.Literal(Relation.unit())
        if self.world_factors:
            world: ra.RAExpr = ra.Table(self.world_factors[0][0])
            for factor_name, _ in self.world_factors[1:]:
                world = ra.NaturalJoin(world, ra.Table(factor_name))
            return world
        return ra.Table(WORLD_TABLE)

    # -- the translation, by case -----------------------------------------------------

    def _translate(
        self, query: WSAQuery, state: TranslationState
    ) -> tuple[TranslationState, ra.RAExpr]:
        if isinstance(query, Rel):
            return state, state.tables[query.name]
        if isinstance(query, Select):
            state, answer = self._translate(query.child, state)
            return state, ra.Select(query.predicate, answer)
        if isinstance(query, Project):
            state, answer = self._translate(query.child, state)
            return state, ra.Project(query.attrs + state.ids, answer)
        if isinstance(query, Rename):
            state, answer = self._translate(query.child, state)
            return state, ra.Rename(query.mapping, answer)
        if isinstance(query, ChoiceOf):
            return self._translate_choice(query, state)
        if isinstance(query, Poss):
            state, answer = self._translate(query.child, state)
            values = self._value_attrs(answer, state)
            return state, ra.Product(ra.Project(values, answer), state.world)
        if isinstance(query, Cert):
            state, answer = self._translate(query.child, state)
            return state, ra.Product(ra.Divide(answer, state.world), state.world)
        if isinstance(query, (PossGroup, CertGroup)):
            return self._translate_group(query, state)
        if isinstance(query, (PossGroupKey, CertGroupKey)):
            return self._translate_group_keyed(query, state)
        if isinstance(query, Aggregate):
            return self._translate_aggregate(query, state)
        if isinstance(query, (SemiJoin, AntiJoin)):
            return self._translate_semijoin(query, state)
        if isinstance(query, PadJoin):
            return self._translate_pad_join(query, state)
        if isinstance(query, (Product, Union, Intersect, Difference)):
            return self._translate_binary(query, state)
        if isinstance(query, RepairByKey):
            raise TranslationError(
                "repair-by-key exceeds relational algebra (Proposition 4.2)"
            )
        if isinstance(query, ActiveDomain):
            raise TranslationError(
                "the active-domain relation of Proposition 6.3 is not part "
                "of the Figure 6 translation"
            )
        raise TranslationError(f"untranslatable node {type(query).__name__}")

    def _value_attrs(self, answer: ra.RAExpr, state: TranslationState) -> tuple[str, ...]:
        schema = answer.schema(self._ra_env(state))
        ids = set(state.ids)
        return tuple(a for a in schema if a not in ids)

    def _ra_env(self, state: TranslationState) -> dict[str, Schema]:
        env: dict[str, Schema] = {}
        for name, schema in self.env.items():
            env[name] = Schema(schema.attributes + self.base_ids)
        if self.world_factors:
            for factor_name, attrs in self.world_factors:
                env[factor_name] = Schema(attrs)
        else:
            env[WORLD_TABLE] = Schema(self.base_ids)
        return env

    def _translate_choice(
        self, query: ChoiceOf, state: TranslationState
    ) -> tuple[TranslationState, ra.RAExpr]:
        state, answer = self._translate(query.child, state)
        mapping = self._choice_ids(query.attrs)
        # W' = W =⊳⊲ δ_{B→V_B}(π_{V,B}(R)): pad worlds with an empty
        # answer using the constant c (the dummy choice of Figure 3).
        choices = ra.Rename(mapping, ra.Project(state.ids + query.attrs, answer))
        world = ra.OuterJoinPad(state.world, choices)
        # R' = π_{D,V,B as V_B}(R): copy the choice attributes as ids.
        extended = answer
        for attr in query.attrs:
            extended = ra.CopyAttr(attr, mapping[attr], extended)
        tables = {
            name: ra.NaturalJoin(expression, world)
            for name, expression in state.tables.items()
        }
        new_state = TranslationState(
            tables, world, state.ids + tuple(mapping[a] for a in query.attrs)
        )
        return new_state, extended

    def _translate_group(
        self, query: PossGroup | CertGroup, state: TranslationState
    ) -> tuple[TranslationState, ra.RAExpr]:
        state, answer = self._translate(query.child, state)
        ids = state.ids
        if not ids:
            # A single world forms a single group: grouping degenerates
            # to the projection π_V.
            return state, ra.Project(query.proj_attrs, answer)
        group_map = self._group_ids(ids)
        group_ids = tuple(group_map[v] for v in ids)
        grouping = query.group_attrs
        projection = query.proj_attrs

        # --- the γ^B_A helper of Figure 6 -------------------------------
        # Pairs of world ids whose answers agree on π_A form the
        # equivalence relation S' (symmetric by construction).
        by_group = ra.Project(grouping + ids, answer)            # π_{A,V}(R)
        ids_only = ra.Project(ids, answer)                        # π_V(R)
        partners = ra.Rename(group_map, ids_only)                 # π_{V2}(δ(R))
        all_pairs = ra.Product(ids_only, partners)
        primed = self._primed(grouping)
        partner_values = ra.Rename(
            {**primed, **group_map}, ra.Project(grouping + ids, answer)
        )
        agree_condition = conjunction([eq(a, primed[a]) for a in grouping])
        agree = ra.Project(
            grouping + ids + group_ids,
            ra.ThetaJoin(agree_condition, by_group, partner_values)
            if grouping
            else ra.Product(by_group, partner_values),
        )
        missing_left = ra.Project(
            ids + group_ids, ra.Difference(ra.Product(by_group, partners), agree)
        )
        swap = {**group_map, **{g: v for v, g in group_map.items()}}
        missing_right = ra.Rename(swap, missing_left)
        equivalence = ra.Difference(
            ra.Difference(all_pairs, missing_left), missing_right
        )
        grouped = ra.Project(
            projection + ids + group_ids, ra.NaturalJoin(answer, equivalence)
        )

        inverse = {g: v for v, g in group_map.items()}
        candidates = ra.Rename(inverse, ra.Project(projection + group_ids, grouped))
        if isinstance(query, PossGroup):
            # pγ: drop the old world ids, rename group ids back to V.
            return state, candidates
        # cγ: drop tuples that miss some world of their group.
        candidate_pairs = ra.NaturalJoin(
            ra.Project(projection + group_ids, grouped), equivalence
        )
        missing = ra.Difference(
            ra.Project(projection + ids + group_ids, candidate_pairs),
            ra.Project(projection + ids + group_ids, grouped),
        )
        not_certain = ra.Rename(inverse, ra.Project(projection + group_ids, missing))
        return state, ra.Difference(candidates, not_certain)

    def _combined_state(
        self, state: TranslationState, left: TranslationState, right: TranslationState
    ) -> TranslationState:
        """The state after a binary node: joined worlds, unioned ids.

        Shared by every binary translation (products, set operators,
        semijoins, the pad join, keyed grouping): the world tables join,
        the fresh ids of both operands follow the inherited ones, and
        every base table rejoins the new world table.
        """
        world = ra.NaturalJoin(left.world, right.world)
        new_left = tuple(v for v in left.ids if v not in set(state.ids))
        new_right = tuple(v for v in right.ids if v not in set(state.ids))
        ids = state.ids + new_left + new_right
        tables = {
            name: ra.NaturalJoin(expression, world)
            for name, expression in state.tables.items()
        }
        return TranslationState(tables, world, ids)

    def _translate_aggregate(
        self, query: Aggregate, state: TranslationState
    ) -> tuple[TranslationState, ra.RAExpr]:
        """SQL aggregation on the inlined tables: ids join the group key.

        ``R' = γ_{U ∪ V; specs}(R)`` — grouping on the user attributes
        plus the world ids aggregates every world in one pass. A global
        aggregate (U = ∅) pads worlds without answer rows from W, so
        each world still answers with the empty-group defaults.
        """
        state, answer = self._translate(query.child, state)
        keys = query.group_attrs + state.ids
        pad = state.world if (not query.group_attrs and state.ids) else None
        return state, ra.GroupAggregate(keys, query.specs, answer, pad)

    def _translate_semijoin(
        self, query: SemiJoin | AntiJoin, state: TranslationState
    ) -> tuple[TranslationState, ra.RAExpr]:
        """⋉_φ / ▷_φ: σ_φ over the id-joined operands, projected back.

        The natural join pairs tuples of compatible worlds (the shared
        id attributes); φ keeps the partnered pairs and the projection
        drops the right operand's value attributes, keeping its extra
        world ids — the antijoin complements against the left answer
        replicated over those ids (R ⋈ W').
        """
        left_state, left = self._translate(query.left, state)
        right_state, right = self._translate(query.right, state)
        new_state = self._combined_state(state, left_state, right_state)
        ids = new_state.ids
        env = self._ra_env(new_state)
        left_attrs = left.schema(env).attributes
        keep = left_attrs + tuple(a for a in ids if a not in set(left_attrs))
        matched = ra.Project(keep, ra.Select(query.predicate, ra.NaturalJoin(left, right)))
        if isinstance(query, SemiJoin):
            return new_state, matched
        base = ra.Project(keep, ra.NaturalJoin(left, new_state.world))
        return new_state, ra.Difference(base, matched)

    def _translate_pad_join(
        self, query: PadJoin, state: TranslationState
    ) -> tuple[TranslationState, ra.RAExpr]:
        """=⊳⊲ through the RA extension operator of Remark 5.5.

        The left answer joins the combined world table first (so a
        splitting right operand pads per combined world), then the
        ``OuterJoinPad`` node does the padded join — shared world ids
        are join attributes like the shared value attributes.
        """
        left_state, left = self._translate(query.left, state)
        right_state, right = self._translate(query.right, state)
        new_state = self._combined_state(state, left_state, right_state)
        extended = ra.NaturalJoin(left, new_state.world) if new_state.ids else left
        return new_state, ra.OuterJoinPad(extended, right)

    def _translate_group_keyed(
        self, query: PossGroupKey | CertGroupKey, state: TranslationState
    ) -> tuple[TranslationState, ra.RAExpr]:
        """The Figure 6 grouping construction keyed by a companion query.

        Identical to :meth:`_translate_group` except that (a) the
        equivalence relation S' compares the *key* query's answer rows
        (extended to the combined ids via K ⋈ W) instead of a projection
        of the child's, and (b) world ids range over π_V(W) rather than
        π_V(R) — a world with an empty child answer still belongs to the
        group its key rows name, and within cγ it correctly empties it.
        """
        child_state, answer = self._translate(query.child, state)
        key_state, key_answer = self._translate(query.key, state)
        new_state = self._combined_state(state, child_state, key_state)
        world, ids = new_state.world, new_state.ids
        if not ids:
            return new_state, ra.Project(query.proj_attrs, answer)
        env = self._ra_env(new_state)
        key_attrs = tuple(
            a for a in key_answer.schema(env) if a not in set(ids)
        )
        projection = query.proj_attrs
        group_map = self._group_ids(ids)
        group_ids = tuple(group_map[v] for v in ids)

        # Extend both answers to the combined ids.
        extended = ra.NaturalJoin(answer, world)
        keyed = ra.NaturalJoin(key_answer, world)

        by_group = ra.Project(key_attrs + ids, keyed)
        ids_only = ra.Project(ids, world)  # every world, even empty-answer ones
        partners = ra.Rename(group_map, ids_only)
        all_pairs = ra.Product(ids_only, partners)
        primed = self._primed(key_attrs)
        partner_values = ra.Rename(
            {**primed, **group_map}, ra.Project(key_attrs + ids, keyed)
        )
        agree_condition = conjunction([eq(a, primed[a]) for a in key_attrs])
        agree = ra.Project(
            key_attrs + ids + group_ids,
            ra.ThetaJoin(agree_condition, by_group, partner_values)
            if key_attrs
            else ra.Product(by_group, partner_values),
        )
        missing_left = ra.Project(
            ids + group_ids, ra.Difference(ra.Product(by_group, partners), agree)
        )
        swap = {**group_map, **{g: v for v, g in group_map.items()}}
        missing_right = ra.Rename(swap, missing_left)
        equivalence = ra.Difference(
            ra.Difference(all_pairs, missing_left), missing_right
        )
        grouped = ra.Project(
            projection + ids + group_ids, ra.NaturalJoin(extended, equivalence)
        )

        inverse = {g: v for v, g in group_map.items()}
        candidates = ra.Rename(inverse, ra.Project(projection + group_ids, grouped))
        if isinstance(query, PossGroupKey):
            return new_state, candidates
        candidate_pairs = ra.NaturalJoin(
            ra.Project(projection + group_ids, grouped), equivalence
        )
        missing = ra.Difference(
            ra.Project(projection + ids + group_ids, candidate_pairs),
            ra.Project(projection + ids + group_ids, grouped),
        )
        not_certain = ra.Rename(inverse, ra.Project(projection + group_ids, missing))
        return new_state, ra.Difference(candidates, not_certain)

    def _translate_binary(
        self, query: WSAQuery, state: TranslationState
    ) -> tuple[TranslationState, ra.RAExpr]:
        left_state, left = self._translate(query.children()[0], state)
        right_state, right = self._translate(query.children()[1], state)
        new_state = self._combined_state(state, left_state, right_state)
        world = new_state.world
        if isinstance(query, Product):
            # R' ⋈_{V=V} R'': tuples of the same original world combine;
            # the join also pairs the worlds created by the two operands.
            return new_state, ra.NaturalJoin(left, right)
        operators = {Union: ra.Union, Intersect: ra.Intersection, Difference: ra.Difference}
        operator = operators[type(query)]
        return new_state, operator(
            ra.NaturalJoin(left, world), ra.NaturalJoin(right, world)
        )


# -- module-level API ---------------------------------------------------------------


def translate_general(
    query: WSAQuery,
    representation: InlinedRepresentation,
    counter_start: int = 0,
) -> GeneralTranslation:
    """Translate *query* against the schema of *representation*."""
    value_schemas = {
        name: representation.value_attributes(name) for name in representation.tables
    }
    world_factors = (
        tuple(
            (factor_name, factor.schema.attributes)
            for factor_name, factor in representation.factor_tables().items()
        )
        if representation.factors is not None
        else ()
    )
    translator = GeneralTranslator(
        value_schemas,
        representation.id_attrs,
        counter_start=counter_start,
        world_factors=world_factors,
    )
    state, answer = translator.translate(query)
    value_attrs = query.attributes(translator.env)
    return GeneralTranslation(
        query, state, answer, value_attrs, representation, translator._counter
    )


def apply_general(
    query: WSAQuery, representation: InlinedRepresentation, name: str = "Q"
) -> InlinedRepresentation:
    """Translate and evaluate in one step (Example 5.4 end to end)."""
    return translate_general(query, representation).apply(name=name)


def conservative_ra_query(query: WSAQuery, schemas: SchemaLike) -> ra.RAExpr:
    """Theorem 5.7: the equivalent relational algebra query of a 1↦1 query.

    The returned expression operates directly on the complete database
    (no world table needed); its final projection drops the world-id
    attributes introduced by nested operators.
    """
    if not is_complete_to_complete(query):
        raise TypingError(
            "only 1↦1 (complete-to-complete) queries admit an equivalent "
            "relational algebra query over the plain database"
        )
    translator = GeneralTranslator(schemas, ())
    state, answer = translator.translate(query)
    value_attrs = query.attributes(translator.env)
    return ra.Project(value_attrs, answer)
