"""The inlined representation of world-sets (Definition 5.1).

An inlined representation T = ⟨R₁ᵀ[U₁ ∪ V], …, R_kᵀ[U_k ∪ V], W[V]⟩
stores all instances of each relation across all worlds in one table,
tagged with world-identifier attributes V, plus a world table W of all
world ids. ``rep(T)`` decodes the represented world-set:

    rep(T) = { ⟨π_{U₁}(σ_{V=w}(R₁ᵀ)), …⟩ | w ∈ W }

The world table may contain ids that appear in no table — this encodes
worlds with empty relations; an empty W encodes the empty world-set,
and a nullary W = {⟨⟩} encodes a single (complete) world.

Tables may carry a *subset* of the id attributes V (the lazy §5.3
interpretation): a table without id attributes holds a relation that is
the same in every world, and a table tagged with V_i ⊆ V varies only
with those ids — its instance in world w is σ_{V_i = π_{V_i}(w)}. The
strict Definition 5.1 form (every table carries all of V) is a special
case; :meth:`strict` converts to it. The lazy form is what keeps an
inline-backed session succinct: registering a relation or materializing
a world-uniform answer never replicates rows per world.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.errors import RepresentationError
from repro.relational.columnar import (
    as_tuple,
    kernel_ops,
    tuples_of,
)
from repro.relational.database import Database
from repro.relational.relation import Relation
from repro.relational.schema import Schema, is_id_attribute
from repro.worlds.world import World
from repro.worlds.worldset import WorldSet

#: Reserved name of the world table inside translation databases.
WORLD_TABLE = "#W"


class InlinedRepresentation:
    """A world-set inlined into flat relations plus a world table."""

    __slots__ = ("tables", "world_table", "id_attrs", "_known_ids", "_expanded")

    def __init__(
        self,
        tables: Mapping[str, Relation] | Iterable[tuple[str, Relation]],
        world_table: Relation,
        id_attrs: Iterable[str] | None = None,
    ) -> None:
        self.tables = Database(tables)
        self.world_table = world_table
        if id_attrs is None:
            id_attrs = world_table.schema.attributes
        self.id_attrs = tuple(id_attrs)
        #: Per-(V_i) sets of known world ids, shared with derived
        #: representations over the same world table (validation cache).
        self._known_ids: dict[tuple[str, ...], set[tuple]] = {}
        #: Cached id-expanded table views, keyed (name, sorted ids) —
        #: see :meth:`expanded`. Instances are immutable, so entries
        #: never go stale; :meth:`replacing` carries untouched ones over.
        self._expanded: dict[tuple[str, tuple[str, ...]], object] = {}
        self._validate()

    def _known(self, table_ids: tuple[str, ...]) -> set[tuple]:
        """The world table's id sub-tuples for *table_ids* (cached)."""
        known = self._known_ids.get(table_ids)
        if known is None:
            known = set(tuples_of(self.world_table, table_ids))
            self._known_ids[table_ids] = known
        return known

    def _validate_table(self, name: str, relation: Relation) -> None:
        """One table's invariants: ids declared, referenced ids known.

        Vectorized: each check is one C-speed pass over id column
        slices (tuples_of), not a Python loop over row tuples —
        representations are re-validated on every session commit.
        """
        stray = [
            a
            for a in relation.schema
            if is_id_attribute(a) and a not in set(self.id_attrs)
        ]
        if stray:
            raise RepresentationError(
                f"table {name!r} carries undeclared id attributes {stray}"
            )
        table_ids = tuple(
            a for a in self.id_attrs if a in relation.schema.as_set()
        )
        if not table_ids:
            return
        twin = getattr(relation, "_array", None)
        if twin is not None:
            # Array-kernel sessions: one np.isin pass over factorized id
            # codes instead of materializing Python tuple sets per commit.
            from repro.relational.array_kernel import as_array, missing_world_ids

            world = as_array(self.world_table)
            missing = missing_world_ids(
                twin,
                twin.schema.indices(table_ids),
                world,
                world.schema.indices(table_ids),
            )
            if missing is not None:
                raise RepresentationError(
                    f"table {name!r} references world id {missing[0]!r} "
                    "that is not in the world table"
                )
            return
        referenced = set(tuples_of(relation, table_ids))
        known = self._known(table_ids)
        if not referenced <= known:
            world_id = next(iter(sorted(referenced - known, key=repr)))
            raise RepresentationError(
                f"table {name!r} references world id {world_id!r} "
                "that is not in the world table"
            )

    def _validate(self) -> None:
        if set(self.world_table.schema.attributes) != set(self.id_attrs):
            raise RepresentationError(
                f"world table attributes {list(self.world_table.schema)} "
                f"differ from declared id attributes {list(self.id_attrs)}"
            )
        for name, relation in self.tables.items():
            self._validate_table(name, relation)

    # -- constructors ------------------------------------------------------------

    @staticmethod
    def initial() -> "InlinedRepresentation":
        """The representation of one empty world: no tables, W = {⟨⟩}.

        This is the starting state of an inline-backed session, mirroring
        ``WorldSet.single(World.of({}))`` on the explicit side.
        """
        return InlinedRepresentation({}, Relation.unit(), ())

    @staticmethod
    def of_database(database: Database | Mapping[str, Relation]) -> "InlinedRepresentation":
        """Encode a complete database: V = ∅, W = {⟨⟩} (Example 5.6 step 1)."""
        items = database.items() if isinstance(database, Database) else database.items()
        return InlinedRepresentation(dict(items), Relation.unit(), ())

    @staticmethod
    def of_world_set(
        world_set: WorldSet, id_attr: str = "$world"
    ) -> "InlinedRepresentation":
        """Encode an explicit world-set with one integer id attribute."""
        if not is_id_attribute(id_attr):
            raise RepresentationError(f"{id_attr!r} must use the id prefix")
        worlds = world_set.sorted_worlds()
        names = world_set.relation_names
        tables: dict[str, Relation] = {}
        for name, schema in world_set.signature:
            attrs = Schema(schema.attributes + (id_attr,))
            rows: list[tuple] = []
            for index, world in enumerate(worlds):
                aligned = world[name]._reordered(schema.attributes)
                rows.extend(row + (index,) for row in aligned.rows)
            # Rows are distinct by construction (each carries its world
            # index), so the encode skips per-row coercion/interning.
            tables[name] = Relation._raw(attrs, rows)
        world_table = Relation._raw(
            Schema((id_attr,)), [(i,) for i in range(len(worlds))]
        )
        return InlinedRepresentation(tables, world_table, (id_attr,))

    # -- decoding ------------------------------------------------------------------

    def value_attributes(self, name: str) -> tuple[str, ...]:
        """The value (non-id) attributes U_i of table *name*."""
        ids = set(self.id_attrs)
        return tuple(a for a in self.tables[name].schema if a not in ids)

    def table_id_attrs(self, name: str) -> tuple[str, ...]:
        """The id attributes table *name* actually carries (V_i ⊆ V)."""
        schema = self.tables[name].schema.as_set()
        return tuple(a for a in self.id_attrs if a in schema)

    def replacing(
        self, name: str, table: Relation, validate: bool = True
    ) -> "InlinedRepresentation":
        """The representation with *name*'s table swapped for *table*.

        The DML commit path: the world table and every other table are
        unchanged — and were validated when this instance was built —
        so only the replacement is re-checked (id attributes declared,
        referenced world ids known). The known-world-id sets are shared
        and cached :meth:`expanded` views of *other* tables carry over,
        which is what makes a multi-statement DML script pay for each
        id expansion once instead of once per statement.

        *validate=False* skips even the replacement's check: callers
        whose rows are derived from this representation's own tables —
        a DML mask keeps a subset, a scatter rewrites only value
        columns, an append draws its id columns from the world table —
        cannot introduce unknown world ids, and at 10⁵-row scale the
        id-column pass is measurable on every statement.
        """
        self.tables[name]  # unknown names raise the catalog's SchemaError
        replacement = object.__new__(InlinedRepresentation)
        replacement.tables = Database(
            (table_name, table if table_name == name else existing)
            for table_name, existing in self.tables.items()
        )
        replacement.world_table = self.world_table
        replacement.id_attrs = self.id_attrs
        replacement._known_ids = self._known_ids
        replacement._expanded = {
            key: view for key, view in self._expanded.items() if key[0] != name
        }
        if validate:
            replacement._validate_table(name, table)
        return replacement

    def expanded(self, name: str, ids: Iterable[str], kernel: str | None = None):
        """The flat table of *name* carrying at least the id columns *ids*.

        A lazily stored table (fewer id columns than a DML match plan
        depends on) is replicated over the missing ids by joining the
        world table's projection — the only place DML pays for
        per-world variance, and only for the ids actually involved.
        The join runs in *kernel* (``None`` reads ``REPRO_KERNEL``) and
        the result — a :class:`Relation` or ``ColumnarRelation`` — is
        cached on this instance, so the delete/update statements of one
        batch expand once, not once per statement.
        """
        table = self.tables[name]
        ids = tuple(ids)
        if not set(ids) - table.schema.as_set():
            return table
        key = (name, tuple(sorted(ids)))
        cached = self._expanded.get(key)
        if cached is None:
            ops = kernel_ops(kernel)
            cached = ops.convert(table).natural_join(
                ops.convert(self.world_table).project(ids)
            )
            self._expanded[key] = cached
        return cached

    def world_ids(self) -> list[tuple]:
        """The world identifiers, in deterministic order."""
        return self.world_table.distinct_values(self.id_attrs)

    def world(self, world_id: tuple) -> World:
        """Decode the world with identifier *world_id*."""
        assignment = dict(zip(self.id_attrs, world_id))
        relations = []
        for name, table in self.tables.items():
            values = self.value_attributes(name)
            restriction = {a: assignment[a] for a in self.table_id_attrs(name)}
            relations.append(
                (name, table.select_values(restriction).project(values))
            )
        return World.of(relations)

    def rep(self) -> WorldSet:
        """rep(T): the represented world-set (Definition 5.1).

        Equivalent worlds stored under different ids collapse, since
        world-sets are sets.
        """
        signature = tuple(
            (name, Schema(self.value_attributes(name))) for name in self.tables
        )
        return WorldSet((self.world(w) for w in self.world_ids()), signature)

    # -- views ----------------------------------------------------------------------

    def as_database(self) -> Database:
        """The tables plus the world table, for RA query evaluation."""
        return self.tables.with_relation(WORLD_TABLE, self.world_table)

    def world_count(self) -> int:
        """Number of world identifiers (equivalent worlds counted apart)."""
        return len(self.world_table)

    def world_fingerprints(self) -> dict[tuple, tuple]:
        """Per world id, a hashable fingerprint of the decoded world.

        Two ids get equal fingerprints iff their worlds coincide
        relation by relation. Computed with one pass per flat table —
        no world materialization; this is how the inline backend
        answers world-count questions without decoding.
        """
        world_ids = self.world_ids()
        fingerprints: dict[tuple, list[frozenset]] = {
            world_id: [] for world_id in world_ids
        }
        id_positions = {a: p for p, a in enumerate(self.id_attrs)}
        for name in self.tables:
            table = self.tables[name]
            table_ids = self.table_id_attrs(name)
            rows_by_sub: dict[tuple, set[tuple]] = {}
            for sub_id, value in zip(
                tuples_of(table, table_ids),
                tuples_of(table, self.value_attributes(name)),
            ):
                bucket = rows_by_sub.get(sub_id)
                if bucket is None:
                    rows_by_sub[sub_id] = {value}
                else:
                    bucket.add(value)
            grouped = {sub: frozenset(rows) for sub, rows in rows_by_sub.items()}
            project = tuple(id_positions[a] for a in table_ids)
            empty = frozenset()
            for world_id, rows in fingerprints.items():
                sub_id = tuple(world_id[p] for p in project)
                rows.append(grouped.get(sub_id, empty))
        return {world_id: tuple(rows) for world_id, rows in fingerprints.items()}

    def distinct_world_count(self) -> int:
        """Number of *distinct* represented worlds (rep(T) cardinality).

        Two ids whose worlds coincide relation-by-relation count once,
        matching the set semantics of explicit world-sets.
        """
        return len(set(self.world_fingerprints().values()))

    def strict(self) -> "InlinedRepresentation":
        """The strict Definition 5.1 form: every table tagged with all of V.

        Tables carrying only a subset of the id attributes are joined
        with the world table (``R_i ⋈ W``), replicating their rows per
        world — exponential in general, which is exactly why sessions
        keep the lazy form; the Figure 6 translator wants this one.
        """
        if not self.id_attrs:
            return self
        convert = kernel_ops(None).convert
        world = convert(self.world_table)
        tables = []
        for name, table in self.tables.items():
            if self.table_id_attrs(name) == self.id_attrs:
                tables.append((name, table))
            else:
                # The replicating join runs in the active kernel; the
                # result converts back at the Relation API boundary.
                tables.append((name, as_tuple(convert(table).natural_join(world))))
        return InlinedRepresentation(tables, self.world_table, self.id_attrs)

    def size(self) -> int:
        """Total stored rows: Σ|R_iᵀ| + |W| (the representation's footprint)."""
        return sum(len(r) for _, r in self.tables.items()) + len(self.world_table)

    def __repr__(self) -> str:
        tables = ", ".join(f"{n}[{len(r)}]" for n, r in self.tables.items())
        return (
            f"InlinedRepresentation({tables}; |W|={len(self.world_table)}, "
            f"V={list(self.id_attrs)})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, InlinedRepresentation):
            return NotImplemented
        if other is self:
            # The common post-rollback comparison: a restored snapshot
            # is the *same object* (commits swap references, they never
            # mutate), so state checks after a transactional restore
            # short-circuit without touching any table.
            return True
        return (
            dict(self.tables.items()) == dict(other.tables.items())
            and self.world_table == other.world_table
            and self.id_attrs == other.id_attrs
        )

    def __hash__(self) -> int:
        return hash(
            (frozenset(self.tables.items()), self.world_table, self.id_attrs)
        )
