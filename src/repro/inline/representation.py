"""The inlined representation of world-sets (Definition 5.1).

An inlined representation T = ⟨R₁ᵀ[U₁ ∪ V], …, R_kᵀ[U_k ∪ V], W[V]⟩
stores all instances of each relation across all worlds in one table,
tagged with world-identifier attributes V, plus a world table W of all
world ids. ``rep(T)`` decodes the represented world-set:

    rep(T) = { ⟨π_{U₁}(σ_{V=w}(R₁ᵀ)), …⟩ | w ∈ W }

The world table may contain ids that appear in no table — this encodes
worlds with empty relations; an empty W encodes the empty world-set,
and a nullary W = {⟨⟩} encodes a single (complete) world.

Tables may carry a *subset* of the id attributes V (the lazy §5.3
interpretation): a table without id attributes holds a relation that is
the same in every world, and a table tagged with V_i ⊆ V varies only
with those ids — its instance in world w is σ_{V_i = π_{V_i}(w)}. The
strict Definition 5.1 form (every table carries all of V) is a special
case; :meth:`strict` converts to it. The lazy form is what keeps an
inline-backed session succinct: registering a relation or materializing
a world-uniform answer never replicates rows per world.

The world table itself may be *factored* (:class:`FactoredWorld`):
instead of one joint relation over all of V, it is a product of small
factor relations over disjoint id subsets — the Section 3 reading of
independent choices as independent dimensions. ``repair by key`` mints
one single-attribute factor per violating key group, and registers that
attribute as *wild*: in a wild column the padding constant ``PAD`` acts
as a wildcard (the row is in every world of that factor). That keeps a
repaired table at Σ-of-group-sizes rows where the joint encoding pays
the ∏-of-group-sizes product. Consumers that need the joint table
(decoding, pairing, the strict form) go through :attr:`world_table`,
which materializes the product lazily; the hot paths (validation,
counting, DML) operate factor by factor and never build it.
"""

from __future__ import annotations

from itertools import count, product
from typing import Iterable, Mapping

from repro.errors import RepresentationError
from repro.inline.factors import FactoredWorld
from repro.relational.columnar import (
    as_tuple,
    kernel_ops,
    tuples_of,
)
from repro.relational.database import Database
from repro.relational.pad import PAD, row_sort_key
from repro.relational.relation import Relation
from repro.relational.schema import Schema, is_id_attribute
from repro.worlds.world import World
from repro.worlds.worldset import WorldSet

#: Reserved name of the world table inside translation databases.
WORLD_TABLE = "#W"

#: Cache key marker for the PAD-expanded view of a wild table.
_DEWILD = ("$dewild",)

#: Process-global ticker behind :attr:`InlinedRepresentation.versions`.
#: ``next()`` on a count object is atomic under the GIL, and globality
#: is load-bearing: versions must never repeat across representations,
#: or a rollback-and-redo could alias a stale result-memo entry.
_VERSION_TICKER = count(1)


class InlinedRepresentation:
    """A world-set inlined into flat relations plus a world table."""

    __slots__ = (
        "tables",
        "_world_table",
        "id_attrs",
        "factors",
        "wild_attrs",
        "_known_ids",
        "_expanded",
        "versions",
        "world_version",
    )

    def __init__(
        self,
        tables: Mapping[str, Relation] | Iterable[tuple[str, Relation]],
        world_table: Relation | None,
        id_attrs: Iterable[str] | None = None,
        *,
        factors: FactoredWorld | None = None,
        wild_attrs: Iterable[str] = (),
    ) -> None:
        self.tables = Database(tables)
        self.factors = factors
        self.wild_attrs = frozenset(wild_attrs)
        #: The joint world table; ``None`` for a factored representation
        #: until someone asks for it (see the :attr:`world_table` property).
        self._world_table = world_table
        if id_attrs is None:
            if factors is not None:
                id_attrs = factors.ids
            else:
                id_attrs = world_table.schema.attributes
        self.id_attrs = tuple(id_attrs)
        #: Per-(V_i) sets of known world ids, shared with derived
        #: representations over the same world table (validation cache).
        self._known_ids: dict[tuple[str, ...], set[tuple]] = {}
        #: Cached id-expanded table views, keyed (name, sorted ids) —
        #: see :meth:`expanded`. Instances are immutable, so entries
        #: never go stale; :meth:`replacing` carries untouched ones over.
        self._expanded: dict[tuple[str, tuple[str, ...]], object] = {}
        #: Process-unique version counters, one per table plus one for
        #: the world, the result memo's invalidation keys: a DML delta
        #: (:meth:`replacing`) mints a fresh version for exactly the
        #: table it changed, a from-scratch construction (this path)
        #: mints fresh versions for everything. Versions are drawn from
        #: one global ticker, so a rolled-back-and-redone table can
        #: never alias an old version's memo entries — and because they
        #: live on the (immutable) representation, snapshot restore
        #: carries the old versions back with the old tables.
        self.versions = {name: next(_VERSION_TICKER) for name in self.tables}
        self.world_version = next(_VERSION_TICKER)
        self._validate()

    @property
    def world_table(self) -> Relation:
        """The joint world table W — materialized from the factors on
        first access when this representation is factored. Hot paths
        must prefer :meth:`world_object` / the per-factor methods; this
        property is the decode/pairing escape hatch and is product-sized.
        """
        if self._world_table is None:
            self._world_table = self.factors.materialize()
        return self._world_table

    def world_object(self) -> FactoredWorld | Relation:
        """The world as stored: the factor product, or the joint table."""
        if self.factors is not None:
            return self.factors
        return self.world_table

    def _known(self, table_ids: tuple[str, ...]) -> set[tuple]:
        """The world table's id sub-tuples for *table_ids* (cached)."""
        known = self._known_ids.get(table_ids)
        if known is None:
            known = set(tuples_of(self.world_table, table_ids))
            self._known_ids[table_ids] = known
        return known

    def _validate_table(self, name: str, relation: Relation) -> None:
        """One table's invariants: ids declared, referenced ids known.

        Vectorized: each check is one C-speed pass over id column
        slices (tuples_of), not a Python loop over row tuples —
        representations are re-validated on every session commit.
        """
        stray = [
            a
            for a in relation.schema
            if is_id_attribute(a) and a not in set(self.id_attrs)
        ]
        if stray:
            raise RepresentationError(
                f"table {name!r} carries undeclared id attributes {stray}"
            )
        table_ids = tuple(
            a for a in self.id_attrs if a in relation.schema.as_set()
        )
        if not table_ids:
            return
        if self.factors is not None:
            self._validate_table_factored(name, relation, table_ids)
            return
        twin = getattr(relation, "_array", None)
        if twin is not None:
            # Array-kernel sessions: one np.isin pass over factorized id
            # codes instead of materializing Python tuple sets per commit.
            from repro.relational.array_kernel import as_array, missing_world_ids

            world = as_array(self.world_table)
            missing = missing_world_ids(
                twin,
                twin.schema.indices(table_ids),
                world,
                world.schema.indices(table_ids),
            )
            if missing is not None:
                raise RepresentationError(
                    f"table {name!r} references world id {missing[0]!r} "
                    "that is not in the world table "
                    f"({_factor_column_phrase(table_ids)})"
                )
            return
        referenced = set(tuples_of(relation, table_ids))
        known = self._known(table_ids)
        if not referenced <= known:
            world_id = min(referenced - known, key=row_sort_key)
            raise RepresentationError(
                f"table {name!r} references world id {world_id!r} "
                "that is not in the world table "
                f"({_factor_column_phrase(table_ids)})"
            )

    def _validate_table_factored(
        self, name: str, relation: Relation, table_ids: tuple[str, ...]
    ) -> None:
        """Per-factor id check: every referenced sub-id is in its factor.

        A joint id is known iff each factor's sub-tuple is known, so the
        check never touches the product. In a *wild* column ``PAD`` is
        the every-world wildcard and is skipped; any other value must be
        a member of the factor's domain.
        """
        table_attr_set = set(table_ids)
        for factor in self.factors.factors:
            f_attrs = tuple(
                a for a in factor.schema.attributes if a in table_attr_set
            )
            if not f_attrs:
                continue
            known = self._known_ids.get(f_attrs)
            if known is None:
                known = set(tuples_of(factor, f_attrs))
                self._known_ids[f_attrs] = known
            referenced = set(tuples_of(relation, f_attrs))
            if len(f_attrs) == 1 and f_attrs[0] in self.wild_attrs:
                referenced = {t for t in referenced if t[0] is not PAD}
            missing = referenced - known
            if missing:
                sub_id = min(missing, key=row_sort_key)
                raise RepresentationError(
                    f"table {name!r} references world id {sub_id!r} "
                    "that is not in the world table "
                    f"({_factor_column_phrase(f_attrs)})"
                )

    def _validate(self) -> None:
        if self.factors is not None:
            if set(self.factors.ids) != set(self.id_attrs):
                raise RepresentationError(
                    f"world factor attributes {list(self.factors.ids)} "
                    f"differ from declared id attributes {list(self.id_attrs)}"
                )
            single = {
                f.schema.attributes[0]
                for f in self.factors.factors
                if len(f.schema.attributes) == 1
            }
            loose = self.wild_attrs - single
            if loose:
                raise RepresentationError(
                    f"wild attributes {sorted(loose)} must each be a "
                    "single-attribute world factor"
                )
        else:
            if self.wild_attrs:
                raise RepresentationError(
                    "wild attributes require a factored world table"
                )
            if set(self.world_table.schema.attributes) != set(self.id_attrs):
                raise RepresentationError(
                    f"world table attributes {list(self.world_table.schema)} "
                    f"differ from declared id attributes {list(self.id_attrs)}"
                )
        for name, relation in self.tables.items():
            self._validate_table(name, relation)

    # -- constructors ------------------------------------------------------------

    @staticmethod
    def initial() -> "InlinedRepresentation":
        """The representation of one empty world: no tables, W = {⟨⟩}.

        This is the starting state of an inline-backed session, mirroring
        ``WorldSet.single(World.of({}))`` on the explicit side.
        """
        return InlinedRepresentation({}, Relation.unit(), ())

    @staticmethod
    def of_database(database: Database | Mapping[str, Relation]) -> "InlinedRepresentation":
        """Encode a complete database: V = ∅, W = {⟨⟩} (Example 5.6 step 1)."""
        items = database.items() if isinstance(database, Database) else database.items()
        return InlinedRepresentation(dict(items), Relation.unit(), ())

    @staticmethod
    def of_world_set(
        world_set: WorldSet, id_attr: str = "$world"
    ) -> "InlinedRepresentation":
        """Encode an explicit world-set with one integer id attribute."""
        if not is_id_attribute(id_attr):
            raise RepresentationError(f"{id_attr!r} must use the id prefix")
        worlds = world_set.sorted_worlds()
        names = world_set.relation_names
        tables: dict[str, Relation] = {}
        for name, schema in world_set.signature:
            attrs = Schema(schema.attributes + (id_attr,))
            rows: list[tuple] = []
            for index, world in enumerate(worlds):
                aligned = world[name]._reordered(schema.attributes)
                rows.extend(row + (index,) for row in aligned.rows)
            # Rows are distinct by construction (each carries its world
            # index), so the encode skips per-row coercion/interning.
            tables[name] = Relation._raw(attrs, rows)
        world_table = Relation._raw(
            Schema((id_attr,)), [(i,) for i in range(len(worlds))]
        )
        return InlinedRepresentation(tables, world_table, (id_attr,))

    # -- decoding ------------------------------------------------------------------

    def value_attributes(self, name: str) -> tuple[str, ...]:
        """The value (non-id) attributes U_i of table *name*."""
        ids = set(self.id_attrs)
        return tuple(a for a in self.tables[name].schema if a not in ids)

    def table_id_attrs(self, name: str) -> tuple[str, ...]:
        """The id attributes table *name* actually carries (V_i ⊆ V)."""
        schema = self.tables[name].schema.as_set()
        return tuple(a for a in self.id_attrs if a in schema)

    def table_wild_attrs(self, name: str) -> tuple[str, ...]:
        """The wild (PAD-wildcard) id attributes table *name* carries."""
        if not self.wild_attrs:
            return ()
        return tuple(
            a for a in self.table_id_attrs(name) if a in self.wild_attrs
        )

    def replacing(
        self, name: str, table: Relation, validate: bool = True
    ) -> "InlinedRepresentation":
        """The representation with *name*'s table swapped for *table*.

        The DML commit path: the world table and every other table are
        unchanged — and were validated when this instance was built —
        so only the replacement is re-checked (id attributes declared,
        referenced world ids known). The known-world-id sets are shared
        and cached :meth:`expanded` views of *other* tables carry over,
        which is what makes a multi-statement DML script pay for each
        id expansion once instead of once per statement.

        *validate=False* skips even the replacement's check: callers
        whose rows are derived from this representation's own tables —
        a DML mask keeps a subset, a scatter rewrites only value
        columns, an append draws its id columns from the world table —
        cannot introduce unknown world ids, and at 10⁵-row scale the
        id-column pass is measurable on every statement.
        """
        self.tables[name]  # unknown names raise the catalog's SchemaError
        replacement = object.__new__(InlinedRepresentation)
        replacement.tables = Database(
            (table_name, table if table_name == name else existing)
            for table_name, existing in self.tables.items()
        )
        replacement._world_table = self._world_table
        replacement.factors = self.factors
        replacement.wild_attrs = self.wild_attrs
        replacement.id_attrs = self.id_attrs
        replacement._known_ids = self._known_ids
        replacement._expanded = {
            key: view for key, view in self._expanded.items() if key[0] != name
        }
        # The delta is exactly one table: it gets a fresh version, every
        # other table (and the world) keeps its counter, so memoized
        # results over the untouched tables stay servable.
        versions = dict(self.versions)
        versions[name] = next(_VERSION_TICKER)
        replacement.versions = versions
        replacement.world_version = self.world_version
        if validate:
            replacement._validate_table(name, table)
        return replacement

    def _dewilded(self, name: str):
        """Table *name* with PAD wildcards expanded over factor domains.

        A wild-column row stands for one row per world of its factor;
        this view spells those rows out (tuple engine, cached). It is
        the bridge from the succinct factored form to consumers that
        match ids exactly — DML's general route, decoding, pairing.
        """
        key = (name, _DEWILD)
        cached = self._expanded.get(key)
        if cached is not None:
            return cached
        table = self.tables[name]
        attrs = table.schema.attributes
        wild = set(self.table_wild_attrs(name))
        domains = self.factors.attr_domains()
        wild_pos = tuple(i for i, a in enumerate(attrs) if a in wild)
        rows: dict[tuple, None] = {}
        for row in tuples_of(table, attrs):
            pads = [i for i in wild_pos if row[i] is PAD]
            if not pads:
                rows[row] = None
                continue
            for combo in product(*(domains[attrs[i]] for i in pads)):
                filled = list(row)
                for i, v in zip(pads, combo):
                    filled[i] = v
                rows[tuple(filled)] = None
        cached = Relation._raw(Schema(attrs), list(rows))
        self._expanded[key] = cached
        return cached

    def expanded(self, name: str, ids: Iterable[str], kernel: str | None = None):
        """The flat table of *name* carrying at least the id columns *ids*.

        A lazily stored table (fewer id columns than a DML match plan
        depends on) is replicated over the missing ids by joining the
        world table's projection — the only place DML pays for
        per-world variance, and only for the ids actually involved: on
        a factored world the projection is the product of the touched
        factors alone, never the full W. Wild columns are de-wildcarded
        first (PAD patterns expanded over their factor domains) so the
        result matches ids exactly. The join runs in *kernel* (``None``
        reads ``REPRO_KERNEL``) and the result — a :class:`Relation` or
        ``ColumnarRelation`` — is cached on this instance, so the
        delete/update statements of one batch expand once, not once per
        statement.
        """
        table = self.tables[name]
        ids = tuple(ids)
        wild = self.table_wild_attrs(name)
        if not wild and not set(ids) - table.schema.as_set():
            return table
        key = (name, tuple(sorted(ids)))
        cached = self._expanded.get(key)
        if cached is None:
            ops = kernel_ops(kernel)
            source = ops.convert(self._dewilded(name) if wild else table)
            if set(ids) - table.schema.as_set():
                if self.factors is not None:
                    world = self.factors.project(ids).materialize()
                else:
                    world = self.world_table
                cached = source.natural_join(ops.convert(world).project(ids))
            else:
                cached = source
            self._expanded[key] = cached
        return cached

    def insert_sub_ids(self, name: str) -> list[tuple]:
        """Id sub-tuples an inserted (every-world) row of *name* takes.

        Wild columns take ``PAD`` — one stored row reaches every world
        of those factors — while concrete id columns still enumerate
        their combinations (from the touched factors only, or from the
        joint world table on a non-factored representation).
        """
        table_ids = self.table_id_attrs(name)
        if not table_ids:
            return [()]
        wild = set(self.table_wild_attrs(name))
        if not wild:
            if self.factors is not None:
                return (
                    self.factors.project(table_ids)
                    .materialize()
                    .distinct_values(table_ids)
                )
            return self.world_table.distinct_values(table_ids)
        concrete = tuple(a for a in table_ids if a not in wild)
        if concrete:
            pool = self.factors.project(concrete).materialize().distinct_values(
                concrete
            )
        else:
            pool = [()]
        positions = {a: i for i, a in enumerate(concrete)}
        return [
            tuple(
                sub[positions[a]] if a in positions else PAD for a in table_ids
            )
            for sub in pool
        ]

    def world_ids(self) -> list[tuple]:
        """The world identifiers, in deterministic order."""
        return self.world_table.distinct_values(self.id_attrs)

    def world(self, world_id: tuple) -> World:
        """Decode the world with identifier *world_id*."""
        assignment = dict(zip(self.id_attrs, world_id))
        relations = []
        for name, table in self.tables.items():
            values = self.value_attributes(name)
            table_ids = self.table_id_attrs(name)
            wild = set(self.table_wild_attrs(name))
            if not wild:
                restriction = {a: assignment[a] for a in table_ids}
                relations.append(
                    (name, table.select_values(restriction).project(values))
                )
                continue
            want = tuple(assignment[a] for a in table_ids)
            wild_pos = {i for i, a in enumerate(table_ids) if a in wild}
            rows = {
                value
                for sub_id, value in zip(
                    tuples_of(table, table_ids), tuples_of(table, values)
                )
                if all(
                    v == want[i] or (i in wild_pos and v is PAD)
                    for i, v in enumerate(sub_id)
                )
            }
            relations.append((name, Relation._raw(Schema(values), list(rows))))
        return World.of(relations)

    def rep(self) -> WorldSet:
        """rep(T): the represented world-set (Definition 5.1).

        Equivalent worlds stored under different ids collapse, since
        world-sets are sets.
        """
        signature = tuple(
            (name, Schema(self.value_attributes(name))) for name in self.tables
        )
        return WorldSet((self.world(w) for w in self.world_ids()), signature)

    # -- views ----------------------------------------------------------------------

    def as_database(self) -> Database:
        """The tables plus the world table(s), for RA query evaluation.

        A factored representation exposes one table per factor
        (``#W0``, ``#W1``, …) instead of the joint ``#W`` — the Figure 6
        translator builds W as their join, so the product is only ever
        realized inside a query that genuinely asks for it.
        """
        if self.factors is not None:
            database = self.tables
            for factor_name, factor in self.factor_tables().items():
                database = database.with_relation(factor_name, factor)
            return database
        return self.tables.with_relation(WORLD_TABLE, self.world_table)

    def factor_tables(self) -> dict[str, Relation]:
        """The factor relations under their reserved names (``#W0``, …)."""
        if self.factors is None:
            return {WORLD_TABLE: self.world_table}
        return {
            f"{WORLD_TABLE}{index}": factor
            for index, factor in enumerate(self.factors.factors)
        }

    def world_count(self) -> int:
        """Number of world identifiers (equivalent worlds counted apart).

        On a factored world this is the product of the factor sizes —
        O(#factors), no joint table.
        """
        if self.factors is not None:
            return self.factors.count()
        return len(self.world_table)

    def world_fingerprints(self) -> dict[tuple, tuple]:
        """Per world id, a hashable fingerprint of the decoded world.

        Two ids get equal fingerprints iff their worlds coincide
        relation by relation. Computed with one pass per flat table —
        no world materialization; this is how the inline backend
        answers world-count questions without decoding. (On a factored
        world the id list itself is the product — callers that only
        need the distinct count should use :meth:`distinct_world_count`,
        whose factored fast path never enumerates.)
        """
        world_ids = self.world_ids()
        fingerprints: dict[tuple, list[frozenset]] = {
            world_id: [] for world_id in world_ids
        }
        id_positions = {a: p for p, a in enumerate(self.id_attrs)}
        for name in self.tables:
            table = self.tables[name]
            table_ids = self.table_id_attrs(name)
            wild = set(self.table_wild_attrs(name))
            project = tuple(id_positions[a] for a in table_ids)
            empty = frozenset()
            if not wild:
                rows_by_sub: dict[tuple, set[tuple]] = {}
                for sub_id, value in zip(
                    tuples_of(table, table_ids),
                    tuples_of(table, self.value_attributes(name)),
                ):
                    bucket = rows_by_sub.get(sub_id)
                    if bucket is None:
                        rows_by_sub[sub_id] = {value}
                    else:
                        bucket.add(value)
                grouped = {
                    sub: frozenset(rows) for sub, rows in rows_by_sub.items()
                }
                for world_id, rows in fingerprints.items():
                    sub_id = tuple(world_id[p] for p in project)
                    rows.append(grouped.get(sub_id, empty))
                continue
            # Wild table: bucket rows by their *pattern* (the non-PAD
            # constraints), then give each world the union of every
            # bucket whose constraints its sub-id satisfies.
            wild_pos = {i for i, a in enumerate(table_ids) if a in wild}
            buckets: dict[tuple, set[tuple]] = {}
            for sub_id, value in zip(
                tuples_of(table, table_ids),
                tuples_of(table, self.value_attributes(name)),
            ):
                constraint = tuple(
                    (i, v)
                    for i, v in enumerate(sub_id)
                    if i not in wild_pos or v is not PAD
                )
                buckets.setdefault(constraint, set()).add(value)
            frozen = [
                (constraint, frozenset(rows))
                for constraint, rows in buckets.items()
            ]
            for world_id, rows in fingerprints.items():
                sub_id = tuple(world_id[p] for p in project)
                matched = [
                    bucket
                    for constraint, bucket in frozen
                    if all(sub_id[i] == v for i, v in constraint)
                ]
                rows.append(frozenset().union(*matched) if matched else empty)
        return {world_id: tuple(rows) for world_id, rows in fingerprints.items()}

    def _distinct_count_factored(self) -> int | None:
        """∏ per-factor distinct counts, or ``None`` when the factored
        shortcut does not apply.

        Valid when every factor is a single wild attribute, every table
        row constrains at most one factor, and no value row is
        contributed by two different sources (base vs. a factor, or two
        different factors) in the same table. Then two worlds decode
        equal iff they pick fingerprint-equal choices factor by factor,
        so rep(T)'s cardinality is the product over factors of the
        number of distinct per-choice contribution profiles — computed
        in one pass over the stored rows, without touching the 2ᵍ
        product. This is the repair-by-key shape (and survives the
        uniform DML route, which rewrites value columns only).
        """
        factors = self.factors.factors
        if any(len(f.schema.attributes) != 1 for f in factors):
            return None
        if set(self.id_attrs) - self.wild_attrs:
            return None
        attrs = tuple(f.schema.attributes[0] for f in factors)
        index = {a: j for j, a in enumerate(attrs)}
        domains = [
            tuple(r[0] for r in tuples_of(f, f.schema.attributes))
            for f in factors
        ]
        contributions: list[dict[object, set]] = [dict() for _ in factors]
        factor_rows: list[set] = [set() for _ in factors]
        base: set = set()
        for name in self.tables:
            table = self.tables[name]
            table_ids = self.table_id_attrs(name)
            values = self.value_attributes(name)
            if not table_ids:
                base.update((name, row) for row in tuples_of(table, values))
                continue
            positions = [index[a] for a in table_ids]
            for id_part, value in zip(
                tuples_of(table, table_ids), tuples_of(table, values)
            ):
                hits = [
                    (positions[i], v)
                    for i, v in enumerate(id_part)
                    if v is not PAD
                ]
                if not hits:
                    base.add((name, value))
                elif len(hits) > 1:
                    return None
                else:
                    j, choice = hits[0]
                    contributions[j].setdefault(choice, set()).add((name, value))
                    factor_rows[j].add((name, value))
        seen = set(base)
        for rows in factor_rows:
            if seen & rows:
                return None
            seen |= rows
        count = 1
        for j, domain in enumerate(domains):
            per_choice = contributions[j]
            profiles = {
                frozenset(per_choice.get(choice, ())) for choice in domain
            }
            count *= len(profiles)
        return count

    def distinct_world_count(self) -> int:
        """Number of *distinct* represented worlds (rep(T) cardinality).

        Two ids whose worlds coincide relation-by-relation count once,
        matching the set semantics of explicit world-sets.
        """
        if self.factors is not None:
            fast = self._distinct_count_factored()
            if fast is not None:
                return fast
        return len(set(self.world_fingerprints().values()))

    def materialized(self) -> "InlinedRepresentation":
        """The joint (non-factored) form of this representation.

        Wild PAD patterns are expanded over their factor domains and
        the world table is the materialized product — product-sized by
        construction, which is why only decode-adjacent consumers
        (:mod:`repro.inline.pairing`, :meth:`strict`, correlated
        assignments) call this.
        """
        if self.factors is None:
            return self
        tables = []
        for name, table in self.tables.items():
            if self.table_wild_attrs(name):
                tables.append((name, self._dewilded(name)))
            else:
                tables.append((name, table))
        return InlinedRepresentation(tables, self.world_table, self.id_attrs)

    def strict(self) -> "InlinedRepresentation":
        """The strict Definition 5.1 form: every table tagged with all of V.

        Tables carrying only a subset of the id attributes are joined
        with the world table (``R_i ⋈ W``), replicating their rows per
        world — exponential in general, which is exactly why sessions
        keep the lazy form; the Figure 6 translator wants this one. A
        factored representation keeps its factors (W stays a join of
        factor tables in the translated plan) but loses its wild
        columns: strictness means exact ids.
        """
        if not self.id_attrs:
            return self
        source = self.materialized() if self.wild_attrs else self
        convert = kernel_ops(None).convert
        world = convert(source.world_table)
        tables = []
        for name, table in source.tables.items():
            if source.table_id_attrs(name) == source.id_attrs:
                tables.append((name, table))
            else:
                # The replicating join runs in the active kernel; the
                # result converts back at the Relation API boundary.
                tables.append((name, as_tuple(convert(table).natural_join(world))))
        return InlinedRepresentation(
            tables, source.world_table, self.id_attrs, factors=self.factors
        )

    def size(self) -> int:
        """Total stored rows: Σ|R_iᵀ| + |W| (the representation's footprint).

        A factored world contributes the *sum* of its factor sizes —
        the whole point of the encoding: a repaired table's footprint
        is linear in the input, not in the number of repairs.
        """
        stored = sum(len(r) for _, r in self.tables.items())
        if self.factors is not None:
            return stored + sum(len(f) for f in self.factors.factors)
        return stored + len(self.world_table)

    def __repr__(self) -> str:
        tables = ", ".join(f"{n}[{len(r)}]" for n, r in self.tables.items())
        if self.factors is not None:
            return (
                f"InlinedRepresentation({tables}; W={self.factors!r}, "
                f"V={list(self.id_attrs)}, wild={sorted(self.wild_attrs)})"
            )
        return (
            f"InlinedRepresentation({tables}; |W|={len(self.world_table)}, "
            f"V={list(self.id_attrs)})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, InlinedRepresentation):
            return NotImplemented
        if other is self:
            # The common post-rollback comparison: a restored snapshot
            # is the *same object* (commits swap references, they never
            # mutate), so state checks after a transactional restore
            # short-circuit without touching any table.
            return True
        return (
            self.id_attrs == other.id_attrs
            and self.wild_attrs == other.wild_attrs
            and self.factors == other.factors
            and (
                self.factors is not None
                or self.world_table == other.world_table
            )
            and dict(self.tables.items()) == dict(other.tables.items())
        )

    def __hash__(self) -> int:
        world = self.factors if self.factors is not None else self.world_table
        return hash(
            (
                frozenset(self.tables.items()),
                world,
                self.id_attrs,
                self.wild_attrs,
            )
        )


def _factor_column_phrase(attrs: tuple[str, ...]) -> str:
    """Deterministic "which factor column is dangling" message suffix."""
    if len(attrs) == 1:
        return f"factor column {attrs[0]!r}"
    return f"factor columns {list(attrs)}"
