"""The inlined representation of world-sets (Definition 5.1).

An inlined representation T = ⟨R₁ᵀ[U₁ ∪ V], …, R_kᵀ[U_k ∪ V], W[V]⟩
stores all instances of each relation across all worlds in one table,
tagged with world-identifier attributes V, plus a world table W of all
world ids. ``rep(T)`` decodes the represented world-set:

    rep(T) = { ⟨π_{U₁}(σ_{V=w}(R₁ᵀ)), …⟩ | w ∈ W }

The world table may contain ids that appear in no table — this encodes
worlds with empty relations; an empty W encodes the empty world-set,
and a nullary W = {⟨⟩} encodes a single (complete) world.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.errors import RepresentationError
from repro.relational.database import Database
from repro.relational.relation import Relation
from repro.relational.schema import Schema, is_id_attribute
from repro.worlds.world import World
from repro.worlds.worldset import WorldSet

#: Reserved name of the world table inside translation databases.
WORLD_TABLE = "#W"


class InlinedRepresentation:
    """A world-set inlined into flat relations plus a world table."""

    __slots__ = ("tables", "world_table", "id_attrs")

    def __init__(
        self,
        tables: Mapping[str, Relation] | Iterable[tuple[str, Relation]],
        world_table: Relation,
        id_attrs: Iterable[str] | None = None,
    ) -> None:
        self.tables = Database(tables)
        self.world_table = world_table
        if id_attrs is None:
            id_attrs = world_table.schema.attributes
        self.id_attrs = tuple(id_attrs)
        self._validate()

    def _validate(self) -> None:
        if set(self.world_table.schema.attributes) != set(self.id_attrs):
            raise RepresentationError(
                f"world table attributes {list(self.world_table.schema)} "
                f"differ from declared id attributes {list(self.id_attrs)}"
            )
        id_set = set(self.id_attrs)
        world_ids = {
            tuple(row[p] for p in self.world_table.schema.indices(self.id_attrs))
            for row in self.world_table.rows
        }
        for name, relation in self.tables.items():
            missing = id_set - relation.schema.as_set()
            if missing:
                raise RepresentationError(
                    f"table {name!r} lacks id attributes {sorted(missing)}"
                )
            positions = relation.schema.indices(self.id_attrs)
            for row in relation.rows:
                world_id = tuple(row[p] for p in positions)
                if world_id not in world_ids:
                    raise RepresentationError(
                        f"table {name!r} references world id {world_id!r} "
                        "that is not in the world table"
                    )

    # -- constructors ------------------------------------------------------------

    @staticmethod
    def of_database(database: Database | Mapping[str, Relation]) -> "InlinedRepresentation":
        """Encode a complete database: V = ∅, W = {⟨⟩} (Example 5.6 step 1)."""
        items = database.items() if isinstance(database, Database) else database.items()
        return InlinedRepresentation(dict(items), Relation.unit(), ())

    @staticmethod
    def of_world_set(
        world_set: WorldSet, id_attr: str = "$world"
    ) -> "InlinedRepresentation":
        """Encode an explicit world-set with one integer id attribute."""
        if not is_id_attribute(id_attr):
            raise RepresentationError(f"{id_attr!r} must use the id prefix")
        worlds = world_set.sorted_worlds()
        names = world_set.relation_names
        tables: dict[str, Relation] = {}
        for name, schema in world_set.signature:
            attrs = schema.attributes + (id_attr,)
            rows: list[tuple] = []
            for index, world in enumerate(worlds):
                aligned = world[name]._reordered(schema.attributes)
                rows.extend(row + (index,) for row in aligned.rows)
            tables[name] = Relation(attrs, rows)
        world_table = Relation((id_attr,), ((i,) for i in range(len(worlds))))
        return InlinedRepresentation(tables, world_table, (id_attr,))

    # -- decoding ------------------------------------------------------------------

    def value_attributes(self, name: str) -> tuple[str, ...]:
        """The value (non-id) attributes U_i of table *name*."""
        ids = set(self.id_attrs)
        return tuple(a for a in self.tables[name].schema if a not in ids)

    def world_ids(self) -> list[tuple]:
        """The world identifiers, in deterministic order."""
        return self.world_table.distinct_values(self.id_attrs)

    def world(self, world_id: tuple) -> World:
        """Decode the world with identifier *world_id*."""
        assignment = dict(zip(self.id_attrs, world_id))
        relations = []
        for name, table in self.tables.items():
            values = self.value_attributes(name)
            relations.append(
                (name, table.select_values(assignment).project(values))
            )
        return World.of(relations)

    def rep(self) -> WorldSet:
        """rep(T): the represented world-set (Definition 5.1).

        Equivalent worlds stored under different ids collapse, since
        world-sets are sets.
        """
        signature = tuple(
            (name, Schema(self.value_attributes(name))) for name in self.tables
        )
        return WorldSet((self.world(w) for w in self.world_ids()), signature)

    # -- views ----------------------------------------------------------------------

    def as_database(self) -> Database:
        """The tables plus the world table, for RA query evaluation."""
        return self.tables.with_relation(WORLD_TABLE, self.world_table)

    def world_count(self) -> int:
        """Number of world identifiers (equivalent worlds counted apart)."""
        return len(self.world_table)

    def __repr__(self) -> str:
        tables = ", ".join(f"{n}[{len(r)}]" for n, r in self.tables.items())
        return (
            f"InlinedRepresentation({tables}; |W|={len(self.world_table)}, "
            f"V={list(self.id_attrs)})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, InlinedRepresentation):
            return NotImplemented
        return (
            dict(self.tables.items()) == dict(other.tables.items())
            and self.world_table == other.world_table
            and self.id_attrs == other.id_attrs
        )

    def __hash__(self) -> int:
        return hash(
            (frozenset(self.tables.items()), self.world_table, self.id_attrs)
        )
