"""Dedicated physical operators for world-set algebra (Section 8).

The paper's conclusion conjectures that "query plans with dedicated
physical operators for our I-SQL constructs should perform much better
than the default relational algebra query over the (nonsuccinct, and
thus in practice too large) inlined representation". This module
implements that engine: a direct evaluator over inlined tables that
keeps the §5.3 lazy interpretation (tables without id attributes live
in all worlds; the world table is materialized only on demand) but
replaces the translation's algebraic simulations with purpose-built
algorithms:

* group-worlds-by hashes worlds by their projection fingerprint —
  O(worlds × rows) instead of the O(worlds²) pairwise equivalence
  construction of Figure 6;
* cert divides with one hash-counting pass;
* σ_{eq}(R × S) plans (the shape ``FROM R1, R2 WHERE R1.A = R2.A``
  compiles to) are fused into one hash join — the product is never
  materialized;
* repair-by-key is supported natively (one fresh id attribute whose
  values number the repairs per world) — an operator the relational
  translation cannot express at all (Proposition 4.2).

The evaluator runs on a pluggable relation *kernel*
(:mod:`repro.relational.columnar`): with ``kernel="columnar"`` (the
``REPRO_KERNEL`` default) base tables are converted to
:class:`ColumnarRelation` once per session and every operator runs its
vectorized column-slice implementation; ``kernel="tuple"`` keeps the
original frozenset-of-rows engine alive for differential testing.
Conversion happens only at the :class:`Relation` API boundary — the
:class:`PhysicalState` a caller sees always exposes tuple-engine
relations, lazily converted on first access.

The evaluator is validated against the Figure 3 reference semantics by
the same differential test suites as the two translators, and the two
kernels are held to identical answers by ``tests/backend`` and
``tests/relational/test_columnar_differential.py``.
"""

from __future__ import annotations

from collections import Counter
from itertools import product as _cartesian
from typing import Iterable, Sequence

from repro.errors import TranslationError, WorldLimitError
from repro.core.ast import (
    ActiveDomain,
    Aggregate,
    AntiJoin,
    Cert,
    CertGroup,
    CertGroupKey,
    ChoiceOf,
    Difference,
    Intersect,
    PadJoin,
    Poss,
    PossGroup,
    PossGroupKey,
    Product,
    Project,
    Rel,
    Rename,
    RepairByKey,
    Select,
    SemiJoin,
    Union,
    WSAQuery,
    repairs_of_rows,
)
from repro.core.repair import factored_repair_groups
from repro.relational.aggregates import missing_group_rows
from repro.inline.factors import FactoredWorld
from repro.inline.translate import SchemaLike, _schema_env, lower_query
from repro.relational.array_kernel import ArrayRelation
from repro.relational.columnar import (
    ColumnarRelation,
    as_tuple,
    kernel_ops,
    kernel_unit,
    tuples_of,
)
from repro.relational.database import Database
from repro.relational.pad import PAD
from repro.relational.predicates import And, Predicate, conjunction
from repro.relational.relation import Relation
from repro.relational.schema import Schema

#: Either kernel's relation type (they share the operator surface).
KernelRelation = "Relation | ColumnarRelation"


def _split_conjuncts(predicate: Predicate) -> list[Predicate]:
    """Flatten a conjunction into its top-level conjuncts."""
    if isinstance(predicate, And):
        return _split_conjuncts(predicate.left) + _split_conjuncts(predicate.right)
    return [predicate]


class PhysicalState:
    """One evaluated subquery: answer table, id attributes, world table.

    Mirrors :class:`repro.inline.optimized.OptimizedState`, but holds
    materialized relations rather than expressions. ``world`` is None
    when no worlds were created (the single implicit world).

    Internally the relations live in whichever kernel evaluated them;
    the public :attr:`answer`/:attr:`world` accessors convert to the
    tuple engine lazily (cached), so consumers outside the evaluator
    always see plain :class:`Relation` objects.

    ``world`` may also be a :class:`FactoredWorld` — a product of
    factor relations that is never materialized on the hot paths. The
    id attributes listed in :attr:`wild` are *wild* factor columns: a
    ``PAD`` in such a column means the row is in every world of that
    factor (the repair-by-key sum-size encoding). :meth:`plain`
    converts to the joint form — PADs expanded, product materialized —
    for the consumers that genuinely need exact ids.

    States are immutable once built (the lazy conversions above only
    cache), which is what lets the inline backend's result memo share
    one state across repeated executions of the same statement. Memo
    sharing is additionally restricted to states whose :attr:`ids` and
    :attr:`wild` already existed on the input representation — a state
    carrying *freshly minted* world ids (``choice of`` /
    ``repair by key``) is never memoized, so replaying a memo entry
    can never collide with ids minted later.
    """

    __slots__ = ("_answer", "ids", "_world", "wild", "_plain_state")

    def __init__(
        self,
        answer: "Relation | ColumnarRelation",
        ids: tuple[str, ...],
        world: "Relation | ColumnarRelation | FactoredWorld | None",
        wild: frozenset = frozenset(),
    ) -> None:
        self._answer = answer
        self.ids = ids
        self._world = world
        self.wild = wild
        self._plain_state: "PhysicalState | None" = None

    @property
    def answer(self) -> Relation:
        answer = self._answer
        if not isinstance(answer, Relation):
            answer = self._answer = as_tuple(answer)
        return answer

    @property
    def world(self) -> Relation | None:
        world = self._world
        if isinstance(world, FactoredWorld):
            # Product-sized by definition; the factored structure stays
            # on _world so succinctness-aware consumers keep seeing it.
            return world.materialize()
        if world is not None and not isinstance(world, Relation):
            world = self._world = as_tuple(world)
        return world

    def value_attributes(self) -> tuple[str, ...]:
        ids = set(self.ids)
        return tuple(a for a in self._answer.schema if a not in ids)

    def world_or_unit(self) -> Relation:
        return self.world if self._world is not None else Relation.unit()

    def _world_or_unit_any(self) -> "Relation | ColumnarRelation":
        """The world table without forcing a kernel conversion."""
        return self._world if self._world is not None else Relation.unit()

    def plain(self) -> "PhysicalState":
        """The joint-id form of this state (cached).

        Wild PAD patterns expand over their factors' domains and a
        factored world materializes into the joint product — the
        explicit escape hatch out of the sum-size encoding, used by
        decoding and by operators whose semantics need exact ids.
        """
        if not self.wild and not isinstance(self._world, FactoredWorld):
            return self
        cached = self._plain_state
        if cached is not None:
            return cached
        world = self._world
        answer = self._answer
        if self.wild:
            assert isinstance(world, FactoredWorld)
            domains = world.attr_domains()
            attrs = answer.schema.attributes
            wild_pos = tuple(i for i, a in enumerate(attrs) if a in self.wild)
            rows: dict[tuple, None] = {}
            for row in tuples_of(answer, attrs):
                pads = [i for i in wild_pos if row[i] is PAD]
                if not pads:
                    rows[row] = None
                    continue
                for combo in _cartesian(*(domains[attrs[i]] for i in pads)):
                    filled = list(row)
                    for i, v in zip(pads, combo):
                        filled[i] = v
                    rows[tuple(filled)] = None
            answer = Relation._raw(Schema(attrs), list(rows))
        if isinstance(world, FactoredWorld):
            world = world.materialize()
        cached = PhysicalState(answer, self.ids, world)
        self._plain_state = cached
        return cached

    def answers_by_world(self) -> dict[tuple, Relation]:
        """Decode: the answer relation per world id (empty worlds kept)."""
        state = self.plain()
        if state is not self:
            return state.answers_by_world()
        values = self.value_attributes()
        answer = self._answer
        if not self.ids:
            return {(): as_tuple(answer.project(values))}
        grouped: dict[tuple, set[tuple]] = {
            row: set() for row in tuples_of(self._world_or_unit_any(), self.ids)
        }
        for world_id, value in zip(
            tuples_of(answer, self.ids), tuples_of(answer, values)
        ):
            bucket = grouped.get(world_id)
            if bucket is None:
                grouped[world_id] = {value}
            else:
                bucket.add(value)
        schema = Schema(values)
        return {
            world_id: Relation._raw(schema, frozenset(rows))
            for world_id, rows in grouped.items()
        }


class PhysicalEvaluator:
    """Evaluates world-set algebra directly over an inlined database.

    By default the database is a *complete* database (a single implicit
    world). Passing *base_ids* and *base_world* seeds the evaluation
    with an existing inlined world-set instead: every base table is then
    expected to already carry the *base_ids* columns, and base-relation
    states start from the given world table — this is how the
    :class:`repro.backend.InlineBackend` evaluates statements against a
    session whose state has already split into worlds. *counter_start*
    offsets the fresh world-id counter so that ids minted by earlier
    statements are never reused. *kernel* selects the relation engine
    (``"columnar"`` or ``"tuple"``; None reads ``REPRO_KERNEL``).
    """

    def __init__(
        self,
        database: Database,
        schemas: SchemaLike | None = None,
        max_worlds: int | None = None,
        base_ids: Sequence[str] = (),
        base_world: "Relation | FactoredWorld | None" = None,
        counter_start: int = 0,
        kernel: str | None = None,
        base_wild: Iterable[str] = (),
    ) -> None:
        self.database = database
        self.env = _schema_env(schemas or database.schemas())
        self.max_worlds = max_worlds
        self.base_ids = tuple(base_ids)
        self.base_world = base_world if self.base_ids else None
        self.base_wild = frozenset(base_wild)
        ops = kernel_ops(kernel)
        self.kernel = ops.name
        self._convert = ops.convert
        self._from_distinct_rows = ops.from_distinct_rows
        self._counter = counter_start
        self._world_projections: dict[tuple[str, ...], KernelRelation] = {}

    def _fresh(self) -> int:
        self._counter += 1
        return self._counter

    def _plain(self, state: PhysicalState) -> PhysicalState:
        """*state* in joint-id form, relations in this evaluator's kernel."""
        plain = state.plain()
        if plain is state:
            return state
        world = plain._world
        return PhysicalState(
            self._convert(plain._answer),
            plain.ids,
            self._convert(world) if world is not None else None,
        )

    def _guard(self, world: "Relation | ColumnarRelation | None") -> None:
        if (
            self.max_worlds is not None
            and world is not None
            and len(world) > self.max_worlds
        ):
            raise WorldLimitError(
                f"physical evaluation exceeded {self.max_worlds} worlds"
            )

    def _relation(self, attributes: Sequence[str], rows) -> "Relation | ColumnarRelation":
        """Build a kernel relation from *distinct* aligned row tuples."""
        return self._from_distinct_rows(Schema(tuple(attributes)), rows)

    def _unit(self) -> "Relation | ColumnarRelation":
        return kernel_unit(self.kernel)

    # -- entry points ------------------------------------------------------------

    def evaluate(self, query: WSAQuery) -> PhysicalState:
        """Evaluate *query*; the state exposes per-world answers."""
        query.attributes(self.env)
        lowered = lower_query(query, self.env)
        return self._eval(lowered)

    def answer(self, query: WSAQuery) -> Relation:
        """The unique answer of a query whose result is world-uniform."""
        state = self.evaluate(query)
        if state.ids:
            raise TranslationError(
                "the answer varies across worlds; use evaluate() instead"
            )
        return state.answer

    # -- the operators, physically -----------------------------------------------------

    def _base_state(self, name: str) -> PhysicalState:
        """A base table under the lazy interpretation: a table carries
        only the id attributes it depends on; its world table is the
        projection of the session world table onto those ids."""
        table = self._convert(self.database[name])
        schema = table.schema.as_set()
        ids = tuple(a for a in self.base_ids if a in schema)
        if not ids:
            return PhysicalState(table, (), None)
        world = self._world_projections.get(ids)
        if world is None:
            assert self.base_world is not None
            base = self.base_world
            if isinstance(base, FactoredWorld):
                world = base if set(ids) == set(base.ids) else base.project(ids)
            else:
                base = self._convert(base)
                world = base if ids == self.base_ids else base.project(ids)
            self._world_projections[ids] = world
        wild = self.base_wild.intersection(ids)
        return PhysicalState(table, ids, world, wild)

    def _eval(self, query: WSAQuery) -> PhysicalState:
        if isinstance(query, Rel):
            return self._base_state(query.name)
        if isinstance(query, Select):
            if isinstance(query.child, Product):
                return self._eval_filtered_product(query)
            state = self._eval(query.child)
            # Predicates only see value attributes, so a wild pattern
            # row filters as one unit — the verdict is world-uniform.
            return PhysicalState(
                state._answer.select(query.predicate),
                state.ids,
                state._world,
                state.wild,
            )
        if isinstance(query, Project):
            state = self._eval(query.child)
            return PhysicalState(
                state._answer.project(query.attrs + state.ids),
                state.ids,
                state._world,
                state.wild,
            )
        if isinstance(query, Rename):
            state = self._eval(query.child)
            return PhysicalState(
                state._answer.rename(query.mapping),
                state.ids,
                state._world,
                state.wild,
            )
        if isinstance(query, ChoiceOf):
            return self._eval_choice(query)
        if isinstance(query, Poss):
            state = self._eval(query.child)
            return PhysicalState(
                state._answer.project(state.value_attributes()), (), None
            )
        if isinstance(query, Cert):
            return self._eval_cert(query)
        if isinstance(query, (PossGroup, CertGroup)):
            return self._eval_group(query)
        if isinstance(query, (PossGroupKey, CertGroupKey)):
            return self._eval_group_keyed(query)
        if isinstance(query, Aggregate):
            return self._eval_aggregate(query)
        if isinstance(query, (SemiJoin, AntiJoin)):
            return self._eval_semijoin(query)
        if isinstance(query, PadJoin):
            return self._eval_pad_join(query)
        if isinstance(query, (Product, Union, Intersect, Difference)):
            return self._eval_binary(query)
        if isinstance(query, RepairByKey):
            return self._eval_repair(query)
        if isinstance(query, ActiveDomain):
            raise TranslationError("active-domain relations are not supported")
        raise TranslationError(f"no physical operator for {type(query).__name__}")

    def _eval_cert(self, query: Cert) -> PhysicalState:
        """cert by group counting instead of generic division.

        The answer schema is exactly U ∪ V and rows are a set, so for a
        fixed U-part every row contributes a distinct world id; since
        answer ids always lie in the world table (the representation
        invariant), a U-value is certain iff its group has |W| rows —
        one C-speed counting pass over the value column slice, no
        per-group id-set materialization.

        Over a factored world the division never touches the joint
        domain: a value is certain iff an all-PAD row covers it or one
        factor's choice set for it is the whole factor — a product of
        per-factor checks (see :func:`factored_certain_rows`).
        """
        state = self._eval(query.child)
        if not state.ids:
            return state
        if _factored_or_wild(state):
            certain = factored_certain_rows(state)
            if certain is not None:
                return PhysicalState(
                    self._relation(state.value_attributes(), certain), (), None
                )
            state = self._plain(state)
        values = state.value_attributes()
        need = len(state._world) if state._world is not None else 1
        answer = state._answer
        if isinstance(answer, ArrayRelation):
            # One bincount / np.unique pass over the factorized codes.
            rows = answer.certain_rows(values, need)
        elif len(values) == 1 and isinstance(answer, ColumnarRelation):
            # Count the bare column — no 1-tuple per row.
            counts = Counter(answer.column_values(values[0]))
            rows = [(value,) for value, count in counts.items() if count == need]
        else:
            counts = Counter(tuples_of(answer, values))
            rows = [value for value, count in counts.items() if count == need]
        return PhysicalState(self._relation(values, rows), (), None)

    def _eval_choice(self, query: ChoiceOf) -> PhysicalState:
        state = self._plain(self._eval(query.child))
        n = self._fresh()
        mapping = {a: f"${a}#{n}" for a in query.attrs}
        extended = state._answer
        for attr in query.attrs:
            extended = extended.copy_attribute(attr, mapping[attr])
        choices = state._answer.project(state.ids + query.attrs).rename(mapping)
        world = state._world if state._world is not None else self._unit()
        world = world.left_outer_join_padded(choices)
        self._guard(world)
        return PhysicalState(
            extended, state.ids + tuple(mapping[a] for a in query.attrs), world
        )

    def _eval_group(self, query: PossGroup | CertGroup) -> PhysicalState:
        state = self._plain(self._eval(query.child))
        if not state.ids:
            return PhysicalState(
                state._answer.project(query.proj_attrs), (), None
            )
        answer = state._answer

        # One pass: per world, its group fingerprint and projected rows.
        per_world_groups: dict[tuple, set[tuple]] = {}
        per_world_rows: dict[tuple, set[tuple]] = {}
        for world_id, group_row, proj_row in zip(
            tuples_of(answer, state.ids),
            tuples_of(answer, query.group_attrs),
            tuples_of(answer, query.proj_attrs),
        ):
            groups = per_world_groups.get(world_id)
            if groups is None:
                per_world_groups[world_id] = {group_row}
                per_world_rows[world_id] = {proj_row}
            else:
                groups.add(group_row)
                per_world_rows[world_id].add(proj_row)

        # Hash worlds by fingerprint, fold their projections per group.
        certain = isinstance(query, CertGroup)
        folded: dict[frozenset, set[tuple] | None] = {}
        members: dict[tuple, frozenset] = {}
        for world_id, fingerprint_rows in per_world_groups.items():
            fingerprint = frozenset(fingerprint_rows)
            members[world_id] = fingerprint
            rows = per_world_rows[world_id]
            if fingerprint not in folded:
                folded[fingerprint] = set(rows)
            elif certain:
                folded[fingerprint] &= rows  # type: ignore[operator]
            else:
                folded[fingerprint] |= rows  # type: ignore[operator]

        out_rows = []
        for world_id, fingerprint in members.items():
            for value in folded[fingerprint] or ():
                out_rows.append(value + world_id)
        answer = self._relation(query.proj_attrs + state.ids, out_rows)
        return PhysicalState(answer, state.ids, state._world)

    def _eval_aggregate(self, query: Aggregate) -> PhysicalState:
        """Per-world SQL aggregation, flat: group on world ids + U.

        The world-id attributes simply join the user's grouping key, so
        all worlds aggregate in one vectorized kernel pass over the flat
        answer table — never one pass per world. A *global* aggregate
        (U = ∅) must produce one row in every world, including worlds
        whose answer is empty: those are padded with the empty-group
        defaults from the world table.
        """
        state = self._plain(self._eval(query.child))
        keys = query.group_attrs + state.ids
        answer = state._answer.aggregate_by(keys, query.specs)
        if not query.group_attrs and state.ids:
            missing = missing_group_rows(
                answer, state.ids, query.specs, state._world_or_unit_any()
            )
            if missing:
                answer = answer.union(
                    self._relation(answer.schema.attributes, missing)
                )
        return PhysicalState(answer, state.ids, state._world)

    def _eval_semijoin(self, query: SemiJoin | AntiJoin) -> PhysicalState:
        """⋉_φ / ▷_φ as hash passes — decorrelated condition subqueries.

        The equality conjuncts of φ become hash-join keys next to the
        shared world-id attributes; the matched pairs project back onto
        the left schema (plus the right operand's extra world ids, on
        which the verdict depends). The antijoin complements against
        the left answer replicated over the right-only world ids — the
        honest output size of ``not in`` over a world-splitting
        subquery, still polynomial in the representation.
        """
        left = self._eval(query.left)
        right = self._eval(query.right)
        # Wild pattern rows join/filter per row with a world-uniform
        # verdict as long as the two operands constrain disjoint
        # factors; the antijoin's complement additionally replicates
        # over right-only ids, which patterns cannot express.
        if _pair_needs_joint(
            left, right, right_extra_ok=isinstance(query, SemiJoin)
        ):
            left, right = self._plain(left), self._plain(right)
        ids, world = self._combine(left, right)
        joined = self._fused_hash_join(query.predicate, left._answer, right._answer)
        right_extra = tuple(v for v in right.ids if v not in set(left.ids))
        keep = left._answer.schema.attributes + right_extra
        matched = joined.project(keep)
        if isinstance(query, SemiJoin):
            return PhysicalState(matched, ids, world, left.wild | right.wild)
        if right_extra:
            assert world is not None
            base = left._answer.natural_join(world.project(left.ids + right_extra))
        else:
            base = left._answer
        return PhysicalState(base.difference(matched), ids, world, left.wild)

    def _eval_pad_join(self, query: PadJoin) -> PhysicalState:
        """=⊳⊲ on the flat tables: one outer-join pass, worlds included.

        The shared world-id attributes join next to the shared value
        attributes, so left rows pad per world exactly when that world's
        right answer misses them. Right-only world ids (a splitting
        right operand) replicate the left answer over the combined world
        table first, keeping the padding per combined world.
        """
        left = self._eval(query.left)
        right = self._eval(query.right)
        # Padding a wild left row is per-row uniform only when the
        # right operand is world-uniform (no replication involved).
        if _pair_needs_joint(left, right, right_extra_ok=False):
            left, right = self._plain(left), self._plain(right)
        ids, world = self._combine(left, right)
        left_answer = left._answer
        right_extra = tuple(v for v in right.ids if v not in set(left.ids))
        if right_extra:
            assert world is not None
            left_answer = left_answer.natural_join(world)
        answer = left_answer.left_outer_join_padded(right._answer)
        return PhysicalState(answer, ids, world, left.wild)

    def _eval_group_keyed(self, query: PossGroupKey | CertGroupKey) -> PhysicalState:
        """pγ^V_K / cγ^V_K: fingerprints come from the key query's answer.

        One pass over each flat answer builds per-world row sets; the
        combined world table then pairs every child world with its key
        answer, so worlds whose child answer is empty still join the
        group their key rows name (an attribute-keyed grouping never
        needs this — its empty worlds fingerprint to ∅ on their own).
        """
        child = self._plain(self._eval(query.child))
        key = self._plain(self._eval(query.key))
        ids, world = self._combine(child, key)
        if not ids:
            return PhysicalState(
                child._answer.project(query.proj_attrs), (), None
            )

        child_rows: dict[tuple, set[tuple]] = {}
        for world_id, row in zip(
            tuples_of(child._answer, child.ids),
            tuples_of(child._answer, query.proj_attrs),
        ):
            bucket = child_rows.get(world_id)
            if bucket is None:
                child_rows[world_id] = {row}
            else:
                bucket.add(row)
        key_value_attrs = tuple(
            a for a in key._answer.schema if a not in set(key.ids)
        )
        key_rows: dict[tuple, set[tuple]] = {}
        for world_id, row in zip(
            tuples_of(key._answer, key.ids),
            tuples_of(key._answer, key_value_attrs),
        ):
            bucket = key_rows.get(world_id)
            if bucket is None:
                key_rows[world_id] = {row}
            else:
                bucket.add(row)

        world_table = world if world is not None else self._unit()
        child_positions = tuple(ids.index(a) for a in child.ids)
        key_positions = tuple(ids.index(a) for a in key.ids)
        certain = isinstance(query, CertGroupKey)
        empty: frozenset = frozenset()
        members: list[tuple[tuple, frozenset]] = []
        folded: dict[frozenset, set[tuple]] = {}
        for combined_id in tuples_of(world_table, ids):
            child_id = tuple(combined_id[p] for p in child_positions)
            key_id = tuple(combined_id[p] for p in key_positions)
            fingerprint = frozenset(key_rows.get(key_id, empty))
            rows = child_rows.get(child_id, empty)
            members.append((combined_id, fingerprint))
            if fingerprint not in folded:
                folded[fingerprint] = set(rows)
            elif certain:
                folded[fingerprint] &= rows
            else:
                folded[fingerprint] |= rows

        out_rows = [
            value + combined_id
            for combined_id, fingerprint in members
            for value in folded[fingerprint]
        ]
        answer = self._relation(query.proj_attrs + ids, out_rows)
        return PhysicalState(answer, ids, world)

    def _combine(
        self, left: PhysicalState, right: PhysicalState
    ) -> tuple[tuple[str, ...], "Relation | ColumnarRelation | None"]:
        """The combined id attributes and world table of a binary node.

        When either operand is factored (disjoint id sets — callers
        de-wild overlapping pairs first), the combination stays
        factored: the other operand's world simply joins the factor
        list, so the product is still never materialized.
        """
        ids = left.ids + tuple(v for v in right.ids if v not in set(left.ids))
        left_world = left._world
        right_world = right._world
        if left_world is None:
            world = right_world
        elif right_world is None:
            world = left_world
        elif isinstance(left_world, FactoredWorld) or isinstance(
            right_world, FactoredWorld
        ):
            world = FactoredWorld(
                (
                    left_world.factors
                    if isinstance(left_world, FactoredWorld)
                    else (as_tuple(left_world),)
                )
                + (
                    right_world.factors
                    if isinstance(right_world, FactoredWorld)
                    else (as_tuple(right_world),)
                )
            )
        else:
            world = left_world.natural_join(right_world)
        self._guard(world)
        return ids, world

    @staticmethod
    def _fused_hash_join(
        predicate: Predicate,
        left_answer: "Relation | ColumnarRelation",
        right_answer: "Relation | ColumnarRelation",
    ) -> "Relation | ColumnarRelation":
        """σ_φ over a world-paired operand pair as one hash join.

        The cross-schema equality conjuncts of φ become hash-join keys
        next to the shared attributes (the world ids); the remaining
        conjuncts filter the (much smaller) join output. Shared by the
        σ_{eq}(R × S) fusion and the semijoin/antijoin operators.
        """
        left_schema = left_answer.schema
        right_schema = right_answer.schema
        left_only = left_schema.as_set() - right_schema.as_set()
        right_only = right_schema.as_set() - left_schema.as_set()
        pairs: list[tuple[str, str]] = []
        residual: list[Predicate] = []
        for conjunct in _split_conjuncts(predicate):
            equalities = conjunct.equality_pairs()
            if equalities is not None and len(equalities) == 1:
                a, b = equalities[0]
                if a in left_only and b in right_only:
                    pairs.append((a, b))
                    continue
                if b in left_only and a in right_only:
                    pairs.append((b, a))
                    continue
            residual.append(conjunct)
        shared = left_schema.common(right_schema)
        joined = left_answer.join_on(right_answer, [(a, a) for a in shared] + pairs)
        if residual:
            joined = joined.select(conjunction(residual))
        return joined

    def _eval_filtered_product(self, query: Select) -> PhysicalState:
        """σ_φ(R × S) fused into one hash join (never the product).

        This is what keeps self-join-with-correlation scripts (the
        paper's business acquisition scenario) polynomial in practice —
        the product of two world-id-heavy tables is quadratic in the
        representation.
        """
        product = query.child
        left = self._eval(product.children()[0])
        right = self._eval(product.children()[1])
        if _pair_needs_joint(left, right, right_extra_ok=True):
            left, right = self._plain(left), self._plain(right)
        ids, world = self._combine(left, right)
        answer = self._fused_hash_join(query.predicate, left._answer, right._answer)
        return PhysicalState(answer, ids, world, left.wild | right.wild)

    def _eval_binary(self, query: WSAQuery) -> PhysicalState:
        left = self._eval(query.children()[0])
        right = self._eval(query.children()[1])
        if isinstance(query, Product):
            # Pattern rows pair row-by-row, so a product of operands
            # over disjoint factors keeps both sides' wildcards.
            if _pair_needs_joint(left, right, right_extra_ok=True):
                left, right = self._plain(left), self._plain(right)
            ids, world = self._combine(left, right)
            return PhysicalState(
                left._answer.natural_join(right._answer),
                ids,
                world,
                left.wild | right.wild,
            )
        # Set operations align whole rows across operands — PAD
        # wildcards and exact ids must not meet, so both sides go joint.
        if _factored_or_wild(left) or _factored_or_wild(right):
            left, right = self._plain(left), self._plain(right)
        ids, world = self._combine(left, right)
        left_answer = left._answer
        right_answer = right._answer
        left_extra = tuple(v for v in right.ids if v not in set(left.ids))
        right_extra = tuple(v for v in left.ids if v not in set(right.ids))
        if left_extra and right._world is not None:
            left_answer = left_answer.natural_join(right._world)
        if right_extra and left._world is not None:
            right_answer = right_answer.natural_join(left._world)
        operations = {
            Union: lambda a, b: a.union(b),
            Intersect: lambda a, b: a.intersection(b),
            Difference: lambda a, b: a.difference(b),
        }
        operation = operations[type(query)]
        return PhysicalState(operation(left_answer, right_answer), ids, world)

    def _eval_repair(self, query: RepairByKey) -> PhysicalState:
        """Repair-by-key over inlined worlds — beyond the RA translation.

        A world-uniform child takes the factored route: one fresh id
        column *per violating key group*, PAD-wildcarded elsewhere, so
        the repaired table is Σ-of-group-sizes rows and the world table
        is a product of per-group factors (:class:`FactoredWorld`) —
        never the ∏-sized joint table the one-joint-id encoding mints.

        A world-splitting child falls back to the joint encoding: a
        single fresh id attribute numbers the repairs within each
        world; the world table pairs every old world id with its repair
        indices (PAD for worlds whose answer is empty).
        """
        state = self._eval(query.child)
        if not state.ids and state._world is None:
            return self._eval_repair_factored(query, state)
        state = self._plain(state)
        repair_attr = f"$repair#{self._fresh()}"
        answer = state._answer
        key_positions = answer.schema.indices(query.attrs)

        per_world: dict[tuple, list[tuple]] = {
            row: [] for row in tuples_of(state._world_or_unit_any(), state.ids)
        }
        for world_id, row in zip(tuples_of(answer, state.ids), iter(answer)):
            bucket = per_world.get(world_id)
            if bucket is None:
                per_world[world_id] = [row]
            else:
                bucket.append(row)

        out_rows: list[tuple] = []
        world_rows: list[tuple] = []
        total = 0
        for world_id, rows in per_world.items():
            count = 0
            for index, repair in enumerate(repairs_of_rows(rows, key_positions)):
                count += 1
                world_rows.append(world_id + (index,))
                out_rows.extend(row + (index,) for row in repair)
            if count == 0:
                world_rows.append(world_id + (PAD,))
            total += max(count, 1)
            if self.max_worlds is not None and total > self.max_worlds:
                raise WorldLimitError(
                    f"repair-by-key exceeded {self.max_worlds} worlds"
                )
        new_answer = self._relation(
            answer.schema.attributes + (repair_attr,), out_rows
        )
        world = self._relation(state.ids + (repair_attr,), world_rows)
        return PhysicalState(new_answer, state.ids + (repair_attr,), world)

    def _eval_repair_factored(
        self, query: RepairByKey, state: PhysicalState
    ) -> PhysicalState:
        """The sum-size repair encoding for a world-uniform child.

        Every violating key group (two or more candidates) gets its own
        fresh wild id column and a single-attribute factor numbering
        its candidates; a candidate row carries its choice index in its
        group's column and PAD (the every-world wildcard) in all other
        fresh columns, and rows with unique keys stay all-PAD. A child
        with no violating groups has exactly one repair — itself — and
        passes through unchanged.
        """
        answer = state._answer
        key_positions = answer.schema.indices(query.attrs)
        base, violating = factored_repair_groups(list(iter(answer)), key_positions)
        if not violating:
            return state
        fresh_attrs: list[str] = []
        factor_relations: list[Relation] = []
        total = 1
        for group in violating:
            attr = f"$repair#{self._fresh()}"
            total *= len(group)
            if self.max_worlds is not None and total > self.max_worlds:
                raise WorldLimitError(
                    f"repair-by-key exceeded {self.max_worlds} worlds"
                )
            fresh_attrs.append(attr)
            factor_relations.append(
                Relation._raw(
                    Schema((attr,)), [(i,) for i in range(len(group))]
                )
            )
        pad = [PAD] * len(fresh_attrs)
        out_rows: list[tuple] = [row + tuple(pad) for row in base]
        for position, group in enumerate(violating):
            for index, row in enumerate(group):
                suffix = list(pad)
                suffix[position] = index
                out_rows.append(row + tuple(suffix))
        new_attrs = tuple(fresh_attrs)
        new_answer = self._relation(
            answer.schema.attributes + new_attrs, out_rows
        )
        return PhysicalState(
            new_answer,
            new_attrs,
            FactoredWorld(factor_relations),
            frozenset(new_attrs),
        )


def _factored_or_wild(state: PhysicalState) -> bool:
    """Does *state* carry the succinct factored/wild encoding?"""
    return bool(state.wild) or isinstance(state._world, FactoredWorld)


def _pair_needs_joint(
    left: PhysicalState, right: PhysicalState, right_extra_ok: bool
) -> bool:
    """Must a two-operand node expand its operands to joint ids?

    Pass-through is sound only when the operands constrain *disjoint*
    factors (a shared wild column would be compared literally — PAD
    against a concrete choice — instead of by world overlap), and, for
    operators that replicate the left answer over right-only ids, only
    when the right operand brings no ids at all.
    """
    if not (_factored_or_wild(left) or _factored_or_wild(right)):
        return False
    if set(left.ids) & set(right.ids):
        return True
    if not right_extra_ok and right.ids:
        return True
    return False


def factored_certain_rows(state: PhysicalState) -> set | None:
    """The certain value rows of a wild factored state, or ``None``.

    The factored division rule: a value row is certain iff an all-PAD
    row covers it (every world of every factor), or some factor's
    choice set for it is that factor's whole domain — the complement
    ∏_j (D_j ∖ S_j) of covering worlds is empty exactly then. Applies
    when every id attribute is a wild single-attribute factor and every
    stored row constrains at most one factor (the repair-by-key shape);
    anything else returns ``None`` and the caller falls back to the
    joint division.
    """
    world = state._world
    if not isinstance(world, FactoredWorld) or not state.ids:
        return None
    factors = world.factors
    if any(len(f.schema.attributes) != 1 for f in factors):
        return None
    attrs = tuple(f.schema.attributes[0] for f in factors)
    if set(attrs) != set(state.ids) or not set(state.ids) <= state.wild:
        return None
    index = {a: j for j, a in enumerate(attrs)}
    domain_sizes = [len(f) for f in factors]
    values = state.value_attributes()
    positions = [index[a] for a in state.ids]
    certain: set = set()
    constrained: dict[tuple, dict[int, set]] = {}
    for value, id_part in zip(
        tuples_of(state._answer, values), tuples_of(state._answer, state.ids)
    ):
        hits = [
            (positions[i], v) for i, v in enumerate(id_part) if v is not PAD
        ]
        if not hits:
            certain.add(value)
        elif len(hits) > 1:
            return None
        else:
            j, choice = hits[0]
            constrained.setdefault(value, {}).setdefault(j, set()).add(choice)
    for value, per_factor in constrained.items():
        if value in certain:
            continue
        if any(
            len(chosen) == domain_sizes[j] for j, chosen in per_factor.items()
        ):
            certain.add(value)
    return certain


def physical_answer(
    query: WSAQuery,
    database: Database,
    max_worlds: int | None = None,
    kernel: str | None = None,
) -> Relation:
    """Evaluate a world-uniform query with the physical operators."""
    return PhysicalEvaluator(database, max_worlds=max_worlds, kernel=kernel).answer(
        query
    )


def evaluate_seeded(
    query: WSAQuery,
    representation: "InlinedRepresentation",
    max_worlds: int | None = None,
    counter_start: int = 0,
    kernel: str | None = None,
) -> tuple[PhysicalState, int]:
    """Evaluate *query* over an inlined world-set (not a single world).

    Returns the final state plus the fresh-id counter value, so a
    session can keep minting collision-free world ids across statements.
    """
    from repro.inline.representation import InlinedRepresentation  # noqa: F401

    schemas = {
        name: representation.value_attributes(name)
        for name in representation.tables
    }
    evaluator = PhysicalEvaluator(
        representation.tables,
        schemas,
        max_worlds=max_worlds,
        base_ids=representation.id_attrs,
        base_world=representation.world_object(),
        counter_start=counter_start,
        kernel=kernel,
        base_wild=representation.wild_attrs,
    )
    return evaluator.evaluate(query), evaluator._counter


def match_answers_to_session_worlds(
    representation: "InlinedRepresentation", state: PhysicalState
) -> tuple[dict[tuple, list[Relation]], tuple[int, ...]]:
    """Group per-world answers by the world-id attributes shared with
    the session. Returns the grouping plus the positions of the shared
    attributes within a *session* world id, so callers can pair every
    session world with the answers agreeing with it."""
    answers = state.answers_by_world()
    session_ids = representation.id_attrs
    state_id_set = set(state.ids)
    shared = tuple(a for a in session_ids if a in state_id_set)
    shared_in_state = tuple(state.ids.index(a) for a in shared)
    shared_in_session = tuple(session_ids.index(a) for a in shared)

    by_shared: dict[tuple, list[Relation]] = {}
    for world_id, answer_relation in answers.items():
        key = tuple(world_id[p] for p in shared_in_state)
        by_shared.setdefault(key, []).append(answer_relation)
    return by_shared, shared_in_session


def decode_extension(
    representation: "InlinedRepresentation", state: PhysicalState, name: str
):
    """Decode ⟦q⟧(A): the base world-set extended with *state*'s answer.

    Mirrors the Figure 3 semantics output: every base world is paired
    with the per-world answers agreeing with it on the shared world-id
    attributes (fresh ids minted during the query fan a base world out
    into several result worlds; equal results collapse by set
    semantics). Worlds are decoded lazily from the flat tables — this is
    the only place the inline evaluation route materializes worlds, and
    it runs only when a caller asks for explicit worlds.
    """
    from repro.relational.schema import Schema
    from repro.worlds.worldset import WorldSet

    by_shared, shared_in_session = match_answers_to_session_worlds(
        representation, state
    )

    worlds = []
    for session_world_id in representation.world_ids():
        key = tuple(session_world_id[p] for p in shared_in_session)
        base_world = representation.world(session_world_id)
        for answer_relation in by_shared.get(key, ()):
            worlds.append(base_world.extend(name, answer_relation))

    signature = tuple(
        (table, Schema(representation.value_attributes(table)))
        for table in representation.tables
    ) + ((name, Schema(state.value_attributes())),)
    return WorldSet(worlds, signature)
