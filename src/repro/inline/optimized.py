"""Optimized translation for complete-to-complete queries (Section 5.3).

The general translation of Figure 6 eagerly maintains the world table W
and copies every relation into every new world. For 1↦1 queries this is
wasteful; Section 5.3 observes that

* the world table is only needed by ``cert`` and the binary operators,
  so it can be computed *on demand* from the choices that created the
  worlds (``χ_A(R)`` contributes ``π_A(R)``, a binary operator combines
  the tables of its operands);
* a table with **no** world-id attributes encodes a relation present in
  *all* worlds, so base relations never need to be copied; two tables
  with different id sets encode the product of their world sets.

Under this interpretation a pure relational algebra query translates to
itself, and Example 5.8's query becomes

    π_{Arr,Dep}(HFlights) ÷ π_{Dep}(HFlights)

after the :mod:`repro.relational.simplify` pass.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import TranslationError, TypingError
from repro.core.ast import (
    ActiveDomain,
    Cert,
    CertGroup,
    ChoiceOf,
    Difference,
    Intersect,
    Poss,
    PossGroup,
    Product,
    Project,
    Rel,
    Rename,
    RepairByKey,
    Select,
    Union,
    WSAQuery,
)
from repro.core.typing import is_complete_to_complete
from repro.inline.translate import SchemaLike, _schema_env, lower_query
from repro.relational import algebra as ra
from repro.relational.database import Database
from repro.relational.predicates import conjunction, eq
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.relational.simplify import simplify


class OptimizedState:
    """A translated subquery under the lazy §5.3 interpretation.

    *answer* computes the inlined answer table; *ids* are its world-id
    attributes (empty = present in all worlds); *world* computes, on
    demand, the table of all world ids created so far along this branch
    (None when no worlds were created). The world expression uses the
    padded outer join so that worlds whose answer became empty keep an
    id (the dummy choice constant).
    """

    __slots__ = ("answer", "ids", "world")

    def __init__(
        self, answer: ra.RAExpr, ids: tuple[str, ...], world: ra.RAExpr | None
    ) -> None:
        self.answer = answer
        self.ids = ids
        self.world = world

    def world_or_unit(self) -> ra.RAExpr:
        return self.world if self.world is not None else ra.Literal(Relation.unit())


class OptimizedTranslator:
    """Implements the lazy complete-to-complete translation of §5.3."""

    def __init__(self, value_schemas: SchemaLike, assume_nonempty: bool = False) -> None:
        self.env = _schema_env(value_schemas)
        self.assume_nonempty = assume_nonempty
        self._counter = 0

    def _fresh(self) -> int:
        self._counter += 1
        return self._counter

    # -- entry point --------------------------------------------------------------

    def translate(self, query: WSAQuery) -> ra.RAExpr:
        """The equivalent RA query of a 1↦1 query, simplified."""
        if not is_complete_to_complete(query):
            raise TypingError(
                "the optimized translation applies to 1↦1 "
                "(complete-to-complete) queries only"
            )
        query.attributes(self.env)
        lowered = lower_query(query, self.env)
        state = self._translate(lowered)
        final = ra.Project(query.attributes(self.env), state.answer)
        return simplify(final, {name: schema for name, schema in self.env.items()})

    # -- the translation, by case ----------------------------------------------------

    def _translate(self, query: WSAQuery) -> OptimizedState:
        if isinstance(query, Rel):
            return OptimizedState(ra.Table(query.name), (), None)
        if isinstance(query, Select):
            state = self._translate(query.child)
            return OptimizedState(
                ra.Select(query.predicate, state.answer), state.ids, state.world
            )
        if isinstance(query, Project):
            state = self._translate(query.child)
            return OptimizedState(
                ra.Project(query.attrs + state.ids, state.answer),
                state.ids,
                state.world,
            )
        if isinstance(query, Rename):
            state = self._translate(query.child)
            return OptimizedState(
                ra.Rename(query.mapping, state.answer), state.ids, state.world
            )
        if isinstance(query, ChoiceOf):
            return self._translate_choice(query)
        if isinstance(query, Poss):
            state = self._translate(query.child)
            values = self._value_attrs(state)
            return OptimizedState(ra.Project(values, state.answer), (), None)
        if isinstance(query, Cert):
            state = self._translate(query.child)
            if not state.ids:
                return OptimizedState(state.answer, (), None)
            world = state.world_or_unit()
            # Cosmetic mode reproducing the paper's Example 5.8 verbatim:
            # drop the empty-choice pad from the divisor. This is exact
            # whenever translator-generated answers carry ids copied
            # from the same choice source (see module docstring); the
            # default keeps the pad and is exact unconditionally.
            if (
                self.assume_nonempty
                and isinstance(world, ra.OuterJoinPad)
                and isinstance(world.left, ra.Literal)
                and not world.left.relation.schema
            ):
                world = world.right
            divided = ra.Divide(state.answer, world)
            return OptimizedState(divided, (), None)
        if isinstance(query, (PossGroup, CertGroup)):
            return self._translate_group(query)
        if isinstance(query, (Product, Union, Intersect, Difference)):
            return self._translate_binary(query)
        if isinstance(query, RepairByKey):
            raise TranslationError(
                "repair-by-key exceeds relational algebra (Proposition 4.2)"
            )
        if isinstance(query, ActiveDomain):
            raise TranslationError("active-domain relations are not translated")
        raise TranslationError(f"untranslatable node {type(query).__name__}")

    def _value_attrs(self, state: OptimizedState) -> tuple[str, ...]:
        schema = state.answer.schema(self._ra_env())
        ids = set(state.ids)
        return tuple(a for a in schema if a not in ids)

    def _ra_env(self) -> dict[str, Schema]:
        return dict(self.env)

    def _translate_choice(self, query: ChoiceOf) -> OptimizedState:
        state = self._translate(query.child)
        n = self._fresh()
        mapping = {a: f"${a}#{n}" for a in query.attrs}
        # The ids created by χ_B: the per-world choice combinations,
        # padded so that empty-answer worlds keep a (dummy) id.
        choices = ra.Rename(
            mapping, ra.Project(state.ids + query.attrs, state.answer)
        )
        world = ra.OuterJoinPad(state.world_or_unit(), choices)
        extended = state.answer
        for attr in query.attrs:
            extended = ra.CopyAttr(attr, mapping[attr], extended)
        return OptimizedState(
            extended, state.ids + tuple(mapping[a] for a in query.attrs), world
        )

    def _translate_group(self, query: PossGroup | CertGroup) -> OptimizedState:
        state = self._translate(query.child)
        if not state.ids:
            # One world, one group: grouping is the projection π_V.
            return OptimizedState(
                ra.Project(query.proj_attrs, state.answer), (), None
            )
        answer = state.answer
        ids = state.ids
        n = self._fresh()
        group_map = {v: f"$g{n}.{v.lstrip('$')}" for v in ids}
        group_ids = tuple(group_map[v] for v in ids)
        grouping = query.group_attrs
        projection = query.proj_attrs

        by_group = ra.Project(grouping + ids, answer)
        ids_only = ra.Project(ids, answer)
        partners = ra.Rename(group_map, ids_only)
        all_pairs = ra.Product(ids_only, partners)
        primed = {a: f"{a}⋆{n}" for a in grouping}
        partner_values = ra.Rename(
            {**primed, **group_map}, ra.Project(grouping + ids, answer)
        )
        agree = ra.Project(
            grouping + ids + group_ids,
            ra.ThetaJoin(
                conjunction([eq(a, primed[a]) for a in grouping]),
                by_group,
                partner_values,
            )
            if grouping
            else ra.Product(by_group, partner_values),
        )
        missing_left = ra.Project(
            ids + group_ids, ra.Difference(ra.Product(by_group, partners), agree)
        )
        swap = {**group_map, **{g: v for v, g in group_map.items()}}
        missing_right = ra.Rename(swap, missing_left)
        equivalence = ra.Difference(
            ra.Difference(all_pairs, missing_left), missing_right
        )
        grouped = ra.Project(
            projection + ids + group_ids, ra.NaturalJoin(answer, equivalence)
        )
        inverse = {g: v for v, g in group_map.items()}
        candidates = ra.Rename(inverse, ra.Project(projection + group_ids, grouped))
        if isinstance(query, PossGroup):
            return OptimizedState(candidates, ids, state.world)
        candidate_pairs = ra.NaturalJoin(
            ra.Project(projection + group_ids, grouped), equivalence
        )
        missing = ra.Difference(
            ra.Project(projection + ids + group_ids, candidate_pairs),
            ra.Project(projection + ids + group_ids, grouped),
        )
        not_certain = ra.Rename(inverse, ra.Project(projection + group_ids, missing))
        return OptimizedState(
            ra.Difference(candidates, not_certain), ids, state.world
        )

    def _translate_binary(self, query: WSAQuery) -> OptimizedState:
        left = self._translate(query.children()[0])
        right = self._translate(query.children()[1])
        ids = left.ids + tuple(v for v in right.ids if v not in set(left.ids))
        if left.world is None and right.world is None:
            world: ra.RAExpr | None = None
        elif left.world is None:
            world = right.world
        elif right.world is None:
            world = left.world
        else:
            world = ra.NaturalJoin(left.world, right.world)
        if isinstance(query, Product):
            return OptimizedState(
                ra.NaturalJoin(left.answer, right.answer), ids, world
            )
        left_answer = left.answer
        right_answer = right.answer
        # Copy each operand into the worlds the *other* operand created
        # (the "copy on demand" of §5.3), unless no extension is needed.
        left_extra = tuple(v for v in right.ids if v not in set(left.ids))
        right_extra = tuple(v for v in left.ids if v not in set(right.ids))
        if left_extra and right.world is not None:
            left_answer = ra.NaturalJoin(left_answer, right.world)
        if right_extra and left.world is not None:
            right_answer = ra.NaturalJoin(right_answer, left.world)
        operators = {
            Union: ra.Union,
            Intersect: ra.Intersection,
            Difference: ra.Difference,
        }
        operator = operators[type(query)]
        return OptimizedState(operator(left_answer, right_answer), ids, world)


def optimized_ra_query(
    query: WSAQuery, schemas: SchemaLike, assume_nonempty: bool = False
) -> ra.RAExpr:
    """The §5.3 optimized RA query equivalent to a 1↦1 WSA query.

    With ``assume_nonempty=True`` the divisor of a cert translation
    omits the empty-choice pad world, reproducing the compact form the
    paper displays in Example 5.8.
    """
    return OptimizedTranslator(schemas, assume_nonempty=assume_nonempty).translate(query)


def evaluate_optimized(
    query: WSAQuery, database: Database, schemas: SchemaLike | None = None
) -> Relation:
    """Translate with §5.3 and evaluate on the complete database."""
    if schemas is None:
        schemas = database.schemas()
    return optimized_ra_query(query, schemas).evaluate(database)
