"""A factored world table: the product of independent choice factors.

The paper's Section 3 decomposition treats independent choices as
independent dimensions of the world set. A :class:`FactoredWorld` keeps
that structure explicit: it holds one small *factor* relation per
independent choice dimension (disjoint id-attribute sets), and the
world table it stands for is the relational product of the factors —
a world is a point in that product, **never materialized** unless a
consumer genuinely needs the joint table.

``repair by key`` is the canonical producer: each violating key group
becomes its own single-attribute factor whose values number the group's
candidate rows, so a repaired relation with g independent groups of
c_j choices stores Σ c_j factor rows instead of the ∏ c_j joint world
ids the one-joint-id encoding pays (see
:meth:`repro.inline.physical.PhysicalEvaluator._eval_repair`).

Tables over a factored world reference the factor columns directly. A
column registered as *wild* (the repair-minted ones) uses the padding
constant :data:`~repro.relational.pad.PAD` as a wildcard: a row with
PAD in a wild column belongs to **every** world of that factor, and a
row with a concrete value belongs only to the worlds picking it. That
is what keeps a repaired table at sum size — each candidate row is
stored once, tagged only in its own group's column.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.errors import RepresentationError
from repro.relational.columnar import as_tuple, tuples_of
from repro.relational.relation import Relation


class FactoredWorld:
    """A world table as a product of factor relations (disjoint ids).

    Each factor is a non-empty relation over its own id attributes; the
    represented world table is the product of the factors. ``count()``
    is the product of the factor sizes — computed without enumerating a
    single joint world id — and :meth:`materialize` builds (and caches)
    the joint table for the consumers that truly need it (decoding,
    pairing, the strict Definition 5.1 form).
    """

    __slots__ = ("factors", "ids", "_materialized")

    def __init__(self, factors: Sequence[Relation]) -> None:
        factors = tuple(as_tuple(f) for f in factors)
        seen: set[str] = set()
        for factor in factors:
            if not factor:
                raise RepresentationError(
                    "a world factor must be non-empty (an empty world-set "
                    "is an empty joint world table, not an empty factor)"
                )
            attrs = factor.schema.attributes
            overlap = seen.intersection(attrs)
            if overlap:
                raise RepresentationError(
                    f"world factors must have disjoint id attributes; "
                    f"{sorted(overlap)} appear twice"
                )
            seen.update(attrs)
        self.factors = factors
        self.ids: tuple[str, ...] = tuple(
            a for factor in factors for a in factor.schema.attributes
        )
        self._materialized: Relation | None = None

    def count(self) -> int:
        """Number of joint world ids: the product of the factor sizes."""
        count = 1
        for factor in self.factors:
            count *= len(factor)
        return count

    def __len__(self) -> int:
        return self.count()

    def __bool__(self) -> bool:
        return True

    def project(self, ids: Iterable[str]) -> "FactoredWorld":
        """The factored projection onto *ids* — still never a product.

        Factors fully outside *ids* drop (their dimensions are summed
        out); partially covered factors project (and deduplicate) on
        their own.
        """
        wanted = set(ids)
        kept = []
        for factor in self.factors:
            attrs = factor.schema.attributes
            inside = tuple(a for a in attrs if a in wanted)
            if not inside:
                continue
            kept.append(factor if len(inside) == len(attrs) else factor.project(inside))
        return FactoredWorld(kept)

    def materialize(self) -> Relation:
        """The joint world table (cached): the product of the factors."""
        if self._materialized is None:
            if not self.factors:
                self._materialized = Relation.unit()
            else:
                joint = self.factors[0]
                for factor in self.factors[1:]:
                    # Disjoint attributes: the natural join is the product.
                    joint = joint.natural_join(factor)
                self._materialized = joint
        return self._materialized

    def attr_domains(self) -> dict[str, tuple]:
        """Per single-attribute factor, its value domain (wild expansion)."""
        domains: dict[str, tuple] = {}
        for factor in self.factors:
            attrs = factor.schema.attributes
            if len(attrs) == 1:
                domains[attrs[0]] = tuple(
                    row[0] for row in tuples_of(factor, attrs)
                )
        return domains

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{list(f.schema.attributes)}[{len(f)}]" for f in self.factors
        )
        return f"FactoredWorld({parts}; count={self.count()})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FactoredWorld):
            return NotImplemented
        return self.factors == other.factors

    def __hash__(self) -> int:
        return hash(self.factors)
