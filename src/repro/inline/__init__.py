"""Inlined representations and the WSA → RA translations (Section 5)."""

from repro.inline.optimized import (
    OptimizedTranslator,
    evaluate_optimized,
    optimized_ra_query,
)
from repro.inline.pairing import pair_on_inlined, pair_worlds, subset_world_set
from repro.inline.physical import PhysicalEvaluator, PhysicalState, physical_answer
from repro.inline.representation import WORLD_TABLE, InlinedRepresentation
from repro.inline.translate import (
    GeneralTranslation,
    GeneralTranslator,
    apply_general,
    conservative_ra_query,
    lower_query,
    translate_general,
)

__all__ = [
    "GeneralTranslation",
    "GeneralTranslator",
    "InlinedRepresentation",
    "OptimizedTranslator",
    "PhysicalEvaluator",
    "PhysicalState",
    "WORLD_TABLE",
    "physical_answer",
    "apply_general",
    "conservative_ra_query",
    "evaluate_optimized",
    "lower_query",
    "optimized_ra_query",
    "pair_on_inlined",
    "pair_worlds",
    "subset_world_set",
]
