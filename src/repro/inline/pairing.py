"""The world-pairing operation of Section 7.

The paper separates world-set algebra from relational algebra over
inlined representations with the *pairing* query: for each pair of
worlds (I, J) create a world containing R^I and, renamed, R^J. Pairing
is generic and easily expressed over inlined representations (a product
of the table with a renamed copy of itself), but not expressible in
world-set algebra: starting from the world-set of all 2ⁿ subsets of an
n-element relation, pairing yields 2^{2n} worlds, while a fixed WSA
query can only increase the number of worlds polynomially per operator
through choice-of.

This module implements pairing both on explicit world-sets and on
inlined representations, and builds the 2ⁿ-subset witness family.
"""

from __future__ import annotations

import itertools
from typing import Sequence

from repro.errors import RepresentationError
from repro.inline.representation import InlinedRepresentation
from repro.relational.relation import Relation
from repro.worlds.world import World
from repro.worlds.worldset import WorldSet


def pair_worlds(world_set: WorldSet, relation: str, paired_name: str) -> WorldSet:
    """Pairing on explicit world-sets: one world per ordered world pair.

    Every output world holds the original relations of world I plus,
    under *paired_name* with renamed attributes, relation *relation* of
    world J.
    """
    if paired_name in world_set.relation_names:
        raise RepresentationError(f"relation {paired_name!r} already exists")
    worlds = []
    for first in world_set.worlds:
        for second in world_set.worlds:
            renamed = second[relation].rename(
                {a: f"{paired_name}.{a}" for a in second[relation].schema}
            )
            worlds.append(first.extend(paired_name, renamed))
    return WorldSet(worlds)


def pair_on_inlined(
    representation: InlinedRepresentation, relation: str, paired_name: str
) -> InlinedRepresentation:
    """Pairing expressed on the inlined representation (pure RA).

    The world-id attributes are doubled: the output ids are (V, V′)
    for every combination of two input world ids. Every original table
    is copied into all pairs; the paired copy of *relation* carries the
    second id component.

    Pairing genuinely correlates every world with every other, so a
    factored input drops to the joint form first (wild PAD patterns
    expanded, the world product materialized) — this is the
    pairing-on-demand escape hatch out of the sum-size encoding.
    """
    representation = representation.materialized()
    ids = representation.id_attrs
    second_ids = {v: f"{v}'" for v in ids}
    world = representation.world_table
    second_world = world.rename(second_ids)
    paired_world = world.product(second_world)

    tables: list[tuple[str, Relation]] = []
    for name in representation.tables.names:
        # The original table lives in world V of the pair (V, V′).
        tables.append((name, representation.tables[name].product(second_world)))
    source = representation.tables[relation]
    renamed = source.rename(
        {
            **{a: f"{paired_name}.{a}" for a in representation.value_attributes(relation)},
            **second_ids,
        }
    )
    tables.append((paired_name, renamed.product(world)))
    return InlinedRepresentation(
        tables, paired_world, ids + tuple(second_ids[v] for v in ids)
    )


def subset_world_set(values: Sequence[object], relation: str = "R") -> WorldSet:
    """The Section 7 witness: all 2ⁿ subsets of {values} as worlds."""
    attrs = ("A",)
    worlds = []
    for mask in itertools.product((False, True), repeat=len(values)):
        rows = [(v,) for v, keep in zip(values, mask) if keep]
        worlds.append(World.of({relation: Relation(attrs, rows)}))
    return WorldSet(worlds)
