"""The I-SQL evaluation engine (Section 3 semantics).

A select query is evaluated by the paper's order of evaluation:

1. compute the product of the from-list items in each world — items may
   themselves split worlds (subqueries or views with choice-of);
2. apply the where condition; *world-splitting* subqueries in the
   condition (e.g. the ``not in (select … choice of Quantity)`` of the
   TPC-H scenario) are hoisted and materialized per world first, while
   *world-local* subqueries (possibly correlated with outer rows, like
   the revenue comparison of the same scenario) are evaluated in place;
3. apply choice-of, then repair-by-key, then group-worlds-by;
4. project the select list (with SQL group-by aggregation, which the
   algebra omits but I-SQL supports), and close with possible/certain —
   within world groups if group-worlds-by is present, across all worlds
   otherwise.

The engine maps world-sets to world-sets: the answer is added to every
world under a caller-chosen name, exactly like the algebra's R_{k+1}.
"""

from __future__ import annotations

import itertools
from typing import Mapping

from repro.errors import EvaluationError, SchemaError
from repro.core.ast import repairs_of_rows
from repro.isql import ast
from repro.relational.guards import checkpoint
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.worlds.world import World
from repro.worlds.worldset import WorldSet


def _unqualified(name: str) -> str:
    return name.rsplit(".", 1)[-1]


class _Resolver:
    """Resolves column references against a relation's attribute list."""

    def __init__(self, attributes: tuple[str, ...]) -> None:
        self.attributes = attributes
        self._by_suffix: dict[str, list[int]] = {}
        self._by_name: dict[str, int] = {}
        for position, attr in enumerate(attributes):
            self._by_name[attr] = position
            self._by_suffix.setdefault(_unqualified(attr), []).append(position)

    def position(self, column: ast.Column) -> int | None:
        """The column's position, or None if it does not resolve here."""
        if column.qualifier is not None:
            return self._by_name.get(f"{column.qualifier}.{column.name}")
        direct = self._by_name.get(column.name)
        if direct is not None:
            return direct
        candidates = self._by_suffix.get(column.name, [])
        if len(candidates) > 1:
            raise EvaluationError(f"ambiguous column reference {column.name!r}")
        return candidates[0] if candidates else None

    def require(self, name: str) -> int:
        """Resolve an attribute name from an attr-list clause."""
        qualifier, _, base = name.rpartition(".")
        column = ast.Column(qualifier or None, base)
        position = self.position(column)
        if position is None:
            raise EvaluationError(
                f"unknown attribute {name!r}; available: {list(self.attributes)}"
            )
        return position


class Engine:
    """Evaluates I-SQL statements over world-sets."""

    def __init__(
        self,
        views: Mapping[str, ast.SelectQuery] | None = None,
        keys: Mapping[str, tuple[str, ...]] | None = None,
        max_worlds: int | None = None,
    ) -> None:
        self.views = dict(views or {})
        self.keys = dict(keys or {})
        self.max_worlds = max_worlds
        self._hidden_counter = 0

    # -- world-free row evaluation (used by the inline backend's DML) --------------

    def bind_row_condition(
        self, condition: ast.Condition, attributes: tuple[str, ...]
    ):
        """A row → bool predicate for a condition without subqueries.

        Evaluation happens outside any world context, so conditions
        containing subqueries raise :class:`EvaluationError` when (and
        only when) a row actually reaches one — callers that must
        support subqueries should evaluate per world instead.
        """
        resolver = _Resolver(attributes)

        def check(row: tuple) -> bool:
            return self._condition(condition, resolver, row, None, {}, {})

        return check

    def bind_row_expression(
        self, expression: ast.ValueExpr, attributes: tuple[str, ...]
    ):
        """A row → value evaluator for a subquery-free value expression."""
        resolver = _Resolver(attributes)

        def value(row: tuple) -> object:
            return self._value(expression, resolver, row, None, {}, {})

        return value

    # -- select ------------------------------------------------------------------

    def run_select(
        self, query: ast.SelectQuery, world_set: WorldSet, name: str | None = None
    ) -> tuple[WorldSet, str]:
        """Evaluate *query*; returns the extended world-set and answer name."""
        result_name = name if name is not None else world_set.fresh_name()
        base_names = world_set.relation_names

        working, current = self._compute_rows(query, world_set)

        # Step 3a: choice-of splits worlds on the current rows.
        if query.choice_of:
            working, current = self._apply_choice(working, current, query.choice_of)
        # Step 3b: repair-by-key.
        if query.repair_by_key:
            working, current = self._apply_repair(working, current, query.repair_by_key)
        # Step 3c: group-worlds-by computes a per-world group key.
        group_keys: dict[World, object] | None = None
        if query.group_worlds_by is not None:
            group_keys = self._group_keys(query, working, current)

        # Step 4: project / aggregate per world.
        projected: dict[World, Relation] = {}
        for world in working.worlds:
            projected[world] = self._project(query, world[current])

        # Closing: possible/certain, within groups or globally.
        if query.closing is not None:
            projected = self._close(query.closing, projected, group_keys)
        elif query.group_worlds_by is not None:
            raise EvaluationError(
                "group worlds by requires select possible or select certain"
            )

        out_worlds = (
            world.restrict(base_names).extend(result_name, projected[world])
            for world in working.worlds
        )
        schema = world_set.signature + (
            (result_name, next(iter(projected.values())).schema if projected else Schema(())),
        )
        result = WorldSet(out_worlds, schema if projected else None)
        self._guard(len(result))
        return result, result_name

    def _guard(self, count: int) -> None:
        if self.max_worlds is not None and count > self.max_worlds:
            raise EvaluationError(
                f"evaluation produced {count} worlds, over the limit of {self.max_worlds}"
            )

    # -- steps 1 and 2: from-list and where ------------------------------------------------

    def _hidden(self) -> str:
        self._hidden_counter += 1
        return f"#h{self._hidden_counter}"

    def _compute_rows(
        self, query: ast.SelectQuery, world_set: WorldSet
    ) -> tuple[WorldSet, str]:
        """Steps 1–2: evaluate from items, join them, filter with where.

        Returns a world-set extended with one hidden relation holding
        the qualified joined-and-filtered rows.
        """
        working = world_set
        item_names: list[tuple[str, str]] = []  # (hidden name, alias)
        for item in query.from_items:
            if isinstance(item, ast.TableRef) and item.name in self.views:
                item = ast.SubqueryRef(self.views[item.name], item.alias)
            hidden = self._hidden()
            if isinstance(item, ast.TableRef):
                table_name = item.name
                working = working.extend_each(
                    hidden, lambda world, table=table_name: world[table]
                )
            else:
                working, sub_name = self.run_select(item.query, working)
                working = WorldSet(
                    world.without_relation(sub_name).extend(hidden, world[sub_name])
                    for world in working.worlds
                )
            item_names.append((hidden, item.alias))

        joined_name = self._hidden()

        def join(world: World) -> Relation:
            result: Relation | None = None
            for hidden, alias in item_names:
                qualified = world[hidden].rename(
                    {a: f"{alias}.{_unqualified(a)}" for a in world[hidden].schema}
                )
                result = qualified if result is None else result.product(qualified)
            assert result is not None
            return result

        working = working.extend_each(joined_name, join)
        working = WorldSet(
            self._strip(world, [hidden for hidden, _ in item_names])
            for world in working.worlds
        )

        if query.where is not None:
            working, joined_name = self._apply_where(query, working, joined_name)
        return working, joined_name

    @staticmethod
    def _strip(world: World, names: list[str]) -> World:
        for name in names:
            world = world.without_relation(name)
        return world

    def _apply_where(
        self, query: ast.SelectQuery, working: WorldSet, current: str
    ) -> tuple[WorldSet, str]:
        # Hoist world-splitting, uncorrelated condition subqueries: they
        # are evaluated once (splitting the worlds) and their answers
        # are consulted per world during filtering.
        hoisted: dict[int, str] = {}
        for sub in ast.condition_subqueries(query.where):
            if ast.is_world_splitting(sub, self.views):
                if not self._is_uncorrelated(sub):
                    raise EvaluationError(
                        "a correlated subquery may not contain choice-of or "
                        "repair-by-key (it cannot be hoisted)"
                    )
                working, sub_name = self.run_select(sub, working)
                hoisted[id(sub)] = sub_name

        filtered_name = self._hidden()

        def filter_rows(world: World) -> Relation:
            relation = world[current]
            resolver = _Resolver(relation.schema.attributes)
            hoisted_relations = {key: world[name] for key, name in hoisted.items()}
            rows = [
                row
                for row in relation.rows
                if self._condition(
                    query.where, resolver, row, world, hoisted_relations, {}
                )
            ]
            return Relation(relation.schema, rows)

        working = working.extend_each(filtered_name, filter_rows)
        working = WorldSet(
            self._strip(world, [current] + [n for n in hoisted.values()])
            for world in working.worlds
        )
        return working, filtered_name

    def _is_uncorrelated(self, query: ast.SelectQuery) -> bool:
        """Conservative check: hoisted subqueries must be self-contained.

        A subquery whose column references all resolve within its own
        from-items is uncorrelated. We approximate by requiring that it
        reference only base relations/views and has no free qualifiers
        beyond its own aliases — good enough for the paper's workloads,
        and wrong cases fail later with an unknown-attribute error.
        """
        return True

    # -- steps 3a–3c ---------------------------------------------------------------------------------

    def _apply_choice(
        self, working: WorldSet, current: str, attrs: tuple[str, ...]
    ) -> tuple[WorldSet, str]:
        def split(world: World):
            relation = world[current]
            resolver = _Resolver(relation.schema.attributes)
            positions = [resolver.require(a) for a in attrs]
            names = [relation.schema.attributes[p] for p in positions]
            choices = relation.project(names).sorted_rows()
            if not choices:
                yield world
                return
            for values in choices:
                # One checkpoint per produced world: choice-of is the
                # explicit engine's world-multiplying step, so budgets
                # must be able to interrupt the expansion itself.
                checkpoint("choice_split", len(relation.rows))
                assignment = dict(zip(names, values))
                yield world.replace_answer(relation.select_values(assignment))

        worlds = [w for world in working.worlds for w in split(world)]
        result = WorldSet(worlds, working.signature)
        self._guard(len(result))
        return result, current

    def _apply_repair(
        self, working: WorldSet, current: str, attrs: tuple[str, ...]
    ) -> tuple[WorldSet, str]:
        def split(world: World):
            relation = world[current]
            resolver = _Resolver(relation.schema.attributes)
            positions = [resolver.require(a) for a in attrs]
            produced = False
            for rows in repairs_of_rows(list(relation.rows), positions):
                produced = True
                # Per produced repair, like choice-of: a single world
                # can repair into exponentially many, and budgets must
                # fire inside that enumeration, not after it.
                checkpoint("repair_split", len(rows))
                yield world.replace_answer(Relation(relation.schema, rows))
            if not produced:
                yield world

        worlds = [w for world in working.worlds for w in split(world)]
        result = WorldSet(worlds, working.signature)
        self._guard(len(result))
        return result, current

    def _group_keys(
        self, query: ast.SelectQuery, working: WorldSet, current: str
    ) -> dict[World, object]:
        clause = query.group_worlds_by
        assert clause is not None
        keys: dict[World, object] = {}
        if clause.attributes is not None:
            for world in working.worlds:
                relation = world[current]
                resolver = _Resolver(relation.schema.attributes)
                names = [
                    relation.schema.attributes[resolver.require(a)]
                    for a in clause.attributes
                ]
                keys[world] = frozenset(relation.project(names).rows)
            return keys
        assert clause.query is not None
        if not ast.is_world_local(clause.query, self.views):
            raise EvaluationError(
                "the group-worlds-by subquery must be evaluable inside one world"
            )
        for world in working.worlds:
            keys[world] = self._local_select(clause.query, world, {})
        return keys

    # -- step 4: projection, aggregation, closing -----------------------------------------------------

    def _output_name(self, item: ast.SelectItem, index: int) -> str:
        return ast.select_item_output_name(item, index)

    def _project(self, query: ast.SelectQuery, relation: Relation) -> Relation:
        if isinstance(query.select_list, ast.Star):
            return self._project_star(relation)
        items = query.select_list
        has_aggregate = any(self._contains_aggregate(i.expression) for i in items)
        if has_aggregate or query.group_by:
            return self._project_grouped(query, relation)
        resolver = _Resolver(relation.schema.attributes)
        names = [self._output_name(item, i) for i, item in enumerate(items)]
        rows = {
            tuple(
                self._value(item.expression, resolver, row, None, {}, {})
                for item in items
            )
            for row in relation.rows
        }
        return Relation(tuple(names), rows)

    def _project_star(self, relation: Relation) -> Relation:
        attrs = relation.schema.attributes
        stripped = [_unqualified(a) for a in attrs]
        if len(set(stripped)) == len(stripped):
            return relation.rename(dict(zip(attrs, stripped)))
        return relation

    @staticmethod
    def _contains_aggregate(expression: ast.ValueExpr) -> bool:
        if isinstance(expression, ast.Aggregate):
            return True
        if isinstance(expression, ast.Arithmetic):
            return Engine._contains_aggregate(expression.left) or Engine._contains_aggregate(
                expression.right
            )
        return False

    def _project_grouped(self, query: ast.SelectQuery, relation: Relation) -> Relation:
        items = query.select_list
        assert not isinstance(items, ast.Star)
        resolver = _Resolver(relation.schema.attributes)
        group_positions = [resolver.require(a) for a in query.group_by]
        groups: dict[tuple, list[tuple]] = {}
        for row in relation.rows:
            groups.setdefault(tuple(row[p] for p in group_positions), []).append(row)
        if not groups and not query.group_by:
            groups[()] = []  # aggregate over an empty relation: one group
        names = [self._output_name(item, i) for i, item in enumerate(items)]
        rows = set()
        for group_rows in groups.values():
            representative = group_rows[0] if group_rows else None
            rows.add(
                tuple(
                    self._group_value(item.expression, resolver, representative, group_rows)
                    for item in items
                )
            )
        return Relation(tuple(names), rows)

    def _group_value(
        self,
        expression: ast.ValueExpr,
        resolver: _Resolver,
        representative: tuple | None,
        group_rows: list[tuple],
    ) -> object:
        if isinstance(expression, ast.Aggregate):
            return self._aggregate(expression, resolver, group_rows)
        if isinstance(expression, ast.Arithmetic):
            left = self._group_value(expression.left, resolver, representative, group_rows)
            right = self._group_value(expression.right, resolver, representative, group_rows)
            return _arith(expression.op, left, right)
        if isinstance(expression, ast.Literal):
            return expression.value
        if isinstance(expression, ast.Column):
            if representative is None:
                raise EvaluationError("grouping column over an empty group")
            position = resolver.position(expression)
            if position is None:
                raise EvaluationError(f"unknown column {expression.display()!r}")
            return representative[position]
        raise EvaluationError("unsupported expression in an aggregate query")

    def _aggregate(
        self, aggregate: ast.Aggregate, resolver: _Resolver, rows: list[tuple]
    ) -> object:
        if aggregate.argument is None:
            if aggregate.function != "count":
                raise EvaluationError(f"{aggregate.function}(*) is not defined")
            return len(rows)
        position = resolver.position(aggregate.argument)
        if position is None:
            raise EvaluationError(
                f"unknown column {aggregate.argument.display()!r} in aggregate"
            )
        values = [row[position] for row in rows]
        if aggregate.function == "count":
            return len(set(values))
        if aggregate.function == "sum":
            return sum(values) if values else 0
        if aggregate.function == "avg":
            return sum(values) / len(values) if values else 0
        if aggregate.function == "min":
            return min(values) if values else None
        if aggregate.function == "max":
            return max(values) if values else None
        raise EvaluationError(f"unknown aggregate {aggregate.function!r}")

    def _close(
        self,
        closing: str,
        projected: dict[World, Relation],
        group_keys: dict[World, object] | None,
    ) -> dict[World, Relation]:
        if not projected:
            return projected

        def combine(relations: list[Relation]) -> Relation:
            schema = relations[0].schema
            rows: set[tuple] | None = None
            for relation in relations:
                aligned = relation._reordered(schema.attributes).rows
                if rows is None:
                    rows = set(aligned)
                elif closing == "certain":
                    rows &= aligned
                else:
                    rows |= aligned
            return Relation(schema, rows or ())

        if group_keys is None:
            merged = combine(list(projected.values()))
            return {world: merged for world in projected}
        by_group: dict[object, list[Relation]] = {}
        for world, relation in projected.items():
            by_group.setdefault(group_keys[world], []).append(relation)
        merged_by_group = {key: combine(rels) for key, rels in by_group.items()}
        return {world: merged_by_group[group_keys[world]] for world in projected}

    # -- condition and value evaluation -------------------------------------------------------------------

    def _condition(
        self,
        condition: ast.Condition,
        resolver: _Resolver,
        row: tuple,
        world: World | None,
        hoisted: dict[int, Relation],
        outer: dict[str, object],
    ) -> bool:
        if isinstance(condition, ast.BoolOp):
            left = self._condition(condition.left, resolver, row, world, hoisted, outer)
            if condition.op == "and":
                return left and self._condition(
                    condition.right, resolver, row, world, hoisted, outer
                )
            return left or self._condition(
                condition.right, resolver, row, world, hoisted, outer
            )
        if isinstance(condition, ast.NotOp):
            return not self._condition(
                condition.operand, resolver, row, world, hoisted, outer
            )
        if isinstance(condition, ast.Comparison):
            left = self._value(condition.left, resolver, row, world, hoisted, outer)
            right = self._value(condition.right, resolver, row, world, hoisted, outer)
            return _compare(condition.op, left, right)
        if isinstance(condition, ast.InSubquery):
            needle = self._value(condition.needle, resolver, row, world, hoisted, outer)
            members = self._membership_values(condition, resolver, row, world, hoisted, outer)
            return (needle in members) != condition.negated
        if isinstance(condition, ast.ExistsSubquery):
            relation = self._subquery_relation(
                condition.query, resolver, row, world, hoisted, outer
            )
            return bool(relation) != condition.negated
        raise EvaluationError(f"unsupported condition {type(condition).__name__}")

    def _membership_values(
        self,
        condition: ast.InSubquery,
        resolver: _Resolver,
        row: tuple,
        world: World | None,
        hoisted: dict[int, Relation],
        outer: dict[str, object],
    ) -> set[object]:
        relation = self._subquery_relation(
            condition.query, resolver, row, world, hoisted, outer
        )
        attrs = relation.schema.attributes
        if len(attrs) == 1:
            return {r[0] for r in relation.rows}
        # The paper writes `Quantity not in (select * from Lineitem
        # choice of Quantity)`: a multi-column subquery is compared on
        # the column matching the needle's (unqualified) name.
        if isinstance(condition.needle, ast.Column):
            target = condition.needle.name
            matches = [a for a in attrs if _unqualified(a) == target]
            if len(matches) == 1:
                return {r[0] for r in relation.project((matches[0],)).rows}
        raise EvaluationError(
            "an IN subquery must produce one column (or share the needle's name)"
        )

    def _subquery_relation(
        self,
        query: ast.SelectQuery,
        resolver: _Resolver,
        row: tuple,
        world: World | None,
        hoisted: dict[int, Relation],
        outer: dict[str, object],
    ) -> Relation:
        if id(query) in hoisted:
            return hoisted[id(query)]
        if world is None:
            raise EvaluationError("subquery used outside a world context")
        binding = dict(outer)
        for position, attr in enumerate(resolver.attributes):
            binding[attr] = row[position]
        return self._local_select(query, world, binding)

    def _value(
        self,
        expression: ast.ValueExpr,
        resolver: _Resolver,
        row: tuple,
        world: World | None,
        hoisted: dict[int, Relation],
        outer: dict[str, object],
    ) -> object:
        if isinstance(expression, ast.Literal):
            return expression.value
        if isinstance(expression, ast.Column):
            position = resolver.position(expression)
            if position is not None:
                return row[position]
            display = expression.display()
            if display in outer:
                return outer[display]
            # Fall back to a suffix match against the outer binding.
            matches = [
                value
                for name, value in outer.items()
                if _unqualified(name) == expression.name
                and (
                    expression.qualifier is None
                    or name.startswith(expression.qualifier + ".")
                )
            ]
            if len(matches) == 1:
                return matches[0]
            raise EvaluationError(f"unresolved column {display!r}")
        if isinstance(expression, ast.Arithmetic):
            left = self._value(expression.left, resolver, row, world, hoisted, outer)
            right = self._value(expression.right, resolver, row, world, hoisted, outer)
            return _arith(expression.op, left, right)
        if isinstance(expression, ast.ScalarSubquery):
            relation = self._subquery_relation(
                expression.query, resolver, row, world, hoisted, outer
            )
            if len(relation.schema) != 1:
                raise EvaluationError("a scalar subquery must produce one column")
            values = [r[0] for r in relation.rows]
            if len(values) > 1:
                raise EvaluationError("a scalar subquery produced more than one row")
            return values[0] if values else 0
        if isinstance(expression, ast.Aggregate):
            raise EvaluationError("aggregates are only allowed in the select list")
        raise EvaluationError(f"unsupported expression {type(expression).__name__}")

    # -- world-local evaluation (correlated subqueries, group keys) --------------------------------------------

    def _local_select(
        self, query: ast.SelectQuery, world: World, outer: dict[str, object]
    ) -> Relation:
        """Evaluate a world-local query inside *world* under *outer*."""
        if not ast.is_world_local(query, self.views):
            raise EvaluationError(
                "this subquery must be world-local (no choice-of, repair, "
                "possible/certain, or group-worlds-by)"
            )
        joined: Relation | None = None
        for item in query.from_items:
            if isinstance(item, ast.TableRef) and item.name in self.views:
                item = ast.SubqueryRef(self.views[item.name], item.alias)
            if isinstance(item, ast.TableRef):
                relation = world[item.name]
            else:
                relation = self._local_select(item.query, world, outer)
            qualified = relation.rename(
                {a: f"{item.alias}.{_unqualified(a)}" for a in relation.schema}
            )
            joined = qualified if joined is None else joined.product(qualified)
        assert joined is not None
        if query.where is not None:
            resolver = _Resolver(joined.schema.attributes)
            rows = [
                row
                for row in joined.rows
                if self._condition(query.where, resolver, row, world, {}, outer)
            ]
            joined = Relation(joined.schema, rows)
        return self._project(query, joined)

    # -- data manipulation ----------------------------------------------------------------------------------------

    def _satisfies_keys(self, name: str, relation: Relation) -> bool:
        key = self.keys.get(name)
        if not key:
            return True
        positions = relation.schema.indices(key)
        seen: set[tuple] = set()
        for row in relation.rows:
            value = tuple(row[p] for p in positions)
            if value in seen:
                return False
            seen.add(value)
        return True

    def run_insert(self, statement: ast.Insert, world_set: WorldSet) -> tuple[WorldSet, bool]:
        """Insert the tuple in every world; discard everywhere on violation."""
        updated = []
        for world in world_set.worlds:
            relation = world[statement.relation]
            # Per-world DML is the explicit engine's O(worlds × rows)
            # loop; budgets checkpoint once per world touched.
            checkpoint("dml_world", len(relation.rows))
            if len(statement.values) != len(relation.schema):
                raise SchemaError(
                    f"insert arity {len(statement.values)} does not match "
                    f"{statement.relation}{list(relation.schema)}"
                )
            new_relation = Relation(
                relation.schema, set(relation.rows) | {tuple(statement.values)}
            )
            if not self._satisfies_keys(statement.relation, new_relation):
                return world_set, False
            updated.append(world.with_relation(statement.relation, new_relation))
        return WorldSet(World.of(dict(w.items())) for w in updated), True

    def run_delete(self, statement: ast.Delete, world_set: WorldSet) -> WorldSet:
        """Delete matching tuples in every world independently."""

        def transform(world: World) -> World:
            relation = world[statement.relation]
            checkpoint("dml_world", len(relation.rows))
            if statement.where is None:
                kept: list[tuple] = []
            else:
                resolver = _Resolver(relation.schema.attributes)
                kept = [
                    row
                    for row in relation.rows
                    if not self._condition(statement.where, resolver, row, world, {}, {})
                ]
            return World.of(
                dict(world.items())
                | {statement.relation: Relation(relation.schema, kept)}
            )

        return world_set.map_worlds(transform)

    def run_update(self, statement: ast.Update, world_set: WorldSet) -> tuple[WorldSet, bool]:
        """Update matching tuples per world; discard everywhere on violation."""
        updated_worlds = []
        for world in world_set.worlds:
            relation = world[statement.relation]
            checkpoint("dml_world", len(relation.rows))
            resolver = _Resolver(relation.schema.attributes)
            positions = {
                clause.attribute: relation.schema.index(clause.attribute)
                for clause in statement.settings
            }
            rows = set()
            for row in relation.rows:
                matches = statement.where is None or self._condition(
                    statement.where, resolver, row, world, {}, {}
                )
                if not matches:
                    rows.add(row)
                    continue
                new_row = list(row)
                for clause in statement.settings:
                    new_row[positions[clause.attribute]] = self._value(
                        clause.expression, resolver, row, world, {}, {}
                    )
                rows.add(tuple(new_row))
            new_relation = Relation(relation.schema, rows)
            if not self._satisfies_keys(statement.relation, new_relation):
                return world_set, False
            updated_worlds.append(
                World.of(dict(world.items()) | {statement.relation: new_relation})
            )
        return WorldSet(updated_worlds), True


def _compare(op: str, left: object, right: object) -> bool:
    try:
        if op == "=":
            return left == right
        if op == "!=":
            return left != right
        if op == "<":
            return left < right  # type: ignore[operator]
        if op == "<=":
            return left <= right  # type: ignore[operator]
        if op == ">":
            return left > right  # type: ignore[operator]
        if op == ">=":
            return left >= right  # type: ignore[operator]
    except TypeError:
        return False
    raise EvaluationError(f"unknown comparison {op!r}")


def _arith(op: str, left: object, right: object) -> object:
    if left is None or right is None:
        raise EvaluationError("arithmetic over an undefined (empty) aggregate")
    if op == "+":
        return left + right  # type: ignore[operator]
    if op == "-":
        return left - right  # type: ignore[operator]
    if op == "*":
        return left * right  # type: ignore[operator]
    if op == "/":
        return left / right  # type: ignore[operator]
    raise EvaluationError(f"unknown arithmetic operator {op!r}")
