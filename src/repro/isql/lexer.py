"""Tokenizer for I-SQL.

Hand-rolled and line-aware; produces a flat token list the recursive
descent parser consumes. Keywords are case-insensitive; identifiers
keep their case. Both ``!=`` and ``<>`` denote inequality, and ``<-``
is the materializing assignment arrow (the paper writes ``←``, which is
accepted too).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ParseError

KEYWORDS = {
    "select",
    "possible",
    "certain",
    "from",
    "where",
    "group",
    "by",
    "choice",
    "of",
    "repair",
    "key",
    "worlds",
    "as",
    "and",
    "or",
    "not",
    "in",
    "exists",
    "create",
    "view",
    "insert",
    "into",
    "values",
    "delete",
    "update",
    "set",
    "sum",
    "count",
    "min",
    "max",
    "avg",
}

SYMBOLS = (
    "<=",
    ">=",
    "!=",
    "<>",
    "<-",
    "←",
    "(",
    ")",
    ",",
    ".",
    "*",
    "=",
    "<",
    ">",
    "+",
    "-",
    "/",
    ";",
)


@dataclass(frozen=True)
class Token:
    """One lexical token: a kind, its text, and its source offset."""

    kind: str  # "keyword" | "ident" | "number" | "string" | "symbol" | "eof"
    text: str
    position: int


def tokenize(source: str) -> list[Token]:
    """Tokenize *source*, raising :class:`ParseError` on bad input."""
    tokens: list[Token] = []
    index = 0
    length = len(source)
    while index < length:
        ch = source[index]
        if ch.isspace():
            index += 1
            continue
        if source.startswith("--", index):
            newline = source.find("\n", index)
            index = length if newline < 0 else newline + 1
            continue
        if ch == "'":
            end = source.find("'", index + 1)
            if end < 0:
                raise ParseError("unterminated string literal", index)
            tokens.append(Token("string", source[index + 1 : end], index))
            index = end + 1
            continue
        if ch.isdigit():
            start = index
            while index < length and (source[index].isdigit() or source[index] == "."):
                index += 1
            # A trailing dot belongs to a qualified name, not the number.
            text = source[start:index]
            if text.endswith("."):
                text = text[:-1]
                index -= 1
            tokens.append(Token("number", text, start))
            continue
        if ch.isalpha() or ch == "_":
            start = index
            while index < length and (source[index].isalnum() or source[index] == "_"):
                index += 1
            word = source[start:index]
            kind = "keyword" if word.lower() in KEYWORDS else "ident"
            text = word.lower() if kind == "keyword" else word
            tokens.append(Token(kind, text, start))
            continue
        for symbol in SYMBOLS:
            if source.startswith(symbol, index):
                text = "<-" if symbol == "←" else ("!=" if symbol == "<>" else symbol)
                tokens.append(Token("symbol", text, index))
                index += len(symbol)
                break
        else:
            raise ParseError(f"unexpected character {ch!r}", index)
    tokens.append(Token("eof", "", length))
    return tokens
