"""I-SQL on top of a relational engine (the paper's concluding vision).

Section 8 sketches the implementation route this module realizes: parse
an I-SQL query of the algebra fragment, compile it to world-set algebra
(Section 4), type it (Section 4.1), and — when it is
complete-to-complete — translate it to a relational algebra query
(Sections 5.2/5.3) that "can be evaluated in any relational database
management system".

:func:`explain` returns the whole pipeline as a structured report;
:func:`run_via_translation` actually executes a 1↦1 fragment query via
the §5.3 optimized relational query and returns the answer relation.
The test suite keeps this route in agreement with the I-SQL engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import NamedTuple

from repro.errors import TranslationError, TypingError
from repro.core.ast import WSAQuery
from repro.core.typing import is_complete_to_complete, query_type
from repro.inline.optimized import optimized_ra_query
from repro.inline.translate import conservative_ra_query
from repro.isql import ast
from repro.isql.compile import compile_query
from repro.isql.parser import parse_query
from repro.relational.algebra import RAExpr
from repro.relational.database import Database
from repro.relational.relation import Relation


@dataclass(frozen=True)
class Explanation:
    """The compilation pipeline of one I-SQL query.

    Attributes mirror the paper's layers: the parsed statement, the
    world-set algebra query, its type, and — for 1↦1 queries — the two
    relational algebra translations.
    """

    statement: ast.SelectQuery
    algebra: WSAQuery
    type: str
    complete_to_complete: bool
    relational_general: RAExpr | None
    relational_optimized: RAExpr | None
    #: How ``ISQLSession(backend="inline")`` would execute the statement:
    #: "direct" (compiled to a flat-table plan, worlds never enumerated)
    #: or "fallback" (outside the algebra fragment, explicit engine).
    inline_route: str = "direct"

    def render(self) -> str:
        """A human-readable multi-line report."""
        lines = [
            f"world-set algebra : {self.algebra.to_text()}",
            f"type              : {self.type}",
            f"inline backend    : {self.inline_route}",
        ]
        if self.relational_optimized is not None:
            lines.append(
                f"relational (§5.3) : {self.relational_optimized.to_text()}"
            )
        if self.relational_general is not None:
            lines.append(
                "relational (Fig.6): DAG of "
                f"{self.relational_general.dag_size()} operators"
            )
        if not self.complete_to_complete:
            lines.append(
                "relational        : not 1↦1 — evaluate over an inlined "
                "representation or the world-set semantics"
            )
        elif self.relational_optimized is None and self.relational_general is None:
            lines.append(
                "relational        : beyond the Section 5 translations — "
                "evaluate over an inlined representation"
            )
        return "\n".join(lines)


def explain(
    text_or_query: str | ast.SelectQuery,
    schemas: dict[str, tuple[str, ...]],
    views: dict[str, ast.SelectQuery] | None = None,
    assume_nonempty: bool = False,
) -> Explanation:
    """Compile an algebra-fragment I-SQL query through every layer."""
    statement = (
        parse_query(text_or_query)
        if isinstance(text_or_query, str)
        else text_or_query
    )
    algebra = compile_query(statement, schemas, views)
    c2c = is_complete_to_complete(algebra)
    general = optimized = None
    if c2c:
        # The widened fragment (aggregation, semijoins) compiles to
        # nodes the Figure 6 translator carries via its documented
        # operator extensions; the §5.3 optimized translator covers the
        # pure Section 4 algebra only — report whichever translation
        # exists rather than failing the whole pipeline.
        try:
            general = conservative_ra_query(algebra, schemas)
        except TranslationError:
            general = None
        try:
            optimized = optimized_ra_query(
                algebra, schemas, assume_nonempty=assume_nonempty
            )
        except TranslationError:
            optimized = None
    return Explanation(
        statement=statement,
        algebra=algebra,
        type=query_type(algebra),
        complete_to_complete=c2c,
        relational_general=general,
        relational_optimized=optimized,
    )


class RouteReport(NamedTuple):
    """How the inline backend executes one statement, with diagnostics.

    ``report[0]``/``report[1]`` still read the historical
    (route, reason) positions — but this is a 4-tuple, so code that
    unpacked the old pair must index or use the field names. *clause*
    names the construct that left the evaluatable fragment (e.g.
    ``"where"``, ``"select list"``, ``"set"``) and *span* is its source
    character range ``(start, end)`` within the statement text, when
    known. For a direct statement all three diagnostics are None.
    Covers every statement form — selects, assignments, views, and DML
    (whose match plans compile through the same fragment compiler); the
    construct-by-construct routing table in ``docs/isql-reference.md``
    is cross-checked against these reports by a test.
    """

    route: str
    reason: str | None
    clause: str | None = None
    span: tuple[int, int] | None = None

    def snippet(self, source: str) -> str | None:
        """The offending source text, when the span is known."""
        if self.span is None:
            return None
        start, end = self.span
        return source[start:end]


def inline_route(
    text_or_query: str | ast.Statement,
    schemas: dict[str, tuple[str, ...]],
    views: dict[str, ast.SelectQuery] | None = None,
) -> str:
    """How the inline backend would execute a statement.

    ``"direct"`` — the statement compiles to the world-set algebra
    (including its aggregation/semijoin extension nodes) or, for DML, to
    a flat match plan, and runs over the inlined representation without
    enumerating worlds; ``"fallback"`` — it uses residue constructs
    (non-column ``in`` needles, ungrouped select columns, disjunctions
    over a world-splitting plan, non-world-local DML subqueries, …) and
    the inline backend delegates to the explicit engine.

    Unlike :func:`explain` (which reports the whole translation
    pipeline and hence requires a fragment query), this works on *any*
    statement — selects, assignments, view definitions and DML.
    """
    return inline_route_report(text_or_query, schemas, views)[0]


def inline_route_report(
    text_or_query: str | ast.Statement,
    schemas: dict[str, tuple[str, ...]],
    views: dict[str, ast.SelectQuery] | None = None,
) -> RouteReport:
    """:func:`inline_route` plus *why* a statement leaves the fragment.

    Returns ``RouteReport("direct", None)`` for fragment statements and
    ``RouteReport("fallback", reason, clause, span)`` otherwise, where
    *reason* is the compiler's diagnostic, *clause* names the offending
    construct and *span* points into the statement source (when it was
    parsed from text). Selects and assignments go through
    :func:`~repro.isql.compile.compile_query`, deletes and updates
    through their DML match-plan compilers; inserts and view
    definitions are always direct (values are literals, views are lazy
    macros routed when referenced). Benchmarks record the route next to
    each timing so near-1× explicit-vs-inline rows are explainable: a
    fallback statement runs the same explicit engine on both backends.
    """
    from repro.isql.compile import (
        FragmentError,
        compile_delete,
        compile_query,
        compile_update,
    )
    from repro.isql.parser import parse_statement

    statement = (
        parse_statement(text_or_query)
        if isinstance(text_or_query, str)
        else text_or_query
    )
    if isinstance(statement, ast.Assignment):
        statement = statement.query
    try:
        if isinstance(statement, ast.SelectQuery):
            compile_query(statement, schemas, views)
        elif isinstance(statement, ast.Delete):
            compile_delete(statement, schemas, views)
        elif isinstance(statement, ast.Update):
            compile_update(statement, schemas, views)
        elif not isinstance(statement, (ast.Insert, ast.CreateView)):
            raise TypeError(
                f"cannot route statement {type(statement).__name__}"
            )
    except FragmentError as reason:
        return RouteReport("fallback", str(reason), reason.clause, reason.span)
    return RouteReport("direct", None)


def session_route(session, text_or_query: "str | ast.Statement") -> str:
    """The inline route a statement takes against a live session.

    Convenience over :func:`inline_route`: the schemas come from the
    session's current catalog (``session.backend.schemas()`` — cheap on
    both backends, no world decoding) and its registered views are
    honored. The *session* itself may run any backend — the answer says
    how ``backend="inline"`` would (or does) execute the statement.
    """
    return inline_route(text_or_query, session.backend.schemas(), session.views)


def run_via_translation(
    text_or_query: str | ast.SelectQuery,
    database: Database,
    views: dict[str, ast.SelectQuery] | None = None,
) -> Relation:
    """Execute a 1↦1 fragment query through the optimized translation.

    This is the paper's "one way to evaluate such queries in any
    relational database engine": no world-set is ever materialized.
    """
    schemas = {
        name: database.schema(name).attributes for name in database.names
    }
    report = explain(text_or_query, schemas, views)
    if not report.complete_to_complete:
        raise TypingError(
            "only complete-to-complete (1↦1) queries can run purely "
            f"relationally; this query has type {report.type}"
        )
    assert report.relational_optimized is not None
    return report.relational_optimized.evaluate(database)
