"""I-SQL: the paper's SQL analog for incomplete information."""

from repro.isql import ast
from repro.isql.compile import FragmentError, compile_query
from repro.isql.engine import Engine
from repro.isql.explain import (
    Explanation,
    RouteReport,
    explain,
    inline_route,
    inline_route_report,
    session_route,
    run_via_translation,
)
from repro.isql.lexer import Token, tokenize
from repro.isql.parser import parse_query, parse_script, parse_statement
from repro.isql.session import (
    DMLResult,
    ISQLSession,
    QueryResult,
    Savepoint,
    StatementResult,
)

__all__ = [
    "DMLResult",
    "Engine",
    "Explanation",
    "FragmentError",
    "ISQLSession",
    "QueryResult",
    "RouteReport",
    "Savepoint",
    "StatementResult",
    "Token",
    "ast",
    "compile_query",
    "explain",
    "inline_route",
    "inline_route_report",
    "session_route",
    "parse_query",
    "parse_script",
    "parse_statement",
    "run_via_translation",
    "tokenize",
]
