"""Recursive-descent parser for I-SQL (the grammar of Figure 1).

Entry points: :func:`parse_statement` for one statement,
:func:`parse_script` for a ``;``-separated sequence, and
:func:`parse_query` when a bare select is expected.
"""

from __future__ import annotations

from repro.errors import ParseError
from repro.isql import ast
from repro.isql.lexer import Token, tokenize

_AGGREGATES = ("sum", "count", "min", "max", "avg")
_COMPARATORS = ("=", "!=", "<", "<=", ">", ">=")


class Parser:
    """Parses a token stream into I-SQL statements."""

    def __init__(self, tokens: list[Token]) -> None:
        self.tokens = tokens
        self.index = 0
        self._alias_counter = 0

    # -- token plumbing ------------------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        return self.tokens[min(self.index + offset, len(self.tokens) - 1)]

    def advance(self) -> Token:
        token = self.tokens[self.index]
        if token.kind != "eof":
            self.index += 1
        return token

    def check(self, kind: str, text: str | None = None) -> bool:
        token = self.peek()
        return token.kind == kind and (text is None or token.text == text)

    def accept(self, kind: str, text: str | None = None) -> Token | None:
        if self.check(kind, text):
            return self.advance()
        return None

    def expect(self, kind: str, text: str | None = None) -> Token:
        token = self.accept(kind, text)
        if token is None:
            actual = self.peek()
            wanted = text or kind
            raise ParseError(
                f"expected {wanted!r}, found {actual.text or actual.kind!r}",
                actual.position,
            )
        return token

    def _fresh_alias(self) -> str:
        self._alias_counter += 1
        return f"_t{self._alias_counter}"

    # -- source spans -------------------------------------------------------------

    def _mark(self) -> int:
        """The source offset where the next construct starts."""
        return self.peek().position

    def _span(self, start: int) -> tuple[int, int]:
        """The span from *start* to the end of the last consumed token.

        Spans let diagnostics (``isql.explain.inline_route_report``)
        point at the clause that leaves the evaluatable fragment rather
        than just naming it.
        """
        token = self.tokens[max(self.index - 1, 0)]
        return (start, token.position + len(token.text))

    # -- statements ---------------------------------------------------------------------

    def parse_statement(self) -> ast.Statement:
        if self.check("keyword", "select"):
            return self.parse_select()
        if self.check("keyword", "create"):
            return self._parse_create_view()
        if self.check("keyword", "insert"):
            return self._parse_insert()
        if self.check("keyword", "delete"):
            return self._parse_delete()
        if self.check("keyword", "update"):
            return self._parse_update()
        if self.check("ident") and self.peek(1).kind == "symbol" and self.peek(1).text == "<-":
            name = self.advance().text
            self.expect("symbol", "<-")
            return ast.Assignment(name, self.parse_select())
        token = self.peek()
        raise ParseError(f"unexpected statement start {token.text!r}", token.position)

    def _parse_create_view(self) -> ast.CreateView:
        self.expect("keyword", "create")
        self.expect("keyword", "view")
        name = self.expect("ident").text
        self.expect("keyword", "as")
        return ast.CreateView(name, self.parse_select())

    def _parse_insert(self) -> ast.Insert:
        start = self._mark()
        self.expect("keyword", "insert")
        self.expect("keyword", "into")
        name = self.expect("ident").text
        self.expect("keyword", "values")
        self.expect("symbol", "(")
        values = [self._parse_literal_value()]
        while self.accept("symbol", ","):
            values.append(self._parse_literal_value())
        self.expect("symbol", ")")
        return ast.Insert(name, tuple(values), span=self._span(start))

    def _parse_literal_value(self) -> object:
        if self.check("string"):
            return self.advance().text
        negative = bool(self.accept("symbol", "-"))
        token = self.expect("number")
        value = float(token.text) if "." in token.text else int(token.text)
        return -value if negative else value

    def _parse_delete(self) -> ast.Delete:
        start = self._mark()
        self.expect("keyword", "delete")
        self.expect("keyword", "from")
        name = self.expect("ident").text
        where = self._parse_condition() if self.accept("keyword", "where") else None
        return ast.Delete(name, where, span=self._span(start))

    def _parse_update(self) -> ast.Update:
        start = self._mark()
        self.expect("keyword", "update")
        name = self.expect("ident").text
        self.expect("keyword", "set")
        settings = [self._parse_set_clause()]
        while self.accept("symbol", ","):
            settings.append(self._parse_set_clause())
        where = self._parse_condition() if self.accept("keyword", "where") else None
        return ast.Update(name, tuple(settings), where, span=self._span(start))

    def _parse_set_clause(self) -> ast.SetClause:
        attribute = self.expect("ident").text
        self.expect("symbol", "=")
        return ast.SetClause(attribute, self._parse_value())

    # -- select queries ---------------------------------------------------------------------

    def parse_select(self) -> ast.SelectQuery:
        self.expect("keyword", "select")
        closing = None
        if self.accept("keyword", "possible"):
            closing = "possible"
        elif self.accept("keyword", "certain"):
            closing = "certain"
        select_list = self._parse_select_list()
        self.expect("keyword", "from")
        from_items = [self._parse_from_item()]
        while self.accept("symbol", ","):
            from_items.append(self._parse_from_item())
        where = self._parse_condition() if self.accept("keyword", "where") else None

        group_by: tuple[str, ...] = ()
        group_by_span: tuple[int, int] | None = None
        choice_of: tuple[str, ...] = ()
        repair: tuple[str, ...] = ()
        group_worlds: ast.GroupWorldsBy | None = None
        while True:
            if self.check("keyword", "group") and self.peek(1).text == "by":
                start = self._mark()
                self.advance()
                self.advance()
                group_by = self._parse_attr_list()
                group_by_span = self._span(start)
            elif self.check("keyword", "choice"):
                self.advance()
                self.expect("keyword", "of")
                choice_of = self._parse_attr_list()
            elif self.check("keyword", "repair"):
                self.advance()
                self.expect("keyword", "by")
                self.expect("keyword", "key")
                repair = self._parse_attr_list()
            elif self.check("keyword", "group") and self.peek(1).text == "worlds":
                start = self._mark()
                self.advance()
                self.advance()
                self.expect("keyword", "by")
                clause = self._parse_group_worlds_by()
                group_worlds = ast.GroupWorldsBy(
                    clause.attributes, clause.query, self._span(start)
                )
            else:
                break
        return ast.SelectQuery(
            select_list=select_list,
            from_items=tuple(from_items),
            where=where,
            group_by=group_by,
            choice_of=choice_of,
            repair_by_key=repair,
            group_worlds_by=group_worlds,
            closing=closing,
            group_by_span=group_by_span,
        )

    def _parse_group_worlds_by(self) -> ast.GroupWorldsBy:
        if self.accept("symbol", "("):
            if self.check("keyword", "select"):
                query = self.parse_select()
                self.expect("symbol", ")")
                return ast.GroupWorldsBy(query=query)
            attrs = [self._parse_attr_name()]
            while self.accept("symbol", ","):
                attrs.append(self._parse_attr_name())
            self.expect("symbol", ")")
            return ast.GroupWorldsBy(attributes=tuple(attrs))
        return ast.GroupWorldsBy(attributes=self._parse_attr_list())

    def _parse_attr_list(self) -> tuple[str, ...]:
        attrs = [self._parse_attr_name()]
        while self.accept("symbol", ","):
            attrs.append(self._parse_attr_name())
        return tuple(attrs)

    def _parse_attr_name(self) -> str:
        first = self.expect("ident").text
        if self.accept("symbol", "."):
            return f"{first}.{self.expect('ident').text}"
        return first

    def _parse_select_list(self) -> tuple[ast.SelectItem, ...] | ast.Star:
        if self.accept("symbol", "*"):
            return ast.Star()
        items = [self._parse_select_item()]
        while self.accept("symbol", ","):
            items.append(self._parse_select_item())
        return tuple(items)

    def _parse_select_item(self) -> ast.SelectItem:
        start = self._mark()
        expression = self._parse_value()
        alias = None
        if self.accept("keyword", "as"):
            alias = self.expect("ident").text
        elif self.check("ident") and not self.check("keyword"):
            alias = self.advance().text
        return ast.SelectItem(expression, alias, self._span(start))

    def _parse_from_item(self) -> ast.FromItem:
        if self.accept("symbol", "("):
            query = self.parse_select()
            self.expect("symbol", ")")
            self.accept("keyword", "as")
            alias_token = self.accept("ident")
            alias = alias_token.text if alias_token else self._fresh_alias()
            return ast.SubqueryRef(query, alias)
        name = self.expect("ident").text
        self.accept("keyword", "as")
        alias_token = self.accept("ident")
        alias = alias_token.text if alias_token else name
        return ast.TableRef(name, alias)

    # -- conditions ----------------------------------------------------------------------------

    def _parse_condition(self) -> ast.Condition:
        return self._parse_or()

    def _parse_or(self) -> ast.Condition:
        left = self._parse_and()
        while self.accept("keyword", "or"):
            left = ast.BoolOp("or", left, self._parse_and())
        return left

    def _parse_and(self) -> ast.Condition:
        left = self._parse_not()
        while self.accept("keyword", "and"):
            left = ast.BoolOp("and", left, self._parse_not())
        return left

    def _parse_not(self) -> ast.Condition:
        start = self._mark()
        if self.accept("keyword", "not"):
            if self.accept("keyword", "exists"):
                query = self._parse_parenthesized_query()
                return ast.ExistsSubquery(query, True, self._span(start))
            return ast.NotOp(self._parse_not())
        if self.accept("keyword", "exists"):
            query = self._parse_parenthesized_query()
            return ast.ExistsSubquery(query, False, self._span(start))
        return self._parse_comparison()

    def _parse_parenthesized_query(self) -> ast.SelectQuery:
        self.expect("symbol", "(")
        query = self.parse_select()
        self.expect("symbol", ")")
        return query

    def _parse_in_operand(self) -> ast.SelectQuery:
        """A subquery, or a bare relation name as in the paper's
        ``where Dep in Hometowns`` (sugar for ``select * from name``)."""
        if self.check("ident"):
            name = self.advance().text
            return ast.SelectQuery(
                select_list=ast.Star(),
                from_items=(ast.TableRef(name, name),),
            )
        return self._parse_parenthesized_query()

    def _parse_comparison(self) -> ast.Condition:
        if self.check("symbol", "(") and self._starts_condition_group():
            self.advance()
            condition = self._parse_condition()
            self.expect("symbol", ")")
            return condition
        start = self._mark()
        left = self._parse_value()
        if self.accept("keyword", "not"):
            self.expect("keyword", "in")
            operand = self._parse_in_operand()
            return ast.InSubquery(left, operand, True, self._span(start))
        if self.accept("keyword", "in"):
            operand = self._parse_in_operand()
            return ast.InSubquery(left, operand, False, self._span(start))
        for op in sorted(_COMPARATORS, key=len, reverse=True):
            if self.accept("symbol", op):
                return ast.Comparison(op, left, self._parse_value())
        token = self.peek()
        raise ParseError(
            f"expected a comparison operator, found {token.text!r}", token.position
        )

    def _starts_condition_group(self) -> bool:
        """Heuristic: does '(' open a boolean group rather than a value?

        A parenthesized *value* is either a scalar subquery (starts with
        ``select``) or an arithmetic group; a boolean group eventually
        contains a boolean keyword or comparison at depth 1 before the
        matching ')'. We scan ahead conservatively.
        """
        depth = 0
        offset = 0
        saw_comparator = False
        while True:
            token = self.peek(offset)
            if token.kind == "eof":
                return False
            if token.kind == "symbol" and token.text == "(":
                depth += 1
            elif token.kind == "symbol" and token.text == ")":
                depth -= 1
                if depth == 0:
                    return saw_comparator
            elif depth == 1:
                if token.kind == "keyword" and token.text in ("select",):
                    return False
                if token.kind == "keyword" and token.text in ("and", "or", "not", "in", "exists"):
                    saw_comparator = True
                if token.kind == "symbol" and token.text in _COMPARATORS:
                    saw_comparator = True
            offset += 1

    # -- value expressions ------------------------------------------------------------------------

    def _parse_value(self) -> ast.ValueExpr:
        return self._parse_additive()

    def _parse_additive(self) -> ast.ValueExpr:
        left = self._parse_multiplicative()
        while self.check("symbol", "+") or self.check("symbol", "-"):
            op = self.advance().text
            left = ast.Arithmetic(op, left, self._parse_multiplicative())
        return left

    def _parse_multiplicative(self) -> ast.ValueExpr:
        left = self._parse_primary_value()
        while self.check("symbol", "*") or self.check("symbol", "/"):
            op = self.advance().text
            left = ast.Arithmetic(op, left, self._parse_primary_value())
        return left

    def _parse_primary_value(self) -> ast.ValueExpr:
        if self.check("keyword") and self.peek().text in _AGGREGATES:
            function = self.advance().text
            self.expect("symbol", "(")
            if self.accept("symbol", "*"):
                argument = None
            else:
                argument = self._parse_column()
            self.expect("symbol", ")")
            return ast.Aggregate(function, argument)
        if self.check("symbol", "("):
            if self.peek(1).kind == "keyword" and self.peek(1).text == "select":
                start = self._mark()
                query = self._parse_parenthesized_query()
                return ast.ScalarSubquery(query, self._span(start))
            self.advance()
            value = self._parse_value()
            self.expect("symbol", ")")
            return value
        if self.check("string"):
            return ast.Literal(self.advance().text)
        if self.check("number"):
            token = self.advance()
            value = float(token.text) if "." in token.text else int(token.text)
            return ast.Literal(value)
        if self.check("symbol", "-"):
            self.advance()
            token = self.expect("number")
            value = float(token.text) if "." in token.text else int(token.text)
            return ast.Literal(-value)
        return self._parse_column()

    def _parse_column(self) -> ast.Column:
        first = self.expect("ident").text
        if self.accept("symbol", "."):
            return ast.Column(first, self.expect("ident").text)
        return ast.Column(None, first)


def parse_statement(source: str) -> ast.Statement:
    """Parse exactly one statement (a trailing ``;`` is allowed).

    Entry points re-raise :class:`ParseError` with the source attached,
    upgrading bare-offset messages to line/column + a caret-annotated
    snippet of the offending line.
    """
    try:
        parser = Parser(tokenize(source))
        statement = parser.parse_statement()
        parser.accept("symbol", ";")
        parser.expect("eof")
    except ParseError as error:
        raise error.with_source(source) from None
    return statement


def parse_query(source: str) -> ast.SelectQuery:
    """Parse a select query, rejecting other statement kinds."""
    statement = parse_statement(source)
    if not isinstance(statement, ast.SelectQuery):
        raise ParseError("expected a select query")
    return statement


def parse_script(source: str) -> list[ast.Statement]:
    """Parse a ``;``-separated sequence of statements.

    Like :func:`parse_statement`, parse errors come back located
    against *source* (line/column + caret snippet).
    """
    try:
        parser = Parser(tokenize(source))
        statements: list[ast.Statement] = []
        while not parser.check("eof"):
            statements.append(parser.parse_statement())
            if not parser.accept("symbol", ";"):
                break
        parser.expect("eof")
    except ParseError as error:
        raise error.with_source(source) from None
    return statements
