"""Abstract syntax of I-SQL (Figure 1 of the paper).

The statement forms are::

    select [possible | certain] sellist
    from   qlist
    [where cond]
    [group by attrlist]
    [choice of attrlist]
    [repair by key attrlist]
    [group worlds by sqlquery | attrlist];

    insert into relname values (v, …);
    delete from relname [where cond];
    update relname set settings [where cond];

plus the ``create view name as query`` used throughout Section 2 and
the materializing assignment ``name <- query`` with which the paper
builds up the acquisition scenario (U ←, V ←, W ←).

Value expressions cover what the Section 2 examples need: column
references (qualified or not), literals, arithmetic, aggregates
(sum/count/min/max/avg), and scalar subqueries; conditions add the
comparisons, boolean connectives, [not] in ⟨subquery⟩ and [not] exists
⟨subquery⟩.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence, Union

# -- value expressions ------------------------------------------------------------


@dataclass(frozen=True)
class Column:
    """A column reference, optionally qualified: ``Y.Revenue`` or ``Arr``."""

    qualifier: str | None
    name: str

    def display(self) -> str:
        return f"{self.qualifier}.{self.name}" if self.qualifier else self.name


@dataclass(frozen=True)
class Literal:
    """A constant: number or string."""

    value: object


@dataclass(frozen=True)
class Arithmetic:
    """Binary arithmetic over value expressions: + − * /."""

    op: str
    left: "ValueExpr"
    right: "ValueExpr"


@dataclass(frozen=True)
class Aggregate:
    """An aggregate call in a select list: ``sum(Price)``, ``count(*)``."""

    function: str
    argument: Column | None  # None encodes count(*)


@dataclass(frozen=True)
class ScalarSubquery:
    """A parenthesized subquery used as a value (must yield one value)."""

    query: "SelectQuery"
    #: Source span of the parenthesized subquery (parser-set).
    span: tuple[int, int] | None = field(default=None, compare=False)


ValueExpr = Union[Column, Literal, Arithmetic, Aggregate, ScalarSubquery]


# -- conditions ----------------------------------------------------------------------


@dataclass(frozen=True)
class Comparison:
    """``left op right`` with op ∈ {=, !=, <, <=, >, >=}."""

    op: str
    left: ValueExpr
    right: ValueExpr


@dataclass(frozen=True)
class InSubquery:
    """``expr [not] in (subquery)``."""

    needle: ValueExpr
    query: "SelectQuery"
    negated: bool
    #: Source span of the whole membership condition (parser-set).
    span: tuple[int, int] | None = field(default=None, compare=False)


@dataclass(frozen=True)
class ExistsSubquery:
    """``[not] exists (subquery)``."""

    query: "SelectQuery"
    negated: bool
    #: Source span of the whole existence condition (parser-set).
    span: tuple[int, int] | None = field(default=None, compare=False)


@dataclass(frozen=True)
class BoolOp:
    """``and`` / ``or`` over two conditions."""

    op: str
    left: "Condition"
    right: "Condition"


@dataclass(frozen=True)
class NotOp:
    """Negation of a condition."""

    operand: "Condition"


Condition = Union[Comparison, InSubquery, ExistsSubquery, BoolOp, NotOp]


# -- queries -------------------------------------------------------------------------


@dataclass(frozen=True)
class SelectItem:
    """One select-list entry: an expression plus an optional alias.

    *span* is the item's source character range ``(start, end)`` when
    the item came from the parser (None for programmatic ASTs); it is
    excluded from equality/hashing so spans never affect semantics.
    """

    expression: ValueExpr
    alias: str | None = None
    span: tuple[int, int] | None = field(default=None, compare=False)


@dataclass(frozen=True)
class Star:
    """The ``*`` select list."""


@dataclass(frozen=True)
class TableRef:
    """A from-list item naming a base relation or view, with an alias."""

    name: str
    alias: str


@dataclass(frozen=True)
class SubqueryRef:
    """A from-list item holding a parenthesized subquery, with an alias."""

    query: "SelectQuery"
    alias: str


FromItem = Union[TableRef, SubqueryRef]


@dataclass(frozen=True)
class GroupWorldsBy:
    """The world-grouping clause: an attribute list or a subquery."""

    attributes: tuple[str, ...] | None = None
    query: "SelectQuery | None" = None
    #: Source span of the whole ``group worlds by …`` clause (parser-set).
    span: tuple[int, int] | None = field(default=None, compare=False)


@dataclass(frozen=True)
class SelectQuery:
    """A full I-SQL select statement (Figure 1)."""

    select_list: tuple[SelectItem, ...] | Star
    from_items: tuple[FromItem, ...]
    where: Condition | None = None
    group_by: tuple[str, ...] = ()
    choice_of: tuple[str, ...] = ()
    repair_by_key: tuple[str, ...] = ()
    group_worlds_by: GroupWorldsBy | None = None
    closing: str | None = None  # "possible" | "certain" | None
    #: Source span of the ``group by`` clause, when parsed (parser-set;
    #: excluded from equality so spans never affect semantics).
    group_by_span: tuple[int, int] | None = field(default=None, compare=False)


# -- statements ------------------------------------------------------------------------


@dataclass(frozen=True)
class CreateView:
    """``create view name as query`` — a lazily expanded macro."""

    name: str
    query: SelectQuery


@dataclass(frozen=True)
class Assignment:
    """``name <- query`` — materialize the answer into every world.

    This is the mechanism of the paper's stepwise scenarios: the result
    becomes a base relation of the world-set, so later statements can
    reference it repeatedly *with correlation* (unlike a view, which is
    re-expanded — and thus re-splits worlds — on every reference).
    """

    name: str
    query: SelectQuery


@dataclass(frozen=True)
class Insert:
    """``insert into relname values (v, …)``.

    *span* is the statement's source extent (start/end character
    offsets), recorded by the parser and carried on all three DML nodes
    so session errors can point at the offending statement text; it
    never participates in equality or hashing.
    """

    relation: str
    values: tuple[object, ...]
    span: tuple[int, int] | None = field(default=None, compare=False, repr=False)


@dataclass(frozen=True)
class Delete:
    """``delete from relname [where cond]``."""

    relation: str
    where: Condition | None = None
    span: tuple[int, int] | None = field(default=None, compare=False, repr=False)


@dataclass(frozen=True)
class SetClause:
    """One ``attr = expr`` of an update statement."""

    attribute: str
    expression: ValueExpr


@dataclass(frozen=True)
class Update:
    """``update relname set settings [where cond]``."""

    relation: str
    settings: tuple[SetClause, ...]
    where: Condition | None = None
    span: tuple[int, int] | None = field(default=None, compare=False, repr=False)


Statement = Union[SelectQuery, CreateView, Assignment, Insert, Delete, Update]


def select_item_output_name(item: SelectItem, index: int) -> str:
    """The output attribute name of one select item.

    The single definition shared by the engine's projection and the
    compiler's aggregation tail — their answer schemas must match bit
    for bit for the backend differential to hold.
    """
    if item.alias:
        return item.alias
    if isinstance(item.expression, Column):
        return item.expression.name
    if isinstance(item.expression, Aggregate):
        argument = item.expression.argument
        inner = argument.name if argument else "*"
        return f"{item.expression.function}({inner})"
    return f"expr{index}"


def expression_subqueries(expression: ValueExpr) -> list[SelectQuery]:
    """All scalar subqueries nested anywhere in a value expression."""
    found: list[SelectQuery] = []

    def visit(expr: ValueExpr) -> None:
        if isinstance(expr, ScalarSubquery):
            found.append(expr.query)
        elif isinstance(expr, Arithmetic):
            visit(expr.left)
            visit(expr.right)

    visit(expression)
    return found


def condition_subqueries(condition: Condition | None) -> list[SelectQuery]:
    """All subqueries appearing anywhere in a condition."""
    if condition is None:
        return []
    found: list[SelectQuery] = []

    def visit_value(expr: ValueExpr) -> None:
        found.extend(expression_subqueries(expr))

    def visit(cond: Condition) -> None:
        if isinstance(cond, Comparison):
            visit_value(cond.left)
            visit_value(cond.right)
        elif isinstance(cond, InSubquery):
            visit_value(cond.needle)
            found.append(cond.query)
        elif isinstance(cond, ExistsSubquery):
            found.append(cond.query)
        elif isinstance(cond, BoolOp):
            visit(cond.left)
            visit(cond.right)
        elif isinstance(cond, NotOp):
            visit(cond.operand)

    visit(condition)
    return found


def referenced_relations(
    query: SelectQuery, views: dict[str, SelectQuery]
) -> set[str]:
    """All base relation names *query* reads, recursively.

    Follows from-subqueries, view references (expanded through
    *views*), condition subqueries, scalar subqueries in the select
    list, and the ``group worlds by`` companion query. Names that are
    neither views nor known relations are returned as-is (resolution
    errors stay the evaluator's job). The inline backend uses this to
    decide whether a DML subquery's answer can depend on the world id:
    a world-local subquery reading only world-uniform relations is the
    same in every world.
    """
    found: set[str] = set()
    expanded_views: set[str] = set()

    def visit(q: SelectQuery) -> None:
        for item in q.from_items:
            if isinstance(item, SubqueryRef):
                visit(item.query)
            elif item.name in views:
                if item.name not in expanded_views:
                    expanded_views.add(item.name)
                    visit(views[item.name])
            else:
                found.add(item.name)
        for sub in condition_subqueries(q.where):
            visit(sub)
        if not isinstance(q.select_list, Star):
            for select_item in q.select_list:
                for sub in expression_subqueries(select_item.expression):
                    visit(sub)
        if q.group_worlds_by is not None and q.group_worlds_by.query is not None:
            visit(q.group_worlds_by.query)

    visit(query)
    return found


def is_world_splitting(query: SelectQuery, views: dict[str, SelectQuery]) -> bool:
    """True iff evaluating *query* can change the set of worlds.

    Choice-of and repair-by-key split worlds; a referenced view splits
    if its definition does; from-subqueries and condition subqueries
    propagate the property. (possible/certain/group-worlds-by merge
    information across worlds but keep the world count, so they do not
    count as splitting — but they do make a subquery non-world-local;
    see :func:`is_world_local`.)
    """
    if query.choice_of or query.repair_by_key:
        return True
    for item in query.from_items:
        if isinstance(item, SubqueryRef) and is_world_splitting(item.query, views):
            return True
        if isinstance(item, TableRef) and item.name in views:
            if is_world_splitting(views[item.name], views):
                return True
    for sub in condition_subqueries(query.where):
        if is_world_splitting(sub, views):
            return True
    return False


def is_world_local(query: SelectQuery, views: dict[str, SelectQuery]) -> bool:
    """True iff the query can be evaluated inside a single world.

    World-local queries neither split worlds nor look across world
    borders (possible/certain/group-worlds-by). Only world-local
    subqueries may be correlated with outer rows.
    """
    if query.closing is not None or query.group_worlds_by is not None:
        return False
    if query.choice_of or query.repair_by_key:
        return False
    for item in query.from_items:
        if isinstance(item, SubqueryRef) and not is_world_local(item.query, views):
            return False
        if isinstance(item, TableRef) and item.name in views:
            if not is_world_local(views[item.name], views):
                return False
    for sub in condition_subqueries(query.where):
        if not is_world_local(sub, views):
            return False
    return True
