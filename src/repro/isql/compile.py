"""Compilation of I-SQL to world-set algebra.

Section 4 defines world-set algebra as the algebra of the I-SQL
fragment without SQL grouping and aggregation. This module implements
that correspondence — :func:`compile_query` maps a parsed
:class:`~repro.isql.ast.SelectQuery` to a
:class:`~repro.core.ast.WSAQuery` following the paper's order of
evaluation (from-product, where, choice-of, repair-by-key,
group-worlds-by, projection, possible/certain) — and then *widens* the
compiled surface with the paper's own extension operators so the whole
Figure 1 statement form stays on the algebra:

* SQL ``GROUP BY``/aggregation compiles to the per-world
  :class:`~repro.core.ast.Aggregate` node (the flat evaluation groups
  on world ids plus the user's columns — no world enumeration);
* ``[not] in`` / ``[not] exists`` condition subqueries decorrelate into
  :class:`~repro.core.ast.SemiJoin` / :class:`~repro.core.ast.AntiJoin`
  — world-splitting subqueries (``… choice of Q``) are compiled as
  independent operands whose fresh world ids the join carries, exactly
  the engine's hoisting;
* a comparison against a correlated scalar *aggregate* subquery becomes
  an aggregation grouped on the correlation key, joined back to the
  outer rows (with the SQL empty-group default applied to outer rows
  without a partner);
* a *non-aggregate* scalar subquery compiles the same way through the
  internal ``single`` pseudo-aggregate — the lone distinct value per
  world/correlation group — with a runtime cardinality guard
  (:class:`~repro.relational.predicates.ScalarGuard`) that reproduces
  the engine's "more than one row" error exactly when an outer row
  reads an ambiguous value;
* condition subqueries under ``or`` decorrelate as a *union of
  semijoin chains*: the condition is normalized (negations pushed onto
  the subquery atoms) and each disjunct filters the same split-free
  outer plan, so ``σ_{A∨B}(R) = chainA(R) ∪ chainB(R)`` — per-disjunct
  world-splitting subqueries stay independent operands with fresh ids;
* ``group worlds by ⟨subquery⟩`` compiles to the subquery-keyed
  grouping nodes :class:`~repro.core.ast.PossGroupKey` /
  :class:`~repro.core.ast.CertGroupKey`;
* ``delete`` and ``update`` conditions (and ``update`` set
  expressions) with subqueries compile through
  :func:`compile_delete` / :func:`compile_update` to a world-grouped
  *match plan* — ``select * from R where φ`` over the relation itself —
  whose flat answer masks/rewrites the inlined table per world id
  (the Section 3 DML rule without ever decoding worlds).

What still raises :class:`FragmentError` — and therefore routes the
inline backend through the explicit engine — is the genuinely
row-at-a-time residue: non-column ``in`` needles, scalar subqueries of
other shapes (``select *``, expressions over several subqueries in one
comparison), correlated subqueries that are themselves complex
(aggregation/grouping/nesting inside), disjunctions over an outer plan
that already splits worlds, scalar-subquery comparisons under ``or``
(a union branch evaluates over *all* outer rows, so its cardinality
guard cannot be as lazy as the engine's short-circuit), DML subqueries
that are not world-local, and ``select`` columns that are not
functionally grouped (the engine's representative-row semantics). :class:`FragmentError` carries the
offending *clause* and its *source span* so diagnostics can point at
the construct.

The compiled query is used two ways: the test suite cross-validates the
I-SQL engine against the Figure 3 semantics on paper scenarios, and a
1↦1 compiled query can be handed to the Section 5 translators to run
I-SQL on any relational engine (the paper's concluding vision).
"""

from __future__ import annotations

from repro.errors import EvaluationError
from repro.core import ast as wsa
from repro.core.ast import contains_world_splitter
from repro.isql import ast
from repro.relational.aggregates import AggSpec, default_value
from repro.relational.predicates import (
    TRUE,
    Arith,
    Comparison as RAComparison,
    Const,
    PadDefault,
    Predicate,
    ScalarGuard,
    as_term,
    conjunction,
    eq,
)
from repro.relational.schema import Schema

#: The internal alias DML match plans qualify the target relation with.
#: The ``#`` prefix keeps it out of the user's alias namespace and makes
#: qualified references inside DML conditions unresolvable — exactly the
#: engine's behavior, which resolves DML conditions against the bare
#: relation schema.
DML_ALIAS = "#dml"

SchemaLike = dict[str, tuple[str, ...]]


class FragmentError(EvaluationError):
    """The query uses constructs outside the evaluatable fragment.

    *clause* names the offending construct (e.g. ``"where"``,
    ``"select list"``) and *span* is its source character range when the
    statement came from the parser — ``isql.explain.inline_route_report``
    surfaces both.
    """

    def __init__(
        self,
        message: str,
        clause: str | None = None,
        span: tuple[int, int] | None = None,
    ) -> None:
        super().__init__(message)
        self.clause = clause
        self.span = span


def _qualified(alias: str, attr: str) -> str:
    return f"{alias}.{attr.rsplit('.', 1)[-1]}"


def _unqualified(name: str) -> str:
    return name.rsplit(".", 1)[-1]


class _Compiler:
    """Compiles one select query given the base-relation schemas."""

    def __init__(self, schemas: SchemaLike, views: dict[str, ast.SelectQuery]) -> None:
        self.schemas = dict(schemas)
        self.views = dict(views or {})
        self._counter = 0

    def _fresh_attr(self, stem: str) -> str:
        """A fresh internal attribute name (never visible in outputs).

        Uses the ``#`` prefix of the engine's hidden relations, *not*
        the ``$`` world-id prefix — these are value attributes.
        """
        self._counter += 1
        return f"#{stem}{self._counter}"

    # -- attribute resolution ------------------------------------------------------

    @staticmethod
    def _resolve(name: str, attrs: tuple[str, ...]) -> str:
        qualifier, _, base = name.rpartition(".")
        if qualifier:
            if name in attrs:
                return name
            raise FragmentError(f"unknown attribute {name!r}")
        matches = [a for a in attrs if a.rsplit(".", 1)[-1] == base]
        if len(matches) == 1:
            return matches[0]
        if not matches:
            raise FragmentError(f"unknown attribute {name!r}")
        raise FragmentError(f"ambiguous attribute {name!r}")

    @staticmethod
    def _resolve_correlated(
        name: str, inner_attrs: tuple[str, ...], outer_attrs: tuple[str, ...]
    ) -> str:
        """Resolve inner-scope first, then the outer rows — the engine's
        correlated-subquery rule.

        Inner attributes carry a fresh ``#s⟨n⟩.`` prefix (so an inner
        alias may repeat an outer one); a qualified reference matches an
        inner attribute by suffix, an outer attribute exactly.
        """
        qualifier, _, base = name.rpartition(".")
        if qualifier:
            inner = [
                a for a in inner_attrs if a == name or a.endswith("." + name)
            ]
            if len(inner) == 1:
                return inner[0]
            if len(inner) > 1:
                raise FragmentError(f"ambiguous attribute {name!r}")
            if name in outer_attrs:
                return name
            raise FragmentError(f"unknown attribute {name!r}")
        inner = [a for a in inner_attrs if _unqualified(a) == base]
        if len(inner) == 1:
            return inner[0]
        if len(inner) > 1:
            raise FragmentError(f"ambiguous attribute {name!r}")
        outer = [a for a in outer_attrs if _unqualified(a) == base]
        if len(outer) == 1:
            return outer[0]
        if not outer:
            raise FragmentError(f"unknown attribute {name!r}")
        raise FragmentError(f"ambiguous attribute {name!r}")

    def _value_term(self, expr: ast.ValueExpr, attrs: tuple[str, ...]):
        if isinstance(expr, ast.Column):
            return self._resolve(expr.display(), attrs)
        if isinstance(expr, ast.Literal):
            return Const(expr.value)
        if isinstance(expr, ast.Arithmetic):
            return Arith(
                expr.op,
                self._value_term(expr.left, attrs),
                self._value_term(expr.right, attrs),
            )
        raise FragmentError(
            "only columns, literals and arithmetic are allowed here",
            clause="where",
        )

    def _condition(self, cond: ast.Condition, attrs: tuple[str, ...]) -> Predicate:
        if isinstance(cond, ast.Comparison):
            return RAComparison(
                self._value_term(cond.left, attrs),
                cond.op,
                self._value_term(cond.right, attrs),
            )
        if isinstance(cond, ast.BoolOp):
            left = self._condition(cond.left, attrs)
            right = self._condition(cond.right, attrs)
            return (left & right) if cond.op == "and" else (left | right)
        if isinstance(cond, ast.NotOp):
            return ~self._condition(cond.operand, attrs)
        raise FragmentError(
            f"{type(cond).__name__} conditions are outside the algebra fragment",
            clause="where",
            span=getattr(cond, "span", None),
        )

    def _condition_correlated(
        self,
        cond: ast.Condition,
        inner_attrs: tuple[str, ...],
        outer_attrs: tuple[str, ...],
        span: tuple[int, int] | None,
    ) -> Predicate:
        """A subquery's condition over the joined (inner, outer) scope."""
        if isinstance(cond, ast.Comparison):
            return RAComparison(
                self._value_term_correlated(cond.left, inner_attrs, outer_attrs, span),
                cond.op,
                self._value_term_correlated(cond.right, inner_attrs, outer_attrs, span),
            )
        if isinstance(cond, ast.BoolOp):
            left = self._condition_correlated(cond.left, inner_attrs, outer_attrs, span)
            right = self._condition_correlated(cond.right, inner_attrs, outer_attrs, span)
            return (left & right) if cond.op == "and" else (left | right)
        if isinstance(cond, ast.NotOp):
            return ~self._condition_correlated(
                cond.operand, inner_attrs, outer_attrs, span
            )
        raise FragmentError(
            "nested condition subqueries inside a correlated subquery are "
            "outside the evaluatable fragment",
            clause="condition subquery",
            span=span,
        )

    def _value_term_correlated(
        self,
        expr: ast.ValueExpr,
        inner_attrs: tuple[str, ...],
        outer_attrs: tuple[str, ...],
        span: tuple[int, int] | None,
    ):
        if isinstance(expr, ast.Column):
            return self._resolve_correlated(expr.display(), inner_attrs, outer_attrs)
        if isinstance(expr, ast.Literal):
            return Const(expr.value)
        if isinstance(expr, ast.Arithmetic):
            return Arith(
                expr.op,
                self._value_term_correlated(expr.left, inner_attrs, outer_attrs, span),
                self._value_term_correlated(expr.right, inner_attrs, outer_attrs, span),
            )
        raise FragmentError(
            "a correlated subquery's condition may only use columns, "
            "literals and arithmetic",
            clause="condition subquery",
            span=span,
        )

    # -- compilation -----------------------------------------------------------------

    def compile(self, query: ast.SelectQuery) -> tuple[wsa.WSAQuery, tuple[str, ...]]:
        """Compile to a WSA query plus its (unqualified) output attributes."""
        compiled, attrs = self._compile_from_items(query)

        # Step 2: the where condition — plain conjuncts as one selection,
        # subquery conjuncts decorrelated into semijoins/antijoins.
        if query.where is not None:
            compiled = self._compile_where(query.where, compiled, attrs)

        # Step 3: choice-of, repair-by-key.
        if query.choice_of:
            compiled = wsa.choice_of(
                tuple(self._resolve(a, attrs) for a in query.choice_of), compiled
            )
        if query.repair_by_key:
            compiled = wsa.repair_by_key(
                tuple(self._resolve(a, attrs) for a in query.repair_by_key), compiled
            )

        # Step 4: aggregation / projection, group-worlds-by, closing.
        aggregated = not isinstance(query.select_list, ast.Star) and (
            bool(query.group_by) or self._has_aggregates(query)
        )
        if aggregated:
            return self._compile_aggregated_tail(query, compiled, attrs)
        projection = self._projection(query, attrs)
        return self._finish(query, compiled, attrs, projection)

    def _compile_from_items(
        self, query: ast.SelectQuery
    ) -> tuple[wsa.WSAQuery, tuple[str, ...]]:
        """Step 1: the from-product, with alias-qualified attributes."""
        compiled: wsa.WSAQuery | None = None
        attrs: tuple[str, ...] = ()
        for item in query.from_items:
            if isinstance(item, ast.TableRef) and item.name in self.views:
                item = ast.SubqueryRef(self.views[item.name], item.alias)
            if isinstance(item, ast.TableRef):
                if item.name not in self.schemas:
                    raise FragmentError(f"unknown relation {item.name!r}")
                item_query: wsa.WSAQuery = wsa.rel(item.name)
                item_attrs = self.schemas[item.name]
            else:
                item_query, item_attrs = self.compile(item.query)
            mapping = {a: _qualified(item.alias, a) for a in item_attrs}
            item_query = wsa.rename(mapping, item_query)
            item_attrs = tuple(mapping[a] for a in item_attrs)
            if compiled is None:
                compiled, attrs = item_query, item_attrs
            else:
                compiled = wsa.product(compiled, item_query)
                attrs = attrs + item_attrs

        assert compiled is not None
        return compiled, attrs

    # -- the where clause and its condition subqueries ---------------------------------

    @classmethod
    def _conjuncts(cls, condition: ast.Condition) -> list[ast.Condition]:
        if isinstance(condition, ast.BoolOp) and condition.op == "and":
            return cls._conjuncts(condition.left) + cls._conjuncts(condition.right)
        return [condition]

    def _compile_where(
        self, condition: ast.Condition, compiled: wsa.WSAQuery, attrs: tuple[str, ...]
    ) -> wsa.WSAQuery:
        """Conjuncts compile **in syntactic order** — error parity.

        The engine evaluates a conjunction left to right per row, with
        short-circuiting: a scalar-cardinality (or undefined-arithmetic)
        error in conjunct k fires iff some row survives conjuncts 1…k−1
        and reaches it. Chaining σ/semijoin operators in the same order
        reproduces that exactly — a guard in conjunct k only ever sees
        rows the preceding operators kept. Consecutive *plain* conjuncts
        still batch into one σ (``And.bind`` short-circuits left to
        right, so batching preserves the engine's order within the
        group), keeping the σ(×) hash-join fusion for the common
        join-predicates-first shape.
        """
        pending: list[Predicate] = []

        def flushed(plan: wsa.WSAQuery) -> wsa.WSAQuery:
            if pending:
                plan = wsa.select(conjunction(pending), plan)
                pending.clear()
            return plan

        for conjunct in self._conjuncts(condition):
            if not ast.condition_subqueries(conjunct):
                pending.append(self._condition(conjunct, attrs))
            else:
                compiled = self._compile_condition_plan(
                    conjunct, flushed(compiled), attrs
                )
        return flushed(compiled)

    @classmethod
    def _nnf(cls, cond: ast.Condition, negate: bool = False) -> ast.Condition:
        """Negation normal form: push ``not`` onto the atoms.

        De Morgan over ``and``/``or``; ``[not] in`` / ``[not] exists``
        absorb the negation into their ``negated`` flag; a negated
        comparison keeps its ``not`` (the plain-predicate path handles
        it, and a negated scalar-subquery comparison stays residue).
        """
        if isinstance(cond, ast.NotOp):
            return cls._nnf(cond.operand, not negate)
        if isinstance(cond, ast.BoolOp):
            op = cond.op
            if negate:
                op = "or" if op == "and" else "and"
            return ast.BoolOp(op, cls._nnf(cond.left, negate), cls._nnf(cond.right, negate))
        if not negate:
            return cond
        if isinstance(cond, ast.InSubquery):
            return ast.InSubquery(cond.needle, cond.query, not cond.negated, cond.span)
        if isinstance(cond, ast.ExistsSubquery):
            return ast.ExistsSubquery(cond.query, not cond.negated, cond.span)
        return ast.NotOp(cond)

    @classmethod
    def _contains_scalar_comparison(cls, cond: ast.Condition) -> bool:
        """True iff a comparison under *cond* holds a scalar subquery."""
        if isinstance(cond, ast.Comparison):
            return any(
                cls._scalar_subqueries(side) for side in (cond.left, cond.right)
            )
        if isinstance(cond, ast.BoolOp):
            return cls._contains_scalar_comparison(
                cond.left
            ) or cls._contains_scalar_comparison(cond.right)
        if isinstance(cond, ast.NotOp):
            return cls._contains_scalar_comparison(cond.operand)
        return False

    @classmethod
    def _disjuncts(cls, condition: ast.Condition) -> list[ast.Condition]:
        if isinstance(condition, ast.BoolOp) and condition.op == "or":
            return cls._disjuncts(condition.left) + cls._disjuncts(condition.right)
        return [condition]

    def _compile_condition_plan(
        self, cond: ast.Condition, compiled: wsa.WSAQuery, attrs: tuple[str, ...]
    ) -> wsa.WSAQuery:
        """Filter *compiled* by an arbitrary and/or/not condition tree.

        Conjunctions chain (σ for the plain part, one semijoin/antijoin
        or scalar join per subquery atom); disjunctions compile as a
        *union of chains* over the same outer plan —
        ``σ_{A∨B}(R) = chainA(R) ∪ chainB(R)`` holds per world because
        answers are sets. The union references the outer plan once per
        disjunct, so the plan must be split-free: duplicating a
        world-splitting subtree would pair independent choice ids (see
        :func:`~repro.core.ast.contains_world_splitter`). Negations were
        already pushed onto the atoms by :meth:`_nnf`.
        """
        cond = self._nnf(cond)
        if isinstance(cond, ast.BoolOp) and cond.op == "and":
            return self._compile_where(cond, compiled, attrs)
        if isinstance(cond, ast.BoolOp):  # an ``or`` node
            if not ast.condition_subqueries(cond):
                return wsa.select(self._condition(cond, attrs), compiled)
            if contains_world_splitter(compiled):
                raise FragmentError(
                    "condition subqueries under 'or' cannot be decorrelated "
                    "when the outer plan already splits worlds (choice-of / "
                    "repair-by-key in the from list or an earlier subquery)",
                    clause="where",
                    span=self._condition_span(cond),
                )
            if self._contains_scalar_comparison(cond):
                # Every union branch evaluates over *all* outer rows, so
                # a ScalarGuard in one disjunct would fire for rows the
                # engine's short-circuit 'or' never evaluates it on.
                # Membership/existence atoms are total — only scalar
                # comparisons carry error semantics — so they stay.
                raise FragmentError(
                    "scalar subqueries under 'or' are outside the "
                    "evaluatable fragment (their cardinality error "
                    "cannot be made as lazy as the engine's "
                    "short-circuit)",
                    clause="where",
                    span=self._condition_span(cond),
                )
            branches = [
                self._compile_condition_plan(disjunct, compiled, attrs)
                for disjunct in self._disjuncts(cond)
            ]
            result = branches[0]
            for branch in branches[1:]:
                result = wsa.union(result, branch)
            return result
        if not ast.condition_subqueries(cond):
            return wsa.select(self._condition(cond, attrs), compiled)
        return self._compile_subquery_atom(cond, compiled, attrs)

    def _compile_subquery_atom(
        self, conjunct: ast.Condition, compiled: wsa.WSAQuery, attrs: tuple[str, ...]
    ) -> wsa.WSAQuery:
        """One subquery-bearing atom applied as a filter on *compiled*."""
        negate = False
        while isinstance(conjunct, ast.NotOp):
            negate = not negate
            conjunct = conjunct.operand
        if isinstance(conjunct, ast.InSubquery):
            return self._compile_membership(
                conjunct, conjunct.negated != negate, compiled, attrs
            )
        if isinstance(conjunct, ast.ExistsSubquery):
            return self._compile_exists(
                conjunct, conjunct.negated != negate, compiled, attrs
            )
        if isinstance(conjunct, ast.Comparison) and not negate:
            return self._compile_scalar_comparison(conjunct, compiled, attrs)
        if isinstance(conjunct, ast.BoolOp):
            return self._compile_condition_plan(conjunct, compiled, attrs)
        raise FragmentError(
            "condition subqueries under a negated comparison are "
            "outside the evaluatable fragment",
            clause="where",
            span=self._condition_span(conjunct),
        )

    @classmethod
    def _condition_span(cls, cond: ast.Condition) -> tuple[int, int] | None:
        """The widest source span covered by *cond*'s parsed pieces."""
        spans: list[tuple[int, int]] = []

        def visit(node: ast.Condition) -> None:
            span = getattr(node, "span", None)
            if span is not None:
                spans.append(span)
            if isinstance(node, ast.BoolOp):
                visit(node.left)
                visit(node.right)
            elif isinstance(node, ast.NotOp):
                visit(node.operand)

        visit(cond)
        if not spans:
            return None
        return (min(s for s, _ in spans), max(e for _, e in spans))

    def _subquery_mode(
        self, sub: ast.SelectQuery, span: tuple[int, int] | None
    ) -> str:
        """How a condition subquery evaluates: hoisted or correlated.

        ``"independent"`` — the subquery is compiled on its own (the
        engine's hoisting of world-splitting subqueries, and the
        world-local-but-complex case where correlation would anyway
        fail attribute resolution); ``"correlated"`` — a plain
        from+where subquery decorrelated against the outer rows.
        """
        if ast.is_world_splitting(sub, self.views):
            return "independent"
        if not ast.is_world_local(sub, self.views):
            raise FragmentError(
                "a condition subquery closing worlds (possible/certain/"
                "group worlds by) cannot be evaluated per world",
                clause="condition subquery",
                span=span,
            )
        if (
            sub.group_by
            or self._has_aggregates(sub)
            or ast.condition_subqueries(sub.where)
        ):
            return "independent"
        return "correlated"

    def _isolated_from_items(
        self, sub: ast.SelectQuery
    ) -> tuple[wsa.WSAQuery, tuple[str, ...]]:
        """The subquery's from-product, isolated under a fresh prefix.

        Renaming every inner attribute to ``#s⟨n⟩.alias.attr`` keeps the
        decorrelated operand's schema disjoint from the outer rows even
        when the subquery reuses an outer alias (``… Dep in (select Dep
        from Flights)`` inside a query over ``Flights``).
        """
        inner, inner_attrs = self._compile_from_items(sub)
        prefix = self._fresh_attr("s")
        mapping = {a: f"{prefix}.{a}" for a in inner_attrs}
        return wsa.rename(mapping, inner), tuple(mapping[a] for a in inner_attrs)

    def _compile_membership(
        self,
        cond: ast.InSubquery,
        negated: bool,
        compiled: wsa.WSAQuery,
        attrs: tuple[str, ...],
    ) -> wsa.WSAQuery:
        span = cond.span
        if not isinstance(cond.needle, ast.Column):
            raise FragmentError(
                "the [not] in needle must be a column reference",
                clause="where",
                span=span,
            )
        needle = self._resolve(cond.needle.display(), attrs)
        sub = cond.query
        if self._subquery_mode(sub, span) == "independent":
            inner, inner_attrs = self.compile(sub)
            member = self._membership_attr(cond.needle, inner_attrs, span)
            fresh = self._fresh_attr("in")
            right: wsa.WSAQuery = wsa.rename(
                {member: fresh}, wsa.project((member,), inner)
            )
            predicate: Predicate = eq(needle, fresh)
        else:
            right, inner_attrs = self._isolated_from_items(sub)
            member = self._membership_attr_correlated(
                sub, inner_attrs, cond.needle, span
            )
            predicate = eq(needle, member)
            if sub.where is not None:
                predicate = predicate & self._condition_correlated(
                    sub.where, inner_attrs, attrs, span
                )
        node = wsa.antijoin if negated else wsa.semijoin
        return node(predicate, compiled, right)

    def _membership_attr(
        self,
        needle: ast.Column,
        output_attrs: tuple[str, ...],
        span: tuple[int, int] | None,
    ) -> str:
        """The compared column of an independently compiled IN subquery."""
        if len(output_attrs) == 1:
            return output_attrs[0]
        matches = [a for a in output_attrs if _unqualified(a) == needle.name]
        if len(matches) == 1:
            return matches[0]
        raise FragmentError(
            "an IN subquery must produce one column (or share the needle's name)",
            clause="where",
            span=span,
        )

    def _membership_attr_correlated(
        self,
        sub: ast.SelectQuery,
        inner_attrs: tuple[str, ...],
        needle: ast.Column,
        span: tuple[int, int] | None,
    ) -> str:
        """The compared column of a decorrelated IN subquery (pre-projection)."""
        items = sub.select_list
        if isinstance(items, ast.Star):
            pairs = [(_unqualified(a), a) for a in inner_attrs]
        else:
            pairs = []
            for item in items:
                if not isinstance(item.expression, ast.Column):
                    raise FragmentError(
                        "an IN subquery's select list may only contain columns",
                        clause="where",
                        span=span,
                    )
                source = self._resolve_correlated(
                    item.expression.display(), inner_attrs, ()
                )
                pairs.append((item.alias or item.expression.name, source))
        if len(pairs) == 1:
            return pairs[0][1]
        matches = [src for out, src in pairs if _unqualified(out) == needle.name]
        if len(matches) == 1:
            return matches[0]
        raise FragmentError(
            "an IN subquery must produce one column (or share the needle's name)",
            clause="where",
            span=span,
        )

    def _compile_exists(
        self,
        cond: ast.ExistsSubquery,
        negated: bool,
        compiled: wsa.WSAQuery,
        attrs: tuple[str, ...],
    ) -> wsa.WSAQuery:
        span = cond.span
        sub = cond.query
        if self._subquery_mode(sub, span) == "independent":
            inner, _ = self.compile(sub)
            right: wsa.WSAQuery = wsa.project((), inner)
            predicate: Predicate = TRUE
        else:
            right, inner_attrs = self._isolated_from_items(sub)
            # The select list does not affect existence, but the engine
            # resolves it when rows reach the projection — reject
            # unresolvable lists statically so both routes refuse the
            # same statements (the fallback then reproduces the
            # engine's exact behavior).
            self._validate_correlated_select(sub, inner_attrs, attrs, span)
            predicate = (
                TRUE
                if sub.where is None
                else self._condition_correlated(sub.where, inner_attrs, attrs, span)
            )
        node = wsa.antijoin if negated else wsa.semijoin
        return node(predicate, compiled, right)

    def _validate_correlated_select(
        self,
        sub: ast.SelectQuery,
        inner_attrs: tuple[str, ...],
        outer_attrs: tuple[str, ...],
        span: tuple[int, int] | None,
    ) -> None:
        """Every column of a correlated subquery's select list must resolve."""
        if isinstance(sub.select_list, ast.Star):
            return

        def visit(expr: ast.ValueExpr) -> None:
            if isinstance(expr, ast.Column):
                self._resolve_correlated(expr.display(), inner_attrs, outer_attrs)
            elif isinstance(expr, ast.Arithmetic):
                visit(expr.left)
                visit(expr.right)
            elif not isinstance(expr, ast.Literal):
                raise FragmentError(
                    "a correlated subquery's select list may only contain "
                    "columns, literals and arithmetic",
                    clause="condition subquery",
                    span=span,
                )

        for item in sub.select_list:
            visit(item.expression)

    # -- comparisons against scalar aggregate subqueries ---------------------------------

    def _compile_scalar_comparison(
        self,
        cond: ast.Comparison,
        compiled: wsa.WSAQuery,
        attrs: tuple[str, ...],
    ) -> wsa.WSAQuery:
        subqueries = [
            expr
            for side in (cond.left, cond.right)
            for expr in self._scalar_subqueries(side)
        ]
        if len(subqueries) != 1:
            raise FragmentError(
                "exactly one scalar subquery per comparison is supported",
                clause="where",
                span=subqueries[0].span if subqueries else None,
            )
        scalar = subqueries[0]
        plan, substitution = self._scalar_operand(scalar, compiled, attrs)
        predicate = self._comparison_predicate(cond, attrs, substitution, scalar.span)
        return wsa.project(attrs, wsa.select(predicate, plan))

    def _scalar_operand(
        self,
        scalar: ast.ScalarSubquery,
        compiled: wsa.WSAQuery,
        attrs: tuple[str, ...],
    ) -> tuple[wsa.WSAQuery, object]:
        """*compiled* extended with the scalar subquery's per-row value.

        Returns ``(plan, term)``: *plan* evaluates to the outer rows
        joined with one value column per world/correlation group, and
        *term* reads that value during predicate or set-expression
        evaluation. Aggregate subqueries carry their SQL fold; a bare
        column compiles through the internal ``single`` pseudo-aggregate
        whose read-side :class:`ScalarGuard` reproduces the engine's
        "more than one row" error lazily. Used by the comparison path
        and by :func:`compile_update` for ``set`` expressions — the
        outer plan is referenced exactly once either way, so even a
        world-splitting outer subtree is never evaluated twice.
        """
        span = scalar.span
        sub = scalar.query

        items = sub.select_list
        shape_ok = (
            not isinstance(items, ast.Star)
            and len(items) == 1
            and isinstance(items[0].expression, (ast.Aggregate, ast.Column))
            and not sub.group_by
            and sub.closing is None
            and sub.group_worlds_by is None
            and not ast.condition_subqueries(sub.where)
        )
        if not shape_ok:
            raise FragmentError(
                "only scalar subqueries of the form (select ⟨aggregate or "
                "column⟩ from … [where …]) are evaluated on the algebra",
                clause="scalar subquery",
                span=span,
            )
        expr = items[0].expression
        if isinstance(expr, ast.Aggregate):
            function, arg_column = expr.function, expr.argument
        else:
            function, arg_column = "single", expr
        agg_attr = self._fresh_attr("agg")

        def guarded(term: object) -> object:
            return ScalarGuard(term) if function == "single" else term

        if ast.is_world_splitting(sub, self.views):
            # The engine hoists world-splitting scalar subqueries
            # (uncorrelated by construction); a global aggregate yields
            # exactly one row per world, and a bare-column subquery
            # folds through ``single`` so each world's row count is
            # guarded at read time, exactly like the hoisted relation.
            inner_full, outputs = self.compile(sub)
            if len(outputs) != 1:
                raise FragmentError(
                    "a scalar subquery must produce one column",
                    clause="scalar subquery",
                    span=span,
                )
            if function == "single":
                spec = AggSpec(agg_attr, "single", outputs[0])
                scalar_query: wsa.WSAQuery = wsa.aggregate((), (spec,), inner_full)
            else:
                scalar_query = wsa.rename({outputs[0]: agg_attr}, inner_full)
            return wsa.product(compiled, scalar_query), guarded(agg_attr)

        inner, inner_attrs = self._isolated_from_items(sub)
        inner_predicates: list[Predicate] = []
        pairs: list[tuple[str, str]] = []  # (outer attr, inner attr)
        for conjunct in self._conjuncts(sub.where) if sub.where is not None else []:
            split = self._classify_scalar_conjunct(conjunct, inner_attrs, attrs, span)
            if isinstance(split, tuple):
                pairs.append(split)
            else:
                inner_predicates.append(split)
        if inner_predicates:
            inner = wsa.select(conjunction(inner_predicates), inner)
        argument = (
            self._resolve_correlated(arg_column.display(), inner_attrs, ())
            if arg_column is not None
            else None
        )
        spec = AggSpec(agg_attr, function, argument)

        if not pairs:
            scalar_query = wsa.aggregate((), (spec,), inner)
            return wsa.product(compiled, scalar_query), guarded(agg_attr)

        # Correlated: aggregate per correlation key, rename the keys to
        # their outer partners, and pad-join back onto the outer rows —
        # a single reference to the outer plan, so even a world-splitting
        # outer subtree is evaluated exactly once. Outer rows without a
        # partner carry PAD on the aggregate column; the PadDefault term
        # turns it into the SQL empty-group default (count/sum/avg 0,
        # min/max undefined, 0 for a bare-column subquery — exactly the
        # engine's per-row scalar value).
        keys = tuple(dict.fromkeys(inner_attr for _, inner_attr in pairs))
        outers = tuple(dict.fromkeys(outer_attr for outer_attr, _ in pairs))
        if len(keys) != len(pairs) or len(outers) != len(pairs):
            raise FragmentError(
                "correlation equalities must pair distinct inner and "
                "outer attributes",
                clause="scalar subquery",
                span=span,
            )
        scalar_query = wsa.aggregate(keys, (spec,), inner)
        key_map = {inner_attr: outer_attr for outer_attr, inner_attr in pairs}
        padded = wsa.pad_join(compiled, wsa.rename(key_map, scalar_query))
        substitution = guarded(PadDefault(agg_attr, default_value(spec)))
        return padded, substitution

    @staticmethod
    def _scalar_subqueries(expr: ast.ValueExpr) -> list[ast.ScalarSubquery]:
        found: list[ast.ScalarSubquery] = []

        def visit(node: ast.ValueExpr) -> None:
            if isinstance(node, ast.ScalarSubquery):
                found.append(node)
            elif isinstance(node, ast.Arithmetic):
                visit(node.left)
                visit(node.right)

        visit(expr)
        return found

    def _classify_scalar_conjunct(
        self,
        conjunct: ast.Condition,
        inner_attrs: tuple[str, ...],
        outer_attrs: tuple[str, ...],
        span: tuple[int, int] | None,
    ):
        """An inner-only predicate, or an (outer, inner) equality pair."""
        try:
            return self._condition_correlated(conjunct, inner_attrs, (), span)
        except FragmentError:
            pass
        if (
            isinstance(conjunct, ast.Comparison)
            and conjunct.op == "="
            and isinstance(conjunct.left, ast.Column)
            and isinstance(conjunct.right, ast.Column)
        ):
            for first, second in (
                (conjunct.left, conjunct.right),
                (conjunct.right, conjunct.left),
            ):
                try:
                    outer = self._resolve(first.display(), outer_attrs)
                    inner = self._resolve_correlated(
                        second.display(), inner_attrs, ()
                    )
                    return (outer, inner)
                except FragmentError:
                    continue
        raise FragmentError(
            "a correlated scalar subquery may filter on inner attributes "
            "and equate inner with outer attributes, nothing else",
            clause="scalar subquery",
            span=span,
        )

    def _substituted_term(
        self,
        expr: ast.ValueExpr,
        outer_attrs: tuple[str, ...],
        substitution,
        span: tuple[int, int] | None,
        clause: str = "where",
    ):
        """A value expression as a predicate term, with its scalar
        subquery (there is at most one) replaced by *substitution*."""
        if isinstance(expr, ast.ScalarSubquery):
            return substitution
        if isinstance(expr, ast.Column):
            return self._resolve(expr.display(), outer_attrs)
        if isinstance(expr, ast.Literal):
            return Const(expr.value)
        if isinstance(expr, ast.Arithmetic):
            return Arith(
                expr.op,
                self._substituted_term(
                    expr.left, outer_attrs, substitution, span, clause
                ),
                self._substituted_term(
                    expr.right, outer_attrs, substitution, span, clause
                ),
            )
        raise FragmentError(
            "unsupported expression around a scalar subquery",
            clause=clause,
            span=span,
        )

    def _comparison_predicate(
        self,
        cond: ast.Comparison,
        outer_attrs: tuple[str, ...],
        substitution,
        span: tuple[int, int] | None,
    ) -> Predicate:
        """The comparison with its scalar subquery replaced by a term."""
        return RAComparison(
            self._substituted_term(cond.left, outer_attrs, substitution, span),
            cond.op,
            self._substituted_term(cond.right, outer_attrs, substitution, span),
        )

    # -- DML: the Section 3 rule as flat match plans -----------------------------------

    def _require_world_local_subqueries(
        self, subqueries: list[ast.SelectQuery], clause: str
    ) -> None:
        """DML subqueries must run inside one world — the engine's rule.

        A world-splitting or world-closing subquery in a DML condition
        raises in the engine too (when a row reaches it), so rejecting
        it here routes the statement through the fallback, which then
        reproduces the engine's behavior exactly.
        """
        for sub in subqueries:
            if not ast.is_world_local(sub, self.views):
                raise FragmentError(
                    "a DML subquery must be evaluable inside one world "
                    "(no choice-of, repair-by-key, possible/certain, or "
                    "group worlds by)",
                    clause=clause,
                )

    def compile_dml_match(
        self, relation: str, where: ast.Condition | None
    ) -> tuple[wsa.WSAQuery, tuple[str, ...]]:
        """The *match plan* of a DML statement: ``select * from R where φ``.

        Evaluated on the inlined representation it yields, per world id,
        exactly the rows the Section 3 rule deletes (or updates) in that
        world — the "world-grouped predicate relation" the backend
        subtracts from (or rewrites within) the flat table. The target
        relation is aliased :data:`DML_ALIAS` so qualified references
        inside the condition fail to resolve, like they do against the
        engine's bare-schema resolver.
        """
        if relation not in self.schemas:
            raise FragmentError(f"unknown relation {relation!r}")
        self._require_world_local_subqueries(
            ast.condition_subqueries(where), "where"
        )
        query = ast.SelectQuery(
            select_list=ast.Star(),
            from_items=(ast.TableRef(relation, DML_ALIAS),),
            where=where,
        )
        return self.compile(query)

    def compile_update_plan(
        self, statement: ast.Update
    ) -> tuple[wsa.WSAQuery, tuple[str, ...], tuple[tuple[str, object], ...]]:
        """An update's match plan plus one value term per set clause.

        The match plan is extended (product / pad-join, via
        :meth:`_scalar_operand`) with one value column per set
        expression containing a scalar subquery; the returned terms
        evaluate each clause's new value against a row of the final
        plan's answer — original columns first, so every clause reads
        the *pre-update* row like the engine does.
        """
        plan, attrs = self.compile_dml_match(statement.relation, statement.where)
        available = set(self.schemas[statement.relation])
        set_terms: list[tuple[str, object]] = []
        for clause in statement.settings:
            if clause.attribute not in available:
                raise FragmentError(
                    f"unknown attribute {clause.attribute!r} in set clause",
                    clause="set",
                )
            plan, term = self._compile_set_expression(clause.expression, plan, attrs)
            set_terms.append((clause.attribute, term))
        return plan, attrs, tuple(set_terms)

    def _compile_set_expression(
        self, expression: ast.ValueExpr, plan: wsa.WSAQuery, attrs: tuple[str, ...]
    ) -> tuple[wsa.WSAQuery, object]:
        """One ``set attr = expr`` right-hand side as (plan, value term)."""
        scalars = self._scalar_subqueries(expression)
        if not scalars:
            return plan, as_term(self._value_term(expression, attrs))
        if len(scalars) > 1:
            raise FragmentError(
                "at most one scalar subquery per set expression is "
                "evaluated on the algebra",
                clause="set",
                span=scalars[0].span,
            )
        self._require_world_local_subqueries([scalars[0].query], "set")
        plan, substitution = self._scalar_operand(scalars[0], plan, attrs)
        term = self._substituted_term(
            expression, attrs, substitution, scalars[0].span, clause="set"
        )
        return plan, as_term(term)

    # -- step 4: aggregation, projection, grouping, closing ---------------------------------

    def _compile_aggregated_tail(
        self,
        query: ast.SelectQuery,
        compiled: wsa.WSAQuery,
        attrs: tuple[str, ...],
    ) -> tuple[wsa.WSAQuery, tuple[str, ...]]:
        """SQL GROUP BY / aggregates as the per-world Aggregate node."""
        items = query.select_list
        assert not isinstance(items, ast.Star)
        group_sources = tuple(self._resolve(a, attrs) for a in query.group_by)
        projection: list[tuple[str, str]] = []
        specs: list[AggSpec] = []
        for index, item in enumerate(items):
            name = self._output_name(item, index)
            expr = item.expression
            if isinstance(expr, ast.Column):
                source = self._resolve(expr.display(), attrs)
                if source not in group_sources:
                    raise FragmentError(
                        f"select column {expr.display()!r} is not in the "
                        "GROUP BY key (the engine's representative-row "
                        "semantics are outside the evaluatable fragment)",
                        clause="select list",
                        span=item.span,
                    )
                projection.append((name, source))
            elif isinstance(expr, ast.Aggregate):
                argument = (
                    self._resolve(expr.argument.display(), attrs)
                    if expr.argument is not None
                    else None
                )
                internal = self._fresh_attr("agg")
                specs.append(AggSpec(internal, expr.function, argument))
                projection.append((name, internal))
            else:
                raise FragmentError(
                    "an aggregated select list may only contain grouped "
                    "columns and aggregate calls",
                    clause="select list",
                    span=item.span,
                )
        if specs:
            compiled = wsa.aggregate(group_sources, tuple(specs), compiled)
            return self._finish(
                query, compiled, attrs, projection, agg_group_sources=group_sources
            )
        # Pure GROUP BY (no aggregates): the distinct projection π is
        # exactly the engine's one-representative-per-group rows.
        return self._finish(query, compiled, attrs, projection)

    def _finish(
        self,
        query: ast.SelectQuery,
        compiled: wsa.WSAQuery,
        attrs: tuple[str, ...],
        projection: list[tuple[str, str]],
        agg_group_sources: tuple[str, ...] | None = None,
    ) -> tuple[wsa.WSAQuery, tuple[str, ...]]:
        """Group-worlds-by, projection, closing, and the output renaming.

        *compiled* is the (possibly aggregated) child; *attrs* the
        pre-projection attributes against which ``group worlds by``
        attribute lists resolve. On the aggregated path
        (*agg_group_sources* set) attribute grouping must stay within
        the GROUP BY key — there π over the aggregate equals π over the
        pre-aggregation rows, so the fingerprints coincide with the
        engine's.
        """
        output = tuple(out for out, _ in projection)
        sources = tuple(src for _, src in projection)

        clause = query.group_worlds_by
        if clause is not None:
            if query.closing is None:
                raise FragmentError("group worlds by requires possible/certain")
            if clause.attributes is not None:
                group = tuple(self._resolve(a, attrs) for a in clause.attributes)
                if agg_group_sources is not None and not set(group) <= set(
                    agg_group_sources
                ):
                    raise FragmentError(
                        "group worlds by on attributes outside the GROUP BY "
                        "key of an aggregated query",
                        clause="group worlds by",
                        span=clause.span,
                    )
                constructor = (
                    wsa.poss_group if query.closing == "possible" else wsa.cert_group
                )
                compiled = constructor(group, sources, compiled)
            else:
                assert clause.query is not None
                key = self._compile_world_group_key(clause)
                keyed = (
                    wsa.poss_group_key
                    if query.closing == "possible"
                    else wsa.cert_group_key
                )
                compiled = keyed(sources, compiled, key)
        else:
            compiled = wsa.project(sources, compiled)
            if query.closing == "possible":
                compiled = wsa.poss(compiled)
            elif query.closing == "certain":
                compiled = wsa.cert(compiled)

        mapping = {src: out for out, src in projection if src != out}
        if mapping:
            compiled = wsa.rename(mapping, compiled)
        return compiled, output

    def _compile_world_group_key(self, clause: ast.GroupWorldsBy) -> wsa.WSAQuery:
        """The companion query of ``group worlds by ⟨subquery⟩``."""
        sub = clause.query
        assert sub is not None
        if not ast.is_world_local(sub, self.views):
            raise FragmentError(
                "the group-worlds-by subquery must be evaluable inside one world",
                clause="group worlds by",
                span=clause.span,
            )
        try:
            key, _ = self.compile(sub)
        except FragmentError as err:
            if err.clause is not None:
                raise
            raise FragmentError(
                f"group worlds by ⟨subquery⟩: {err}",
                clause="group worlds by",
                span=clause.span,
            ) from err
        return key

    def _projection(
        self, query: ast.SelectQuery, attrs: tuple[str, ...]
    ) -> list[tuple[str, str]]:
        """(output name, qualified source) pairs for the select list."""
        if isinstance(query.select_list, ast.Star):
            pairs = []
            seen: dict[str, int] = {}
            for attr in attrs:
                base = attr.rsplit(".", 1)[-1]
                seen[base] = seen.get(base, 0) + 1
            for attr in attrs:
                base = attr.rsplit(".", 1)[-1]
                pairs.append((base if seen[base] == 1 else attr, attr))
            return pairs
        pairs = []
        for item in query.select_list:
            if not isinstance(item.expression, ast.Column):
                raise FragmentError(
                    "a non-aggregated select list may only contain columns",
                    clause="select list",
                    span=item.span,
                )
            source = self._resolve(item.expression.display(), attrs)
            output = item.alias or item.expression.name
            pairs.append((output, source))
        return pairs

    #: The engine's output naming — one shared definition, so compiled
    #: answer schemas can never drift from the engine's.
    _output_name = staticmethod(ast.select_item_output_name)

    @staticmethod
    def _has_aggregates(query: ast.SelectQuery) -> bool:
        if isinstance(query.select_list, ast.Star):
            return False
        from repro.isql.engine import Engine

        return any(
            Engine._contains_aggregate(item.expression) for item in query.select_list
        )


def _plain_schemas(schemas: SchemaLike | dict[str, Schema]) -> SchemaLike:
    return {
        name: (schema.attributes if isinstance(schema, Schema) else tuple(schema))
        for name, schema in schemas.items()
    }


def compile_query(
    query: ast.SelectQuery,
    schemas: SchemaLike | dict[str, Schema],
    views: dict[str, ast.SelectQuery] | None = None,
) -> wsa.WSAQuery:
    """Compile an I-SQL query of the evaluatable fragment to world-set algebra."""
    compiled, _ = _Compiler(_plain_schemas(schemas), views or {}).compile(query)
    return compiled


def compile_delete(
    statement: ast.Delete,
    schemas: SchemaLike | dict[str, Schema],
    views: dict[str, ast.SelectQuery] | None = None,
) -> tuple[wsa.WSAQuery, tuple[str, ...]]:
    """Compile a delete's condition to its world-grouped match plan.

    Returns ``(plan, attrs)``: evaluated on the inlined representation,
    *plan*'s flat answer holds — per world id — exactly the rows the
    Section 3 rule removes from the relation in that world; *attrs* is
    the relation's value-attribute order the answer uses. The backend
    subtracts the answer from the (id-expanded) flat table, so deletes
    with condition subqueries never decode worlds.
    """
    return _Compiler(_plain_schemas(schemas), views or {}).compile_dml_match(
        statement.relation, statement.where
    )


def compile_update(
    statement: ast.Update,
    schemas: SchemaLike | dict[str, Schema],
    views: dict[str, ast.SelectQuery] | None = None,
) -> tuple[wsa.WSAQuery, tuple[str, ...], tuple[tuple[str, object], ...]]:
    """Compile an update to its match plan plus per-set-clause value terms.

    Returns ``(plan, attrs, set_terms)`` — see
    :meth:`_Compiler.compile_update_plan`. The backend evaluates *plan*
    once, computes every clause's new value per matched (world id, row)
    pair via the terms, and rewrites the flat table in place.
    """
    return _Compiler(_plain_schemas(schemas), views or {}).compile_update_plan(
        statement
    )
