"""Compilation of the I-SQL algebra fragment to world-set algebra.

Section 4 defines world-set algebra as the algebra of the I-SQL
fragment without SQL grouping and aggregation. This module implements
that correspondence: :func:`compile_query` maps a parsed
:class:`~repro.isql.ast.SelectQuery` of the fragment to a
:class:`~repro.core.ast.WSAQuery` following the paper's order of
evaluation — from-product, where, choice-of, repair-by-key,
group-worlds-by, projection, possible/certain.

The compiled query is used two ways: the test suite cross-validates the
I-SQL engine against the Figure 3 semantics on paper scenarios, and a
1↦1 compiled query can be handed to the Section 5 translators to run
I-SQL on any relational engine (the paper's concluding vision).
"""

from __future__ import annotations

from repro.errors import EvaluationError
from repro.core import ast as wsa
from repro.isql import ast
from repro.relational.predicates import Comparison as RAComparison
from repro.relational.predicates import Const, Predicate, conjunction
from repro.relational.schema import Schema

SchemaLike = dict[str, tuple[str, ...]]


class FragmentError(EvaluationError):
    """The query uses constructs outside the world-set algebra fragment."""


def _qualified(alias: str, attr: str) -> str:
    return f"{alias}.{attr.rsplit('.', 1)[-1]}"


class _Compiler:
    """Compiles one select query given the base-relation schemas."""

    def __init__(self, schemas: SchemaLike, views: dict[str, ast.SelectQuery]) -> None:
        self.schemas = dict(schemas)
        self.views = dict(views or {})

    # -- attribute resolution ------------------------------------------------------

    @staticmethod
    def _resolve(name: str, attrs: tuple[str, ...]) -> str:
        qualifier, _, base = name.rpartition(".")
        if qualifier:
            if name in attrs:
                return name
            raise FragmentError(f"unknown attribute {name!r}")
        matches = [a for a in attrs if a.rsplit(".", 1)[-1] == base]
        if len(matches) == 1:
            return matches[0]
        if not matches:
            raise FragmentError(f"unknown attribute {name!r}")
        raise FragmentError(f"ambiguous attribute {name!r}")

    def _value_term(self, expr: ast.ValueExpr, attrs: tuple[str, ...]):
        if isinstance(expr, ast.Column):
            name = expr.display()
            return self._resolve(name, attrs)
        if isinstance(expr, ast.Literal):
            return Const(expr.value)
        raise FragmentError(
            "only column references and literals are allowed in the "
            "algebra fragment's conditions"
        )

    def _condition(self, cond: ast.Condition, attrs: tuple[str, ...]) -> Predicate:
        if isinstance(cond, ast.Comparison):
            return RAComparison(
                self._value_term(cond.left, attrs),
                cond.op,
                self._value_term(cond.right, attrs),
            )
        if isinstance(cond, ast.BoolOp):
            left = self._condition(cond.left, attrs)
            right = self._condition(cond.right, attrs)
            return (left & right) if cond.op == "and" else (left | right)
        if isinstance(cond, ast.NotOp):
            return ~self._condition(cond.operand, attrs)
        raise FragmentError(
            f"{type(cond).__name__} conditions are outside the algebra fragment"
        )

    # -- compilation -----------------------------------------------------------------

    def compile(self, query: ast.SelectQuery) -> tuple[wsa.WSAQuery, tuple[str, ...]]:
        """Compile to a WSA query plus its (unqualified) output attributes."""
        if query.group_by or self._has_aggregates(query):
            raise FragmentError(
                "SQL grouping/aggregation is outside world-set algebra "
                "(Section 4); use the engine instead"
            )

        # Step 1: the from-product, with alias-qualified attributes.
        compiled: wsa.WSAQuery | None = None
        attrs: tuple[str, ...] = ()
        for item in query.from_items:
            if isinstance(item, ast.TableRef) and item.name in self.views:
                item = ast.SubqueryRef(self.views[item.name], item.alias)
            if isinstance(item, ast.TableRef):
                if item.name not in self.schemas:
                    raise FragmentError(f"unknown relation {item.name!r}")
                item_query: wsa.WSAQuery = wsa.rel(item.name)
                item_attrs = self.schemas[item.name]
            else:
                item_query, item_attrs = self.compile(item.query)
            mapping = {a: _qualified(item.alias, a) for a in item_attrs}
            item_query = wsa.rename(mapping, item_query)
            item_attrs = tuple(mapping[a] for a in item_attrs)
            if compiled is None:
                compiled, attrs = item_query, item_attrs
            else:
                compiled = wsa.product(compiled, item_query)
                attrs = attrs + item_attrs

        assert compiled is not None

        # Step 2: the where condition.
        if query.where is not None:
            compiled = wsa.select(self._condition(query.where, attrs), compiled)

        # Step 3: choice-of, repair-by-key, group-worlds-by.
        if query.choice_of:
            compiled = wsa.choice_of(
                tuple(self._resolve(a, attrs) for a in query.choice_of), compiled
            )
        if query.repair_by_key:
            compiled = wsa.repair_by_key(
                tuple(self._resolve(a, attrs) for a in query.repair_by_key), compiled
            )

        # Step 4: projection and the closing constructs.
        projection = self._projection(query, attrs)
        output = tuple(out for out, _ in projection)
        sources = tuple(src for _, src in projection)

        if query.group_worlds_by is not None:
            if query.group_worlds_by.attributes is None:
                raise FragmentError(
                    "group worlds by ⟨subquery⟩ is outside the algebra "
                    "fragment; group on an attribute list instead"
                )
            if query.closing is None:
                raise FragmentError("group worlds by requires possible/certain")
            group = tuple(
                self._resolve(a, attrs) for a in query.group_worlds_by.attributes
            )
            constructor = (
                wsa.poss_group if query.closing == "possible" else wsa.cert_group
            )
            compiled = constructor(group, sources, compiled)
        else:
            compiled = wsa.project(sources, compiled)
            if query.closing == "possible":
                compiled = wsa.poss(compiled)
            elif query.closing == "certain":
                compiled = wsa.cert(compiled)

        # Rename the qualified projection attributes to the output names.
        mapping = {src: out for out, src in projection if src != out}
        if mapping:
            compiled = wsa.rename(mapping, compiled)
        return compiled, output

    def _projection(
        self, query: ast.SelectQuery, attrs: tuple[str, ...]
    ) -> list[tuple[str, str]]:
        """(output name, qualified source) pairs for the select list."""
        if isinstance(query.select_list, ast.Star):
            pairs = []
            seen: dict[str, int] = {}
            for attr in attrs:
                base = attr.rsplit(".", 1)[-1]
                seen[base] = seen.get(base, 0) + 1
            for attr in attrs:
                base = attr.rsplit(".", 1)[-1]
                pairs.append((base if seen[base] == 1 else attr, attr))
            return pairs
        pairs = []
        for item in query.select_list:
            if not isinstance(item.expression, ast.Column):
                raise FragmentError(
                    "the algebra fragment's select list may only contain columns"
                )
            source = self._resolve(item.expression.display(), attrs)
            output = item.alias or item.expression.name
            pairs.append((output, source))
        return pairs

    @staticmethod
    def _has_aggregates(query: ast.SelectQuery) -> bool:
        if isinstance(query.select_list, ast.Star):
            return False
        from repro.isql.engine import Engine

        return any(
            Engine._contains_aggregate(item.expression) for item in query.select_list
        )


def compile_query(
    query: ast.SelectQuery,
    schemas: SchemaLike | dict[str, Schema],
    views: dict[str, ast.SelectQuery] | None = None,
) -> wsa.WSAQuery:
    """Compile an algebra-fragment I-SQL query to world-set algebra."""
    plain: SchemaLike = {
        name: (schema.attributes if isinstance(schema, Schema) else tuple(schema))
        for name, schema in schemas.items()
    }
    compiled, _ = _Compiler(plain, views or {}).compile(query)
    return compiled
