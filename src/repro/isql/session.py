"""I-SQL sessions: catalog, views, key constraints, statement execution.

An :class:`ISQLSession` owns a possible-worlds state and executes
statements against it, in the style of the paper's Section 2
walk-throughs::

    session = ISQLSession()
    session.register("Company_Emp", company_emp)
    session.register("Emp_Skills", emp_skills)
    session.execute("U <- select * from Company_Emp choice of CID;")
    result = session.execute(
        "select possible CID from W where Skill = 'Web';"
    )[0]
    result.relation  # the closed answer

Assignments (``name <- query``) materialize the answer into every world
(splitting worlds if the query does), making it a base relation that
later statements can self-join with correlation. Views are lazy macros
re-expanded on every reference. Key constraints (declared through
:meth:`declare_key`) implement the DML rule of Section 3: an update
violating a constraint in *some* world is discarded in *all* worlds.

*How* the state is stored and statements are evaluated is delegated to
a pluggable :class:`repro.backend.Backend`:

* ``backend="explicit"`` (default) materializes the world-set and runs
  the Figure 3 semantics world by world;
* ``backend="inline"`` keeps the state as an inlined representation
  ⟨R₁ᵀ, …, R_kᵀ, W⟩ and compiles statements down to flat-table plans
  (Section 5), decoding to explicit worlds only on demand — selects
  *and* DML, whose subquery-bearing conditions and set expressions
  mask/rewrite the flat tables per world id;
* ``backend="inline-translate"`` is the inline backend routed through
  the literal Figure 6 relational algebra translation.

Both backends produce identical answers on every statement — the
differential suite in ``tests/backend`` enforces this.
``repro.isql.session_route(session, text)`` reports which route the
inline backend takes for a statement against the live catalog;
``docs/isql-reference.md`` tabulates the routes construct by construct.

Scripts run either statement at a time (:meth:`ISQLSession.execute`)
or through the DML batch pipeline (:meth:`ISQLSession.run_script`),
which coalesces consecutive subquery-free DML statements against one
relation into a single backend pass — same results, one commit per
batch.
"""

from __future__ import annotations

from repro.backend.base import Backend, BaseQueryResult, ExecutionContext, create_backend
from repro.backend.explicit import QueryResult
from repro.backend.instrument import phase
from repro.errors import EvaluationError, SchemaError
from repro.isql import ast
from repro.isql.parser import parse_script
from repro.relational.relation import Relation, clear_intern_pool
from repro.worlds.worldset import WorldSet


class DMLResult:
    """The outcome of insert/update/delete: applied or discarded."""

    __slots__ = ("applied", "kind")

    def __init__(self, applied: bool, kind: str) -> None:
        self.applied = applied
        self.kind = kind

    def __repr__(self) -> str:
        status = "applied" if self.applied else "discarded (constraint violation)"
        return f"DMLResult({self.kind}: {status})"


#: DMLResult kind labels per statement node (the batch pipeline's map).
_DML_KINDS = {ast.Insert: "insert", ast.Delete: "delete", ast.Update: "update"}


class ISQLSession:
    """An interactive I-SQL session over a possible-worlds state.

    *backend* selects the evaluation strategy (``"explicit"``,
    ``"inline"``, ``"inline-translate"``, or a
    :class:`~repro.backend.Backend` instance); *max_worlds* aborts any
    statement whose evaluation would exceed that many worlds. Sessions
    are context managers — ``with ISQLSession(...) as s:`` releases
    cached derived state on exit (see :meth:`close`).
    """

    def __init__(
        self,
        max_worlds: int | None = None,
        backend: str | Backend = "explicit",
    ) -> None:
        self.backend = create_backend(backend)
        self.views: dict[str, ast.SelectQuery] = {}
        self.keys: dict[str, tuple[str, ...]] = {}
        self.max_worlds = max_worlds

    def _context(self) -> ExecutionContext:
        return ExecutionContext(self.views, self.keys, self.max_worlds)

    # -- catalog ------------------------------------------------------------------

    @property
    def world_set(self) -> WorldSet:
        """The session state as an explicit world-set.

        On the inline backend this *decodes* the representation — it is
        a debugging/inspection aid, not part of the evaluation path.
        """
        return self.backend.to_world_set()

    def register(self, name: str, relation: Relation) -> None:
        """Add a complete relation to every world of the session."""
        if name in self.views:
            raise SchemaError(f"{name!r} already names a view")
        if name in self.backend.relation_names():
            raise SchemaError(f"relation {name!r} already exists")
        self.backend.register(name, relation)

    def declare_key(self, relation: str, attributes: tuple[str, ...] | list[str]) -> None:
        """Declare a key constraint used by the DML discard rule."""
        self.keys[relation] = tuple(attributes)

    def relation_names(self) -> tuple[str, ...]:
        return self.backend.relation_names()

    def world_count(self) -> int:
        return self.backend.world_count()

    # -- execution -------------------------------------------------------------------

    def execute(self, script: str) -> list[BaseQueryResult | DMLResult | None]:
        """Execute a ``;``-separated script; one result entry per statement."""
        with phase("compile"):
            statements = parse_script(script)
        results: list[BaseQueryResult | DMLResult | None] = []
        for statement in statements:
            results.append(self.execute_statement(statement))
        return results

    def run_script(self, script: str) -> list[BaseQueryResult | DMLResult | None]:
        """:meth:`execute` with the DML batch pipeline.

        Maximal runs of **consecutive subquery-free DML statements
        against the same relation** coalesce into one
        ``backend.run_dml_batch`` call: the inline backend applies the
        whole run in a single pass over the flat table — one id
        expansion, one commit, one representation validation per batch
        instead of per statement — while every other backend inherits
        the statement-at-a-time default. Results are row-for-row (and
        flag-for-flag) identical to :meth:`execute`; only the cost
        changes. A statement with condition/set subqueries, or a
        non-DML statement, closes the current batch.
        """
        with phase("compile"):
            statements = parse_script(script)
        results: list[BaseQueryResult | DMLResult | None] = []
        index = 0
        while index < len(statements):
            batch = self._dml_batch_at(statements, index)
            if len(batch) >= 2:
                applied = self.backend.run_dml_batch(tuple(batch), self._context())
                results.extend(
                    DMLResult(flag, _DML_KINDS[type(statement)])
                    for statement, flag in zip(batch, applied)
                )
                index += len(batch)
            else:
                results.append(self.execute_statement(statements[index]))
                index += 1
        return results

    @staticmethod
    def _batchable(statement: ast.Statement) -> bool:
        """Subquery-free DML: evaluable in one flat pass, no match plan."""
        if isinstance(statement, ast.Insert):
            return True
        if isinstance(statement, ast.Delete):
            return not ast.condition_subqueries(statement.where)
        if isinstance(statement, ast.Update):
            return not ast.condition_subqueries(statement.where) and not any(
                ast.expression_subqueries(clause.expression)
                for clause in statement.settings
            )
        return False

    @classmethod
    def _dml_batch_at(
        cls, statements: list[ast.Statement], index: int
    ) -> list[ast.Statement]:
        """The maximal batchable run starting at *index* (may be one)."""
        first = statements[index]
        if not cls._batchable(first):
            return [first]
        batch = [first]
        for statement in statements[index + 1 :]:
            if (
                not cls._batchable(statement)
                or statement.relation != first.relation
            ):
                break
            batch.append(statement)
        return batch

    def execute_statement(
        self, statement: ast.Statement
    ) -> BaseQueryResult | DMLResult | None:
        context = self._context()
        if isinstance(statement, ast.SelectQuery):
            return self.backend.run_select(statement, context)
        if isinstance(statement, ast.Assignment):
            if (
                statement.name in self.backend.relation_names()
                or statement.name in self.views
            ):
                raise SchemaError(f"{statement.name!r} already exists")
            self.backend.assign(statement.name, statement.query, context)
            return None
        if isinstance(statement, ast.CreateView):
            if (
                statement.name in self.backend.relation_names()
                or statement.name in self.views
            ):
                raise SchemaError(f"{statement.name!r} already exists")
            self.views[statement.name] = statement.query
            return None
        if isinstance(statement, ast.Insert):
            applied = self.backend.run_insert(statement, context)
            return DMLResult(applied, "insert")
        if isinstance(statement, ast.Delete):
            self.backend.run_delete(statement, context)
            return DMLResult(True, "delete")
        if isinstance(statement, ast.Update):
            applied = self.backend.run_update(statement, context)
            return DMLResult(applied, "update")
        raise EvaluationError(f"unsupported statement {type(statement).__name__}")

    def query(self, text: str) -> BaseQueryResult:
        """Execute a single select statement and return its result."""
        results = self.execute(text)
        if len(results) != 1 or not isinstance(results[0], BaseQueryResult):
            raise EvaluationError("query() expects exactly one select statement")
        return results[0]

    # -- resource hygiene ----------------------------------------------------------

    def close(self) -> None:
        """Release cached derived state held by this session.

        Clears the backend's per-relation hash indexes, cached hashes,
        columnar twins and decoded world-sets, plus the process-global
        row intern pool, so long-lived multi-session processes do not
        accumulate state from sessions they are done with. The session
        stays usable afterwards — every cache rebuilds on demand; the
        registered relations and the possible-worlds state are kept.

        Note the intern pool is process-wide (there is exactly one, by
        design — interning only works across sessions if shared):
        clearing it also resets row sharing for *other* live sessions.
        That is always correctness-neutral and the pool re-interns
        lazily, but a process juggling concurrent hot sessions may
        prefer closing only at quiet points.
        """
        self.backend.close()
        clear_intern_pool()

    def __enter__(self) -> "ISQLSession":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


__all__ = ["DMLResult", "ISQLSession", "QueryResult"]
