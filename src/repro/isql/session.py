"""I-SQL sessions: catalog, views, key constraints, statement execution.

An :class:`ISQLSession` owns a possible-worlds state and executes
statements against it, in the style of the paper's Section 2
walk-throughs::

    session = ISQLSession()
    session.register("Company_Emp", company_emp)
    session.register("Emp_Skills", emp_skills)
    session.execute("U <- select * from Company_Emp choice of CID;")
    result = session.execute(
        "select possible CID from W where Skill = 'Web';"
    )[0]
    result.relation  # the closed answer

Assignments (``name <- query``) materialize the answer into every world
(splitting worlds if the query does), making it a base relation that
later statements can self-join with correlation. Views are lazy macros
re-expanded on every reference. Key constraints (declared through
:meth:`declare_key`) implement the DML rule of Section 3: an update
violating a constraint in *some* world is discarded in *all* worlds.

*How* the state is stored and statements are evaluated is delegated to
a pluggable :class:`repro.backend.Backend`:

* ``backend="explicit"`` (default) materializes the world-set and runs
  the Figure 3 semantics world by world;
* ``backend="inline"`` keeps the state as an inlined representation
  ⟨R₁ᵀ, …, R_kᵀ, W⟩ and compiles statements down to flat-table plans
  (Section 5), decoding to explicit worlds only on demand — selects
  *and* DML, whose subquery-bearing conditions and set expressions
  mask/rewrite the flat tables per world id;
* ``backend="inline-translate"`` is the inline backend routed through
  the literal Figure 6 relational algebra translation.

Both backends produce identical answers on every statement — the
differential suite in ``tests/backend`` enforces this.
``repro.isql.session_route(session, text)`` reports which route the
inline backend takes for a statement against the live catalog;
``docs/isql-reference.md`` tabulates the routes construct by construct.

Scripts run either statement at a time (:meth:`ISQLSession.execute`)
or through the DML batch pipeline (:meth:`ISQLSession.run_script`),
which coalesces consecutive subquery-free DML statements against one
relation into a single backend pass — same results, one commit per
batch.

Sessions are transactional. Statement execution is all-or-nothing at
statement granularity: backends commit by swapping immutable state
references, so an error inside a statement (including one injected into
a kernel op) leaves the state at the last commit. On top of that,
``run_script(..., atomic=True)`` / ``execute(..., atomic=True)`` back a
whole script with an O(#tables) snapshot and roll back wholesale on any
error; :meth:`ISQLSession.transaction` does the same for arbitrary
Python blocks; and :meth:`savepoint` / :meth:`rollback_to` maintain a
snapshot stack for partial retries. Per-statement resource budgets
(``max_rows`` / ``max_seconds``) are enforced cooperatively at
kernel-op boundaries (:mod:`repro.relational.guards`) and raise the
recoverable :class:`~repro.errors.ResourceLimitError`. Any non-library
exception escaping a statement — a bug or an injected fault — surfaces
as :class:`~repro.errors.EvaluationError` with the original as its
``__cause__``, so callers only ever see ``ReproError`` subclasses.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, Mapping

from repro.backend.base import Backend, BaseQueryResult, ExecutionContext, create_backend
from repro.backend.explicit import QueryResult
from repro.backend.instrument import active_collector, collect_phases, phase
from repro.cache import MISS, CacheInfo
from repro.errors import EvaluationError, OwnershipError, ReproError, SchemaError
from repro.isql import ast
from repro.isql.parser import parse_script
from repro.relational.guards import guarded
from repro.relational.relation import Relation, clear_intern_pool
from repro.worlds.worldset import WorldSet


class DMLResult:
    """The outcome of insert/update/delete: applied or discarded."""

    __slots__ = ("applied", "kind")

    def __init__(self, applied: bool, kind: str) -> None:
        self.applied = applied
        self.kind = kind

    def __repr__(self) -> str:
        status = "applied" if self.applied else "discarded (constraint violation)"
        return f"DMLResult({self.kind}: {status})"


#: DMLResult kind labels per statement node (the batch pipeline's map).
_DML_KINDS = {ast.Insert: "insert", ast.Delete: "delete", ast.Update: "update"}


@dataclass(frozen=True)
class StatementResult:
    """The unified outcome of one executed statement.

    :meth:`ISQLSession.run` returns one per statement, replacing the
    three historical shapes — the heterogeneous
    ``BaseQueryResult | DMLResult | None`` entries of
    :meth:`ISQLSession.execute`/:meth:`ISQLSession.run_script`, bare
    backend returns, and the DBAPI cursor's ad-hoc attributes — with
    one dataclass carrying the answer, the execution route, the
    applied flag, per-statement phase timings, and how the statement
    cache treated the statement. (The old shapes keep working but are
    deprecated as return-value protocols; new code should go through
    ``run()`` / the DBAPI cursor.)

    Backward-compatible accessors: ``kind``/``applied`` match the old
    :class:`DMLResult` surface, and :attr:`relation` /
    :meth:`answers` / :meth:`possible` / :meth:`certain` /
    :meth:`world_count` delegate to :attr:`answer` so select-handling
    code ports by attribute access alone.
    """

    #: "select" | "assign" | "view" | "insert" | "delete" | "update"
    kind: str
    #: The select answer, or None for assignments/views/DML.
    answer: BaseQueryResult | None = None
    #: DML applied flag (Section 3 discard rule); None for non-DML.
    applied: bool | None = None
    #: Execution route: the backend kind, or "fallback" when the inline
    #: backend routed the statement to the explicit engine.
    route: str = "explicit"
    #: How the statement cache treated this statement:
    #: "hit" (plan and/or memo served), "miss" (compiled fresh, now
    #: cached), or "bypass" (cache off / never-cached statement kind).
    cache: str = "bypass"
    #: Wall-clock seconds by phase (compile/rewrite/execute/dml_apply/
    #: cache_lookup/…). Statements coalesced into one DML batch share
    #: one timing dict — the batch is a single backend pass.
    phases: Mapping[str, float] = field(default_factory=dict, compare=False)

    @property
    def applied_count(self) -> int:
        """1 when DML applied, 0 when discarded or not DML."""
        return 1 if self.applied else 0

    @property
    def relation(self):
        """The closed answer relation (selects only)."""
        return self._answer().relation

    def answers(self):
        return self._answer().answers()

    def possible(self):
        return self._answer().possible()

    def certain(self):
        return self._answer().certain()

    def world_count(self) -> int:
        return self._answer().world_count()

    def _answer(self) -> BaseQueryResult:
        if self.answer is None:
            raise EvaluationError(
                f"{self.kind} statements produce no answer relation"
            )
        return self.answer

    def __repr__(self) -> str:
        status = "" if self.applied is None else (
            ": applied" if self.applied else ": discarded"
        )
        return (
            f"StatementResult({self.kind}{status}, route={self.route!r}, "
            f"cache={self.cache!r})"
        )


class _SessionState:
    """One snapshot of everything a statement can mutate.

    The backend token is O(#tables) reference captures (state objects
    are immutable; commits swap references); the views and keys dicts —
    the only mutable session-level state — are shallow-copied (their
    values are immutable AST nodes and tuples).
    """

    __slots__ = ("backend_state", "views", "keys")

    def __init__(
        self,
        backend_state: object,
        views: dict[str, ast.SelectQuery],
        keys: dict[str, tuple[str, ...]],
    ) -> None:
        self.backend_state = backend_state
        self.views = views
        self.keys = keys


class Savepoint:
    """A named point on the session's snapshot stack.

    Returned by :meth:`ISQLSession.savepoint`; pass it back to
    :meth:`ISQLSession.rollback_to` (which keeps it, so it can be
    rolled back to again) or :meth:`ISQLSession.release` (which drops
    it without restoring). Tokens compare by identity.
    """

    __slots__ = ("name", "_state")

    def __init__(self, name: str | None, state: _SessionState) -> None:
        self.name = name
        self._state = state

    def __repr__(self) -> str:
        return f"Savepoint({self.name!r})" if self.name else "Savepoint()"


class ISQLSession:
    """An interactive I-SQL session over a possible-worlds state.

    *backend* selects the evaluation strategy (``"explicit"``,
    ``"inline"``, ``"inline-translate"``, or a
    :class:`~repro.backend.Backend` instance); *max_worlds* aborts any
    statement whose evaluation would exceed that many worlds.
    *max_rows* / *max_seconds* are per-statement resource budgets
    checked cooperatively at every kernel-op boundary: a statement
    whose cumulative op input rows exceed *max_rows*, or that runs past
    *max_seconds*, aborts with the recoverable
    :class:`~repro.errors.ResourceLimitError` — state stays at the last
    commit and the session remains usable. Both may also be assigned
    after construction; each statement reads them afresh. Sessions are
    context managers — ``with ISQLSession(...) as s:`` releases cached
    derived state on exit (see :meth:`close`).
    """

    def __init__(
        self,
        max_worlds: int | None = None,
        backend: str | Backend = "explicit",
        max_rows: int | None = None,
        max_seconds: float | None = None,
        cache: bool = True,
    ) -> None:
        self.backend = create_backend(backend)
        self.views: dict[str, ast.SelectQuery] = {}
        self.keys: dict[str, tuple[str, ...]] = {}
        self.max_worlds = max_worlds
        self.max_rows = max_rows
        self.max_seconds = max_seconds
        #: Session-wide cache gate: False bypasses the statement cache
        #: for every statement (each execute/run call may still override
        #: per script with its own ``cache=`` argument).
        self.cache = cache
        self._savepoints: list[Savepoint] = []
        #: Thread ident this session is pinned to, or None (unpinned).
        self._owner_thread: int | None = None

    # -- thread ownership ------------------------------------------------------------

    def pin_thread(self, ident: int | None = None) -> None:
        """Restrict this session to one thread (default: the caller's).

        After pinning, any statement, snapshot, or restore attempted
        from a different thread raises
        :class:`~repro.errors.OwnershipError` instead of racing on the
        session's mutable references. The service-layer pool pins each
        session to the thread that acquired it and unpins on release.
        """
        self._owner_thread = threading.get_ident() if ident is None else ident

    def unpin_thread(self) -> None:
        """Lift the thread restriction set by :meth:`pin_thread`."""
        self._owner_thread = None

    def _check_thread(self) -> None:
        owner = self._owner_thread
        if owner is not None and owner != threading.get_ident():
            raise OwnershipError(
                f"session is pinned to thread {owner}; "
                f"it cannot be used from thread {threading.get_ident()}"
            )

    def _context(self, cache: bool | None = None) -> ExecutionContext:
        return ExecutionContext(
            self.views,
            self.keys,
            self.max_worlds,
            cache=self.cache if cache is None else cache,
        )

    def _parse(self, script: str, cache: bool | None) -> tuple[ast.Statement, ...]:
        """Parse *script*, through the backend's parse cache when on.

        The cache key is the raw script text; the cached value is the
        (immutable) statement tuple, so a hot script skips tokenizing
        and parsing entirely on its second run.
        """
        use_cache = self.cache if cache is None else cache
        store = getattr(self.backend, "cache", None) if use_cache else None
        if store is not None:
            with phase("cache_lookup"):
                hit = store.parses.get(script)
            if hit is not MISS:
                return hit
        with phase("compile"):
            statements = tuple(parse_script(script))
        if store is not None:
            store.parses.put(script, statements)
        return statements

    def cache_info(self) -> CacheInfo:
        """Aggregate statement-cache counters (hits, misses, entries,
        invalidations, bytes estimate) of this session's backend."""
        return self.backend.cache_info()

    # -- catalog ------------------------------------------------------------------

    @property
    def world_set(self) -> WorldSet:
        """The session state as an explicit world-set.

        On the inline backend this *decodes* the representation — it is
        a debugging/inspection aid, not part of the evaluation path.
        """
        return self.backend.to_world_set()

    def register(self, name: str, relation: Relation) -> None:
        """Add a complete relation to every world of the session."""
        if name in self.views:
            raise SchemaError(f"{name!r} already names a view")
        if name in self.backend.relation_names():
            raise SchemaError(f"relation {name!r} already exists")
        self.backend.register(name, relation)

    def declare_key(self, relation: str, attributes: tuple[str, ...] | list[str]) -> None:
        """Declare a key constraint used by the DML discard rule."""
        self.keys[relation] = tuple(attributes)

    def relation_names(self) -> tuple[str, ...]:
        return self.backend.relation_names()

    def world_count(self) -> int:
        return self.backend.world_count()

    # -- execution -------------------------------------------------------------------

    def execute(
        self, script: str, atomic: bool = False, cache: bool | None = None
    ) -> list[BaseQueryResult | DMLResult | None]:
        """Execute a ``;``-separated script; one result entry per statement.

        With ``atomic=True`` the whole script runs under one snapshot:
        any error rolls the session back to its state before the first
        statement (otherwise the statements executed so far stay
        committed — statement-level atomicity always holds either way).
        *cache* overrides the session's cache gate for this script
        (``cache=False`` bypasses the statement cache — the
        differential-testing escape hatch).

        .. deprecated:: the heterogeneous
           ``BaseQueryResult | DMLResult | None`` result shape. It keeps
           working, but new code should call :meth:`run`, whose
           :class:`StatementResult` entries carry the same information
           uniformly (plus route, cache disposition, and phase timings).
        """
        statements = self._parse(script, cache)
        if atomic:
            with self.transaction():
                return self._execute_statements(statements, script, cache)
        return self._execute_statements(statements, script, cache)

    def _execute_statements(
        self,
        statements: tuple[ast.Statement, ...],
        script: str,
        cache: bool | None = None,
    ) -> list[BaseQueryResult | DMLResult | None]:
        results: list[BaseQueryResult | DMLResult | None] = []
        for statement in statements:
            try:
                results.append(self.execute_statement(statement, cache))
            except ReproError as error:
                _annotate_statement(error, statement, script)
                raise
        return results

    def run_script(
        self, script: str, atomic: bool = False, cache: bool | None = None
    ) -> list[BaseQueryResult | DMLResult | None]:
        """:meth:`execute` with the DML batch pipeline.

        Maximal runs of **consecutive subquery-free DML statements
        against the same relation** coalesce into one
        ``backend.run_dml_batch`` call: the inline backend applies the
        whole run in a single pass over the flat table — one id
        expansion, one commit, one representation validation per batch
        instead of per statement — while every other backend inherits
        the statement-at-a-time default. Results are row-for-row (and
        flag-for-flag) identical to :meth:`execute`; only the cost
        changes. A statement with condition/set subqueries, or a
        non-DML statement, closes the current batch.

        On a mid-script error the default keeps the committed prefix:
        every statement before the failing one (and, inside a failing
        batch, every statement the batch had fully applied) stays
        committed, and the failing statement itself is all-or-nothing.
        With ``atomic=True`` the script runs under one snapshot and any
        error rolls back to the pre-script state.

        .. deprecated:: the heterogeneous result shape — see
           :meth:`execute`; prefer :meth:`run`.
        """
        statements = self._parse(script, cache)
        if atomic:
            with self.transaction():
                return self._run_batched(statements, script, cache)
        return self._run_batched(statements, script, cache)

    def _run_batched(
        self,
        statements: tuple[ast.Statement, ...],
        script: str,
        cache: bool | None = None,
    ) -> list[BaseQueryResult | DMLResult | None]:
        results: list[BaseQueryResult | DMLResult | None] = []
        index = 0
        while index < len(statements):
            batch = self._dml_batch_at(statements, index)
            if len(batch) >= 2:
                try:
                    applied = self._protected(
                        "dml batch",
                        lambda: self.backend.run_dml_batch(
                            tuple(batch), self._context(cache)
                        ),
                    )
                except ReproError as error:
                    _annotate_statement(error, batch[0], script, until=batch[-1])
                    raise
                results.extend(
                    DMLResult(flag, _DML_KINDS[type(statement)])
                    for statement, flag in zip(batch, applied)
                )
                index += len(batch)
            else:
                try:
                    results.append(
                        self.execute_statement(statements[index], cache)
                    )
                except ReproError as error:
                    _annotate_statement(error, statements[index], script)
                    raise
                index += 1
        return results

    def run(
        self, script: str, atomic: bool = False, cache: bool | None = None
    ) -> list[StatementResult]:
        """Execute a script; one :class:`StatementResult` per statement.

        The unified statement API: same execution pipeline as
        :meth:`run_script` (including the DML batch coalescing), but
        every entry is a :class:`StatementResult` carrying the answer
        (selects), the applied flag (DML), the execution route, the
        cache disposition (``"hit"``/``"miss"``/``"bypass"``), and
        per-statement phase timings. *atomic* and *cache* behave as in
        :meth:`execute`.
        """
        statements = self._parse(script, cache)
        if atomic:
            with self.transaction():
                return self._run_detailed(statements, script, cache)
        return self._run_detailed(statements, script, cache)

    def _run_detailed(
        self,
        statements: tuple[ast.Statement, ...],
        script: str,
        cache: bool | None = None,
    ) -> list[StatementResult]:
        backend = self.backend
        outer = active_collector()

        def tee(phases: dict[str, float]) -> None:
            # Per-statement timings also accumulate into an enclosing
            # collect_phases() collector (e.g. a benchmark's), which the
            # inner collector shadowed while the statement ran.
            if outer is not None:
                for name, seconds in phases.items():
                    outer[name] = outer.get(name, 0.0) + seconds

        results: list[StatementResult] = []
        index = 0
        while index < len(statements):
            batch = self._dml_batch_at(statements, index)
            backend.last_cache = "bypass"
            phases: dict[str, float] = {}
            if len(batch) >= 2:
                with collect_phases(phases):
                    try:
                        applied = self._protected(
                            "dml batch",
                            lambda: backend.run_dml_batch(
                                tuple(batch), self._context(cache)
                            ),
                        )
                    except ReproError as error:
                        _annotate_statement(
                            error, batch[0], script, until=batch[-1]
                        )
                        raise
                tee(phases)
                results.extend(
                    StatementResult(
                        kind=_DML_KINDS[type(statement)],
                        applied=flag,
                        route=backend.kind,
                        cache=backend.last_cache,
                        phases=phases,
                    )
                    for statement, flag in zip(batch, applied)
                )
                index += len(batch)
                continue
            statement = statements[index]
            fallbacks = getattr(backend, "fallback_total", 0)
            with collect_phases(phases):
                try:
                    outcome = self.execute_statement(statement, cache)
                except ReproError as error:
                    _annotate_statement(error, statement, script)
                    raise
            tee(phases)
            route = backend.kind
            if getattr(backend, "fallback_total", 0) > fallbacks:
                route = "fallback"
            if isinstance(outcome, DMLResult):
                results.append(
                    StatementResult(
                        kind=outcome.kind,
                        applied=outcome.applied,
                        route=route,
                        cache=backend.last_cache,
                        phases=phases,
                    )
                )
            elif isinstance(outcome, BaseQueryResult):
                results.append(
                    StatementResult(
                        kind="select",
                        answer=outcome,
                        route=route,
                        cache=backend.last_cache,
                        phases=phases,
                    )
                )
            else:
                kind = (
                    "view" if isinstance(statement, ast.CreateView) else "assign"
                )
                results.append(
                    StatementResult(
                        kind=kind,
                        route=route,
                        cache=backend.last_cache,
                        phases=phases,
                    )
                )
            index += 1
        return results

    @staticmethod
    def _batchable(statement: ast.Statement) -> bool:
        """Subquery-free DML: evaluable in one flat pass, no match plan."""
        if isinstance(statement, ast.Insert):
            return True
        if isinstance(statement, ast.Delete):
            return not ast.condition_subqueries(statement.where)
        if isinstance(statement, ast.Update):
            return not ast.condition_subqueries(statement.where) and not any(
                ast.expression_subqueries(clause.expression)
                for clause in statement.settings
            )
        return False

    @classmethod
    def _dml_batch_at(
        cls, statements: list[ast.Statement], index: int
    ) -> list[ast.Statement]:
        """The maximal batchable run starting at *index* (may be one)."""
        first = statements[index]
        if not cls._batchable(first):
            return [first]
        batch = [first]
        for statement in statements[index + 1 :]:
            if (
                not cls._batchable(statement)
                or statement.relation != first.relation
            ):
                break
            batch.append(statement)
        return batch

    def execute_statement(
        self, statement: ast.Statement, cache: bool | None = None
    ) -> BaseQueryResult | DMLResult | None:
        """Execute one parsed statement, protected and budgeted.

        Runs under the session's resource budget (``max_rows`` /
        ``max_seconds``) and the exception-hygiene net: any non-library
        exception — a backend bug, a numpy error inside the array
        kernel, an injected fault — is re-raised as
        :class:`~repro.errors.EvaluationError` with the original
        exception chained as ``__cause__``, so the public API only ever
        surfaces ``ReproError`` subclasses. Either way the statement is
        all-or-nothing: backends commit by reference swap, so an error
        leaves the session state at the last commit.
        """
        kind = type(statement).__name__.lower()
        return self._protected(
            f"{kind} statement", lambda: self._dispatch(statement, cache)
        )

    def _protected(self, kind: str, run):
        self._check_thread()
        with guarded(self.max_rows, self.max_seconds):
            try:
                return run()
            except ReproError:
                raise
            except Exception as error:
                raise EvaluationError(
                    f"internal error while executing {kind}: {error!r}"
                ) from error

    def _dispatch(
        self, statement: ast.Statement, cache: bool | None = None
    ) -> BaseQueryResult | DMLResult | None:
        context = self._context(cache)
        # Reset the per-statement cache disposition so a statement kind
        # that never consults the cache reads as "bypass".
        self.backend.last_cache = "bypass"
        if isinstance(statement, ast.SelectQuery):
            return self.backend.run_select(statement, context)
        if isinstance(statement, ast.Assignment):
            if (
                statement.name in self.backend.relation_names()
                or statement.name in self.views
            ):
                raise SchemaError(f"{statement.name!r} already exists")
            self.backend.assign(statement.name, statement.query, context)
            return None
        if isinstance(statement, ast.CreateView):
            if (
                statement.name in self.backend.relation_names()
                or statement.name in self.views
            ):
                raise SchemaError(f"{statement.name!r} already exists")
            self.views[statement.name] = statement.query
            return None
        if isinstance(statement, ast.Insert):
            applied = self.backend.run_insert(statement, context)
            return DMLResult(applied, "insert")
        if isinstance(statement, ast.Delete):
            self.backend.run_delete(statement, context)
            return DMLResult(True, "delete")
        if isinstance(statement, ast.Update):
            applied = self.backend.run_update(statement, context)
            return DMLResult(applied, "update")
        raise EvaluationError(f"unsupported statement {type(statement).__name__}")

    def query(self, text: str) -> BaseQueryResult:
        """Execute a single select statement and return its result."""
        results = self.execute(text)
        if len(results) != 1 or not isinstance(results[0], BaseQueryResult):
            raise EvaluationError("query() expects exactly one select statement")
        return results[0]

    # -- transactions ----------------------------------------------------------------

    def _snapshot(self) -> _SessionState:
        self._check_thread()
        return _SessionState(
            self.backend.snapshot(), dict(self.views), dict(self.keys)
        )

    def _restore(self, state: _SessionState) -> None:
        self._check_thread()
        with phase("rollback"):
            self.backend.restore(state.backend_state)
            # Copy on the way back too: a savepoint may be rolled back
            # to repeatedly, and later statements must not mutate the
            # dicts its snapshot holds.
            self.views = dict(state.views)
            self.keys = dict(state.keys)

    @contextmanager
    def transaction(self) -> Iterator["ISQLSession"]:
        """All-or-nothing block: roll back to entry state on any error.

        Snapshots the session on entry (O(#tables) — state objects are
        immutable and commits swap references) and restores it if the
        block raises; on normal exit the work stays committed. Covers
        everything a statement can change: the possible-worlds state,
        views, and declared keys. Nests naturally — each level holds
        its own snapshot — and savepoints created inside a rolled-back
        block are discarded with it.
        """
        state = self._snapshot()
        depth = len(self._savepoints)
        try:
            yield self
        except BaseException:
            self._restore(state)
            del self._savepoints[depth:]
            raise

    def savepoint(self, name: str | None = None) -> Savepoint:
        """Push the current state onto the snapshot stack.

        Returns a :class:`Savepoint` token for :meth:`rollback_to` /
        :meth:`release`. Savepoints are cheap (reference captures), so
        a script runner can drop one before every risky batch.
        """
        token = Savepoint(name, self._snapshot())
        self._savepoints.append(token)
        return token

    def rollback_to(self, savepoint: Savepoint) -> None:
        """Restore the state captured by *savepoint*.

        The savepoint itself stays on the stack (it can be rolled back
        to again); savepoints created after it are discarded, like
        SQL's ``ROLLBACK TO SAVEPOINT``. Raises
        :class:`~repro.errors.EvaluationError` for a token that was
        released, rolled past, or belongs to another session.
        """
        try:
            index = self._savepoints.index(savepoint)
        except ValueError:
            raise EvaluationError(
                f"unknown or released savepoint {savepoint!r}"
            ) from None
        self._restore(savepoint._state)
        del self._savepoints[index + 1 :]

    def release(self, savepoint: Savepoint) -> None:
        """Drop *savepoint* (and any later ones) without restoring.

        The work since the savepoint stays committed; the token just
        stops being a rollback target.
        """
        try:
            index = self._savepoints.index(savepoint)
        except ValueError:
            raise EvaluationError(
                f"unknown or released savepoint {savepoint!r}"
            ) from None
        del self._savepoints[index:]

    # -- snapshot export (service layer) ---------------------------------------------

    def export_snapshot(self) -> _SessionState:
        """The full session state as an opaque O(#tables) token.

        Covers everything a statement can change — possible-worlds
        state, views, declared keys. The token is immutable and sharable
        across sessions of the same backend kind: pass it to another
        session's :meth:`restore_snapshot` (or :meth:`fork` a session
        from it implicitly) and both sessions see the same state while
        sharing every underlying table object. This is the copy-on-write
        handoff :mod:`repro.service.snapshots` publishes to concurrent
        readers.
        """
        return self._snapshot()

    def restore_snapshot(self, state: _SessionState) -> None:
        """Reset this session to an :meth:`export_snapshot` token.

        O(#tables) reference swaps; the savepoint stack is left alone
        (tokens keep meaning "the state when they were taken").
        """
        self._restore(state)

    def fork(self) -> "ISQLSession":
        """A new independent session seeing this session's current state.

        The clone gets a fresh backend of the same kind and
        configuration (:meth:`repro.backend.Backend.spawn`) restored to
        this session's snapshot, plus copies of the views/keys dicts and
        the same ``max_worlds``/``max_rows``/``max_seconds`` settings.
        Because state objects are immutable and commits swap references,
        the clone shares all current table objects with its parent but
        diverges freely from the first statement either side runs —
        copy-on-write session cloning, O(#tables). The clone starts
        unpinned with an empty savepoint stack.
        """
        clone = ISQLSession(
            max_worlds=self.max_worlds,
            backend=self.backend.spawn(),
            max_rows=self.max_rows,
            max_seconds=self.max_seconds,
            cache=self.cache,
        )
        clone._restore(self._snapshot())
        return clone

    # -- resource hygiene ----------------------------------------------------------

    def close(self) -> None:
        """Release cached derived state held by this session.

        Clears the backend's per-relation hash indexes, cached hashes,
        columnar twins and decoded world-sets, plus the process-global
        row intern pool, so long-lived multi-session processes do not
        accumulate state from sessions they are done with. The backend
        also *detaches* from its statement cache (dropping this
        session's reference to memoized relations without clearing a
        pool-shared instance under its siblings). The session stays
        usable afterwards — every cache rebuilds on demand; the
        registered relations and the possible-worlds state are kept.

        Note the intern pool is process-wide (there is exactly one, by
        design — interning only works across sessions if shared):
        clearing it also resets row sharing for *other* live sessions.
        That is always correctness-neutral and the pool re-interns
        lazily, but a process juggling concurrent hot sessions may
        prefer closing only at quiet points.

        Close is idempotent and safe at any point — double-close, close
        after a mid-script error, close inside an open
        :meth:`transaction` block all work. The savepoint stack is
        dropped (its snapshots pin pre-rollback state that would
        otherwise stay reachable); outstanding :class:`Savepoint`
        tokens become invalid.
        """
        self._savepoints.clear()
        self.backend.close()
        clear_intern_pool()

    def __enter__(self) -> "ISQLSession":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def _annotate_statement(
    error: ReproError,
    statement: ast.Statement,
    script: str,
    until: ast.Statement | None = None,
) -> None:
    """Attach the failing DML statement's source text to *error*.

    DML nodes carry their source span (the parser records it); schema
    and evaluation errors raised while applying them gain a note
    quoting the statement, so a failure inside a long script names its
    culprit. When *until* is given the note spans the whole coalesced
    batch (statement through *until*) — the batch pipeline reports one
    error for the run. Non-DML statements (no span) and errors that
    already carry a statement note pass through unchanged.
    """
    span = getattr(statement, "span", None)
    if span is None:
        return
    notes = getattr(error, "__notes__", ())
    if any(note.startswith("while executing: ") for note in notes):
        return
    start, end = span
    if until is not None and getattr(until, "span", None) is not None:
        end = until.span[1]
    error.add_note(f"while executing: {script[start:end]}")


__all__ = [
    "DMLResult",
    "ISQLSession",
    "QueryResult",
    "Savepoint",
    "StatementResult",
]
