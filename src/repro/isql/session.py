"""I-SQL sessions: catalog, views, key constraints, statement execution.

An :class:`ISQLSession` owns a world-set and executes statements
against it, in the style of the paper's Section 2 walk-throughs::

    session = ISQLSession()
    session.register("Company_Emp", company_emp)
    session.register("Emp_Skills", emp_skills)
    session.execute("U <- select * from Company_Emp choice of CID;")
    result = session.execute(
        "select possible CID from W where Skill = 'Web';"
    )[0]
    result.relation  # the closed answer

Assignments (``name <- query``) materialize the answer into every world
(splitting worlds if the query does), making it a base relation that
later statements can self-join with correlation. Views are lazy macros
re-expanded on every reference. Key constraints (declared through
:meth:`declare_key`) implement the DML rule of Section 3: an update
violating a constraint in *some* world is discarded in *all* worlds.
"""

from __future__ import annotations

from repro.errors import EvaluationError, SchemaError
from repro.isql import ast
from repro.isql.engine import Engine
from repro.isql.parser import parse_script
from repro.relational.relation import Relation
from repro.worlds.world import World
from repro.worlds.worldset import WorldSet


class QueryResult:
    """The outcome of a select statement.

    *world_set* is the input world-set extended with the answer under
    *name*. :attr:`relation` is the unique answer when it is the same
    in every world (always true for closed 1↦1 queries); otherwise
    accessing it raises and :meth:`answers` lists the per-world answers.
    """

    __slots__ = ("world_set", "name")

    def __init__(self, world_set: WorldSet, name: str) -> None:
        self.world_set = world_set
        self.name = name

    @property
    def relation(self) -> Relation:
        answers = self.answers()
        if len(answers) != 1:
            raise EvaluationError(
                f"the answer differs across worlds ({len(answers)} variants); "
                "use .answers()"
            )
        return next(iter(answers))

    def answers(self) -> frozenset[Relation]:
        """The distinct answer relations across all worlds."""
        return frozenset(self.world_set.instances(self.name))

    def world_count(self) -> int:
        return len(self.world_set)

    def __repr__(self) -> str:
        return f"QueryResult({self.name!r}, {len(self.world_set)} worlds)"


class DMLResult:
    """The outcome of insert/update/delete: applied or discarded."""

    __slots__ = ("applied", "kind")

    def __init__(self, applied: bool, kind: str) -> None:
        self.applied = applied
        self.kind = kind

    def __repr__(self) -> str:
        status = "applied" if self.applied else "discarded (constraint violation)"
        return f"DMLResult({self.kind}: {status})"


class ISQLSession:
    """An interactive I-SQL session over a world-set."""

    def __init__(self, max_worlds: int | None = None) -> None:
        self.world_set = WorldSet.single(World.of({}))
        self.views: dict[str, ast.SelectQuery] = {}
        self.keys: dict[str, tuple[str, ...]] = {}
        self.max_worlds = max_worlds

    def _engine(self) -> Engine:
        return Engine(self.views, self.keys, self.max_worlds)

    # -- catalog ------------------------------------------------------------------

    def register(self, name: str, relation: Relation) -> None:
        """Add a complete relation to every world of the session."""
        if name in self.views:
            raise SchemaError(f"{name!r} already names a view")
        if name in self.world_set.relation_names:
            raise SchemaError(f"relation {name!r} already exists")
        self.world_set = self.world_set.extend_each(name, lambda world: relation)

    def declare_key(self, relation: str, attributes: tuple[str, ...] | list[str]) -> None:
        """Declare a key constraint used by the DML discard rule."""
        self.keys[relation] = tuple(attributes)

    def relation_names(self) -> tuple[str, ...]:
        return self.world_set.relation_names

    def world_count(self) -> int:
        return len(self.world_set)

    # -- execution -------------------------------------------------------------------

    def execute(self, script: str) -> list[QueryResult | DMLResult | None]:
        """Execute a ``;``-separated script; one result entry per statement."""
        results: list[QueryResult | DMLResult | None] = []
        for statement in parse_script(script):
            results.append(self.execute_statement(statement))
        return results

    def execute_statement(
        self, statement: ast.Statement
    ) -> QueryResult | DMLResult | None:
        engine = self._engine()
        if isinstance(statement, ast.SelectQuery):
            extended, name = engine.run_select(statement, self.world_set)
            return QueryResult(extended, name)
        if isinstance(statement, ast.Assignment):
            if statement.name in self.world_set.relation_names or statement.name in self.views:
                raise SchemaError(f"{statement.name!r} already exists")
            self.world_set, _ = engine.run_select(
                statement.query, self.world_set, name=statement.name
            )
            return None
        if isinstance(statement, ast.CreateView):
            if statement.name in self.world_set.relation_names or statement.name in self.views:
                raise SchemaError(f"{statement.name!r} already exists")
            self.views[statement.name] = statement.query
            return None
        if isinstance(statement, ast.Insert):
            self.world_set, applied = engine.run_insert(statement, self.world_set)
            return DMLResult(applied, "insert")
        if isinstance(statement, ast.Delete):
            self.world_set = engine.run_delete(statement, self.world_set)
            return DMLResult(True, "delete")
        if isinstance(statement, ast.Update):
            self.world_set, applied = engine.run_update(statement, self.world_set)
            return DMLResult(applied, "update")
        raise EvaluationError(f"unsupported statement {type(statement).__name__}")

    def query(self, text: str) -> QueryResult:
        """Execute a single select statement and return its result."""
        results = self.execute(text)
        if len(results) != 1 or not isinstance(results[0], QueryResult):
            raise EvaluationError("query() expects exactly one select statement")
        return results[0]
