"""The explicit backend: materialized world-sets, Figure 3 semantics.

This is the paper's reference evaluation strategy — and the repo's
original one: the session state is a :class:`WorldSet`, and every
statement runs through :class:`repro.isql.engine.Engine`, which maps
world-sets to world-sets. Exponential in the number of worlds, but it
supports every I-SQL construct directly (aggregation, correlated
subqueries, world-splitting condition subqueries), which is why the
inline backend falls back to it for statements outside the Section 4
algebra fragment.
"""

from __future__ import annotations

from repro.backend.base import Backend, BaseQueryResult, ExecutionContext
from repro.backend.instrument import phase
from repro.isql import ast
from repro.isql.engine import Engine
from repro.relational.relation import Relation
from repro.worlds.world import World
from repro.worlds.worldset import WorldSet


class QueryResult(BaseQueryResult):
    """The outcome of a select statement over an explicit world-set.

    *world_set* is the input world-set extended with the answer under
    *name*. :attr:`relation` is the unique answer when it is the same
    in every world (always true for closed 1↦1 queries); otherwise
    accessing it raises and :meth:`answers` lists the per-world answers.
    """

    __slots__ = ("_world_set", "name")

    def __init__(self, world_set: WorldSet, name: str) -> None:
        self._world_set = world_set
        self.name = name

    @property
    def world_set(self) -> WorldSet:
        return self._world_set

    def answers(self) -> frozenset[Relation]:
        return frozenset(self._world_set.instances(self.name))

    def __repr__(self) -> str:
        return f"QueryResult({self.name!r}, {len(self._world_set)} worlds)"


class ExplicitBackend(Backend):
    """Session state as an explicit world-set, evaluated world by world."""

    kind = "explicit"

    def __init__(self, world_set: WorldSet | None = None) -> None:
        self.world_set = (
            world_set if world_set is not None else WorldSet.single(World.of({}))
        )

    def _engine(self, context: ExecutionContext) -> Engine:
        return Engine(context.views, context.keys, context.max_worlds)

    # -- catalog ------------------------------------------------------------------

    def register(self, name: str, relation: Relation) -> None:
        self.world_set = self.world_set.extend_each(name, lambda world: relation)

    def relation_names(self) -> tuple[str, ...]:
        return self.world_set.relation_names

    def schemas(self) -> dict[str, tuple[str, ...]]:
        return {
            name: schema.attributes for name, schema in self.world_set.signature
        }

    def world_count(self) -> int:
        return len(self.world_set)

    def to_world_set(self) -> WorldSet:
        return self.world_set

    def close(self) -> None:
        """Release per-relation caches of every materialized world."""
        for world in self.world_set.worlds:
            for name in world.names:
                world[name].clear_caches()

    def snapshot(self) -> object:
        """One reference: world-sets are immutable, statements reassign."""
        return self.world_set

    def restore(self, token: object) -> None:
        self.world_set = token

    # -- statements ----------------------------------------------------------------

    def run_select(
        self, query: ast.SelectQuery, context: ExecutionContext, name: str | None = None
    ) -> QueryResult:
        with phase("execute"):
            extended, result_name = self._engine(context).run_select(
                query, self.world_set, name=name
            )
        return QueryResult(extended, result_name)

    def assign(
        self, name: str, query: ast.SelectQuery, context: ExecutionContext
    ) -> None:
        with phase("execute"):
            self.world_set, _ = self._engine(context).run_select(
                query, self.world_set, name=name
            )

    def run_insert(self, statement: ast.Insert, context: ExecutionContext) -> bool:
        self.world_set, applied = self._engine(context).run_insert(
            statement, self.world_set
        )
        return applied

    def run_delete(self, statement: ast.Delete, context: ExecutionContext) -> None:
        self.world_set = self._engine(context).run_delete(statement, self.world_set)

    def run_update(self, statement: ast.Update, context: ExecutionContext) -> bool:
        self.world_set, applied = self._engine(context).run_update(
            statement, self.world_set
        )
        return applied
