"""The inline backend: I-SQL over the inlined representation (Section 5).

The session state is an :class:`InlinedRepresentation`
⟨R₁ᵀ, …, R_kᵀ, W⟩ — one flat table per relation, tagged with world-id
attributes, plus the world table W — and is **never** enumerated into
explicit worlds during evaluation. A statement runs through the layered
pipeline of the paper's concluding vision::

    I-SQL ──isql.compile──▶ world-set algebra
          ──optimizer.rewriter──▶ rewritten plan (Figure 7 equivalences)
          ──inline.physical / inline.translate──▶ flat-table evaluation
          ──decode (only on demand)──▶ explicit worlds

Two evaluation strategies implement the last-but-one arrow:

* ``"physical"`` (default) — the dedicated physical operators of
  :mod:`repro.inline.physical`, seeded with the session's world table;
  supports everything in the algebra fragment including repair-by-key.
* ``"translate"`` — the literal Figure 6 translation
  (:mod:`repro.inline.translate`) composed into one relational algebra
  DAG and evaluated by :mod:`repro.relational.algebra`; falls back to
  the physical operators where relational algebra cannot reach
  (repair-by-key, Proposition 4.2).

The compiled fragment covers the whole Figure 1 select surface — SQL
aggregation (a world-grouped flat aggregation), ``[not] in`` /
``[not] exists`` condition subqueries (decorrelated into semijoins and
antijoins, including under ``or`` as a union of per-disjunct chains),
comparisons against scalar subqueries (aggregate or bare-column, the
latter through the ``single`` pseudo-aggregate with a runtime
cardinality guard), and ``group worlds by ⟨subquery⟩`` (subquery-keyed
world grouping) — so those statements never enumerate worlds either.
DML runs flat too: ``delete``/``update`` conditions and ``update`` set
expressions with (world-local) subqueries compile to a match plan whose
per-world-id answer masks or rewrites the flat table directly — no
``_reinline`` round-trip. Only the genuinely row-at-a-time residue
falls back to the explicit engine on the decoded world-set (assignments
re-inline the result): non-column ``in`` needles, scalar subqueries of
other shapes (or under ``or``, where the cardinality guard cannot stay
as lazy as the engine's short-circuit), correlated subqueries that are
themselves complex, disjunctions over an already-world-splitting outer
plan, DML subqueries that are not world-local, and select columns
outside the GROUP BY key.
``fallback_events`` records those statements (kind, reason, clause,
source span), bounded to the most recent :data:`FALLBACK_EVENT_LIMIT`
so a long-lived session's diagnostics cannot grow without bound.

``possible``/``certain`` closings are answered directly from the flat
answer table (a projection, resp. a division by W); worlds are decoded
only when a caller explicitly asks for ``.world_set``.
"""

from __future__ import annotations

from collections import deque
from typing import NamedTuple

from repro.backend.base import Backend, BaseQueryResult, ExecutionContext
from repro.backend.explicit import QueryResult
from repro.backend.instrument import phase
from repro.errors import (
    EvaluationError,
    RewriteError,
    SchemaError,
    TranslationError,
    TypingError,
    WorldLimitError,
)
from repro.inline.physical import (
    PhysicalState,
    decode_extension,
    evaluate_seeded,
    match_answers_to_session_worlds,
)
from repro.inline.representation import InlinedRepresentation
from repro.inline.translate import translate_general
from repro.isql import ast
from repro.isql.compile import (
    FragmentError,
    compile_delete,
    compile_query,
    compile_update,
)
from repro.isql.engine import Engine
from repro.optimizer.rewriter import optimize as rewrite_plan
from repro.relational.columnar import as_tuple, resolve_kernel
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.worlds.worldset import WorldSet, fresh_name

#: Most recent fallback events a session retains (diagnostics only —
#: an unbounded list would grow forever in a long residue-heavy session).
FALLBACK_EVENT_LIMIT = 64


class FallbackEvent(NamedTuple):
    """One fallback-route diagnostic.

    ``event[0]``/``event[1]`` still read the historical (kind, reason)
    positions, but this is a 4-tuple — code that unpacked the old pair
    must index or use the field names.
    """

    kind: str
    reason: str
    clause: str | None = None
    span: tuple[int, int] | None = None


class InlineQueryResult(BaseQueryResult):
    """A select outcome held as flat tables; worlds decoded on demand."""

    __slots__ = ("_representation", "_state", "name", "_decoded")

    def __init__(
        self,
        representation: InlinedRepresentation,
        state: PhysicalState,
        name: str,
    ) -> None:
        self._representation = representation
        self._state = state
        self.name = name
        self._decoded: WorldSet | None = None

    def answers(self) -> frozenset[Relation]:
        return frozenset(self._state.answers_by_world().values())

    def possible(self) -> Relation:
        """poss closure straight off the flat answer table: π_U(Rᵀ)."""
        state = self._state
        return as_tuple(state._answer.project(state.value_attributes()))

    def certain(self) -> Relation:
        """cert closure straight off the flat answer table: Rᵀ ÷ W."""
        state = self._state
        return as_tuple(state._answer.divide(state._world_or_unit_any()))

    @property
    def world_set(self) -> WorldSet:
        if self._decoded is None:
            with phase("decode"):
                self._decoded = decode_extension(
                    self._representation, self._state, self.name
                )
        return self._decoded

    def world_count(self) -> int:
        """Distinct result worlds, from fingerprints — no decoding.

        A result world is a (base world, answer) pair; equal pairs
        collapse like they would in the explicit world-set.
        """
        if self._decoded is not None:
            return len(self._decoded)
        fingerprints = self._representation.world_fingerprints()
        by_shared, shared_in_session = match_answers_to_session_worlds(
            self._representation, self._state
        )
        pairs = set()
        for session_world_id, fingerprint in fingerprints.items():
            key = tuple(session_world_id[p] for p in shared_in_session)
            for answer_relation in by_shared.get(key, ()):
                pairs.add((fingerprint, answer_relation))
        return len(pairs)

    def __repr__(self) -> str:
        return (
            f"InlineQueryResult({self.name!r}, "
            f"{len(self._state._world_or_unit_any())} world ids)"
        )


class InlineBackend(Backend):
    """Session state as an inlined representation; flat-table evaluation."""

    kind = "inline"

    def __init__(
        self,
        representation: InlinedRepresentation | None = None,
        strategy: str = "physical",
        rewrite: bool = True,
        kernel: str | None = None,
    ) -> None:
        if strategy not in ("physical", "translate"):
            raise EvaluationError(
                f"unknown inline strategy {strategy!r}; "
                "expected 'physical' or 'translate'"
            )
        if kernel is not None:
            resolve_kernel(kernel)  # validate eagerly
        self.representation = (
            representation
            if representation is not None
            else InlinedRepresentation.initial()
        )
        self.strategy = strategy
        self.rewrite = rewrite
        #: Pinned kernel, or None to follow ``REPRO_KERNEL`` per statement.
        self.kernel = kernel
        #: Recent fallback-route events: (kind, reason, clause, span).
        #: Bounded — a long session keeps only the newest
        #: FALLBACK_EVENT_LIMIT diagnostics; ``close()`` clears them.
        self.fallback_events: deque[FallbackEvent] = deque(
            maxlen=FALLBACK_EVENT_LIMIT
        )
        self._counter = 0
        self._decoded: WorldSet | None = None

    @property
    def resolved_kernel(self) -> str:
        """The kernel the next statement will evaluate with."""
        return resolve_kernel(self.kernel)

    # -- catalog ------------------------------------------------------------------

    def register(self, name: str, relation: Relation) -> None:
        # A complete relation is the same in every world, so it is
        # stored without id columns (the lazy interpretation) — no
        # replication however many worlds the session already has.
        rep = self.representation
        self._commit(
            InlinedRepresentation(
                tuple(rep.tables.items()) + ((name, relation),),
                rep.world_table,
                rep.id_attrs,
            )
        )

    def relation_names(self) -> tuple[str, ...]:
        return self.representation.tables.names

    def schemas(self) -> dict[str, tuple[str, ...]]:
        return self._value_schemas()

    def world_count(self) -> int:
        return self.representation.distinct_world_count()

    def to_world_set(self) -> WorldSet:
        if self._decoded is None:
            with phase("decode"):
                self._decoded = self.representation.rep()
        return self._decoded

    def close(self) -> None:
        """Drop decoded worlds and per-relation cached state.

        The inlined representation itself is kept — it *is* the session
        state — but hash indexes, cached hashes, and columnar twins of
        its tables (and of the world table) rebuild on demand. The
        fallback-event log is dropped too; it exists for diagnostics of
        statements already executed.
        """
        self._decoded = None
        self.fallback_events.clear()
        for _, relation in self.representation.tables.items():
            relation.clear_caches()
        self.representation.world_table.clear_caches()

    def _commit(self, representation: InlinedRepresentation) -> None:
        self.representation = representation
        self._decoded = None

    def _fresh_name(self, stem: str = "Q") -> str:
        return fresh_name(self.relation_names(), stem)

    # -- the compile → rewrite → evaluate pipeline ------------------------------------

    def _value_schemas(self) -> dict[str, tuple[str, ...]]:
        rep = self.representation
        return {name: rep.value_attributes(name) for name in rep.tables}

    def _compile(self, query: ast.SelectQuery, context: ExecutionContext):
        """I-SQL → world-set algebra, then the Figure 7 rewriting pass."""
        with phase("compile"):
            compiled = compile_query(query, self._value_schemas(), dict(context.views))
        return self._rewritten(compiled)

    def _rewritten(self, compiled):
        """The Figure 7 rewriting pass (best effort — plans stay correct)."""
        if not self.rewrite:
            return compiled
        schemas = self._value_schemas()
        with phase("rewrite"):
            env = {name: Schema(attrs) for name, attrs in schemas.items()}
            kind = "1" if self.representation.world_count() <= 1 else "m"
            try:
                compiled, _ = rewrite_plan(compiled, env, input_kind=kind)
            except (RewriteError, TypingError, SchemaError):
                pass  # an unoptimized plan is still a correct plan
        return compiled

    def _evaluate(self, compiled, context: ExecutionContext) -> PhysicalState:
        with phase("execute"):
            if self.strategy == "translate":
                try:
                    return self._evaluate_translated(compiled, context)
                except WorldLimitError:
                    raise
                except TranslationError:
                    pass  # e.g. repair-by-key: beyond relational algebra
            state, self._counter = evaluate_seeded(
                compiled,
                self.representation,
                max_worlds=context.max_worlds,
                counter_start=self._counter,
                kernel=self.kernel,
            )
            return state

    def _evaluate_translated(
        self, compiled, context: ExecutionContext
    ) -> PhysicalState:
        """Figure 6 route: build one RA DAG, evaluate, keep flat tables.

        The translator wants the strict Definition 5.1 form (every table
        tagged with every id), so the lazy session state is strictified
        for the duration of the statement.
        """
        translation = translate_general(
            compiled, self.representation.strict(), counter_start=self._counter
        )
        output = translation.apply(
            name="#answer", max_worlds=context.max_worlds, kernel=self.kernel
        )
        self._counter = translation.counter
        return PhysicalState(
            output.tables["#answer"], output.id_attrs, output.world_table
        )

    # -- statements ----------------------------------------------------------------

    def run_select(
        self, query: ast.SelectQuery, context: ExecutionContext, name: str | None = None
    ) -> BaseQueryResult:
        result_name = name if name is not None else self._fresh_name()
        try:
            compiled = self._compile(query, context)
        except FragmentError as reason:
            self.fallback_events.append(
                FallbackEvent("select", str(reason), reason.clause, reason.span)
            )
            return self._fallback_select(query, context, name)
        state = self._evaluate(compiled, context)
        return InlineQueryResult(self.representation, state, result_name)

    def assign(
        self, name: str, query: ast.SelectQuery, context: ExecutionContext
    ) -> None:
        try:
            compiled = self._compile(query, context)
        except FragmentError as reason:
            self.fallback_events.append(
                FallbackEvent("assign", str(reason), reason.clause, reason.span)
            )
            engine = Engine(context.views, context.keys, context.max_worlds)
            world_set = self.to_world_set()
            with phase("execute"):
                extended, _ = engine.run_select(query, world_set, name=name)
            self._reinline(extended)
            return
        state = self._evaluate(compiled, context)
        rep = self.representation
        tables = tuple(rep.tables.items()) + ((name, state.answer),)
        fresh = tuple(i for i in state.ids if i not in set(rep.id_attrs))
        if not fresh:
            # No new worlds: the answer is world-uniform (stored without
            # id columns) or varies only with existing ids. Base tables
            # are untouched either way — that is the point of the lazy
            # representation.
            self._commit(
                InlinedRepresentation(tables, rep.world_table, rep.id_attrs)
            )
            return
        # Fresh world ids were minted (choice-of / repair-by-key): the
        # session world table extends by joining with the state's world
        # table — on the shared prefix ids when the split was correlated
        # with existing worlds, as a product when it was independent.
        # Base tables still keep only the ids they depend on.
        world_table = rep.world_table.natural_join(state.world_or_unit())
        if context.max_worlds is not None and len(world_table) > context.max_worlds:
            raise WorldLimitError(
                f"assignment produced {len(world_table)} worlds, over the "
                f"limit of {context.max_worlds}"
            )
        self._commit(
            InlinedRepresentation(tables, world_table, rep.id_attrs + fresh)
        )

    def _fallback_select(
        self, query: ast.SelectQuery, context: ExecutionContext, name: str | None
    ) -> QueryResult:
        """Outside the algebra fragment: decode and run the explicit engine."""
        engine = Engine(context.views, context.keys, context.max_worlds)
        world_set = self.to_world_set()
        with phase("execute"):
            extended, result_name = engine.run_select(query, world_set, name=name)
        return QueryResult(extended, result_name)

    def _reinline(self, world_set: WorldSet) -> None:
        """Re-encode an explicit world-set produced by a fallback."""
        if world_set.is_singleton:
            self._commit(
                InlinedRepresentation.of_database(
                    dict(world_set.the_world().items())
                )
            )
        else:
            self._commit(InlinedRepresentation.of_world_set(world_set))
        self._decoded = world_set

    # -- data manipulation: the Section 3 DML rule on flat tables ----------------------

    @staticmethod
    def _key_tuples(
        relation: Relation, key: tuple[str, ...], table_ids: tuple[str, ...]
    ) -> set[tuple] | None:
        """The (V_i ∪ key) projection of every row, or None on a duplicate.

        A duplicate means two rows of one world share the key — the flat
        form of a per-world key violation. The returned set doubles as a
        probe index for :meth:`run_insert`.
        """
        positions = relation.schema.indices(table_ids + tuple(key))
        seen: set[tuple] = set()
        for row in relation.rows:
            value = tuple(row[p] for p in positions)
            if value in seen:
                return None
            seen.add(value)
        return seen

    @classmethod
    def _satisfies_keys_flat(
        cls,
        relation: Relation,
        key: tuple[str, ...] | None,
        table_ids: tuple[str, ...],
    ) -> bool:
        """Key holds in *every* world: (V_i ∪ key) determines the row."""
        if not key:
            return True
        return cls._key_tuples(relation, key, table_ids) is not None

    def _expanded_table(self, name: str, ids: tuple[str, ...]) -> Relation:
        """The flat table of *name* carrying exactly the id columns *ids*.

        A lazily stored table (fewer id columns than the predicate
        relation depends on) is replicated over the missing ids by
        joining the world table's projection — the only place DML pays
        for per-world variance, and only for the ids actually involved.
        """
        rep = self.representation
        table = rep.tables[name]
        if not set(ids) - table.schema.as_set():
            return table
        return table.natural_join(rep.world_table.project(ids))

    def _dml_state(self, plan, context: ExecutionContext):
        """Evaluate a DML match plan against the session representation."""
        state = self._evaluate(self._rewritten(plan), context)
        stray = [i for i in state.ids if i not in set(self.representation.id_attrs)]
        assert not stray, f"DML plan minted world ids {stray}"
        return state

    def _replace_table(self, name: str, table: Relation) -> None:
        rep = self.representation
        tables = tuple(
            (table_name, table if table_name == name else existing)
            for table_name, existing in rep.tables.items()
        )
        self._commit(InlinedRepresentation(tables, rep.world_table, rep.id_attrs))

    def run_insert(self, statement: ast.Insert, context: ExecutionContext) -> bool:
        """Insert into every world; on a key violation, insert nowhere.

        The key check runs *before* any new table is materialized: all
        additions share one value part and differ only on world ids, so
        a violation exists iff some existing row already claims the new
        key in a world the insert reaches (or the table itself violates
        the key, which the engine's whole-table check also rejects). A
        violating insert on a 2¹⁶-world table therefore costs one
        indexed scan — no O(worlds) garbage rows.
        """
        rep = self.representation
        table = rep.tables[statement.relation]
        value_attrs = rep.value_attributes(statement.relation)
        if len(statement.values) != len(value_attrs):
            raise SchemaError(
                f"insert arity {len(statement.values)} does not match "
                f"{statement.relation}{list(value_attrs)}"
            )
        assignment = dict(zip(value_attrs, statement.values))
        table_ids = rep.table_id_attrs(statement.relation)
        sub_ids = (
            rep.world_table.distinct_values(table_ids) if table_ids else [()]
        )
        key = context.keys.get(statement.relation)
        if key:
            seen = self._key_tuples(table, tuple(key), table_ids)
            if seen is None:
                return False  # a pre-existing violation rejects too
            new_key = tuple(assignment[a] for a in key)
            if any(tuple(sub_id) + new_key in seen for sub_id in sub_ids):
                return False
        schema = table.schema
        additions = (
            tuple(
                {**assignment, **dict(zip(table_ids, sub_id))}[a]
                for a in schema.attributes
            )
            for sub_id in sub_ids
        )
        new_table = Relation(schema, list(table.rows) + list(additions))
        self._replace_table(statement.relation, new_table)
        return True

    def run_delete(self, statement: ast.Delete, context: ExecutionContext) -> None:
        """Delete matching rows in every world — flat, even with subqueries.

        Subquery-free conditions filter the flat table in one pass. A
        condition with (world-local) subqueries compiles to its match
        plan (``select * from R where φ``), whose flat answer is
        subtracted from the id-expanded table per world id — the
        Section 3 rule without decoding a single world. Only conditions
        the compiler rejects (e.g. world-splitting subqueries, which the
        engine rejects too when a row reaches them) fall back.
        """
        if ast.condition_subqueries(statement.where):
            try:
                plan, attrs = compile_delete(
                    statement, self._value_schemas(), dict(context.views)
                )
            except FragmentError as reason:
                self.fallback_events.append(
                    FallbackEvent("delete", str(reason), reason.clause, reason.span)
                )
                self._reinline(
                    Engine(
                        context.views, context.keys, context.max_worlds
                    ).run_delete(statement, self.to_world_set())
                )
                return
            state = self._dml_state(plan, context)
            self._apply_delete(statement.relation, attrs, state)
            return
        table = self.representation.tables[statement.relation]
        if statement.where is None:
            kept: list[tuple] = []
        else:
            matches = Engine(context.views, context.keys).bind_row_condition(
                statement.where, table.schema.attributes
            )
            kept = [row for row in table.rows if not matches(row)]
        self._replace_table(statement.relation, Relation(table.schema, kept))

    def _apply_delete(self, name: str, attrs: tuple[str, ...], state) -> None:
        """Subtract the match plan's flat answer from the flat table."""
        answer = state.answer
        if not answer:
            # Nothing matched in any world: keep the (possibly lazily
            # stored) table untouched rather than committing an
            # id-expanded copy — a no-op delete must not replicate the
            # table over the match plan's foreign world ids.
            return
        expanded = self._expanded_table(name, state.ids)
        key_attrs = state.ids + attrs
        answer_positions = answer.schema.indices(key_attrs)
        matched = {
            tuple(row[p] for p in answer_positions) for row in answer.rows
        }
        table_positions = expanded.schema.indices(key_attrs)
        kept = [
            row
            for row in expanded.rows
            if tuple(row[p] for p in table_positions) not in matched
        ]
        self._replace_table(name, Relation._raw(expanded.schema, kept))

    def run_update(self, statement: ast.Update, context: ExecutionContext) -> bool:
        """Update matching rows in every world — flat, even with subqueries.

        Subquery-free statements rewrite the flat table row by row. With
        subqueries in the condition or the set expressions, the compiled
        match plan (extended with one value column per scalar-subquery
        set clause) is evaluated once; its flat answer names every
        matched (world id, row) pair and carries the inputs of the new
        values, so the table is rewritten per world id without decoding
        worlds. The Section 3 discard rule then applies: a key violation
        in *any* world rejects the update in all of them.
        """
        in_where = bool(ast.condition_subqueries(statement.where))
        in_set = any(
            ast.expression_subqueries(clause.expression)
            for clause in statement.settings
        )
        if in_where or in_set:
            try:
                plan, attrs, set_terms = compile_update(
                    statement, self._value_schemas(), dict(context.views)
                )
            except FragmentError as reason:
                self.fallback_events.append(
                    FallbackEvent(
                        "update", str(reason), reason.clause, reason.span
                    )
                )
                world_set, applied = Engine(
                    context.views, context.keys, context.max_worlds
                ).run_update(statement, self.to_world_set())
                if applied:
                    self._reinline(world_set)
                return applied
            state = self._dml_state(plan, context)
            return self._apply_update(statement, attrs, set_terms, state, context)
        table = self.representation.tables[statement.relation]
        engine = Engine(context.views, context.keys)
        attributes = table.schema.attributes
        matches = (
            (lambda row: True)
            if statement.where is None
            else engine.bind_row_condition(statement.where, attributes)
        )
        settings = [
            (
                table.schema.index(clause.attribute),
                engine.bind_row_expression(clause.expression, attributes),
            )
            for clause in statement.settings
        ]
        rows: set[tuple] = set()
        for row in table.rows:
            if not matches(row):
                rows.add(row)
                continue
            new_row = list(row)
            for position, value in settings:
                new_row[position] = value(row)
            rows.add(tuple(new_row))
        new_table = Relation(table.schema, rows)
        if not self._satisfies_keys_flat(
            new_table,
            context.keys.get(statement.relation),
            self.representation.table_id_attrs(statement.relation),
        ):
            return False
        self._replace_table(statement.relation, new_table)
        return True

    def _apply_update(
        self,
        statement: ast.Update,
        attrs: tuple[str, ...],
        set_terms: tuple[tuple[str, object], ...],
        state,
        context: ExecutionContext,
    ) -> bool:
        """Rewrite the flat table from the evaluated update plan."""
        name = statement.relation
        answer = state.answer
        if not answer:
            # No row matched in any world: the table stays as stored
            # (no id expansion), but the engine still key-checks the
            # unchanged relation — a pre-existing violation rejects.
            table = self.representation.tables[name]
            return self._satisfies_keys_flat(
                table,
                context.keys.get(name),
                self.representation.table_id_attrs(name),
            )
        ids = state.ids
        order = attrs + ids
        expanded = self._expanded_table(name, ids)._reordered(order)
        answer_positions = answer.schema.indices(order)
        matched = {
            tuple(row[p] for p in answer_positions) for row in answer.rows
        }
        rows: set[tuple] = {row for row in expanded.rows if row not in matched}
        set_index = {attr: i for i, attr in enumerate(attrs)}
        binders = [
            (set_index[attr], term.bind(answer.schema))
            for attr, term in set_terms
        ]
        for row in answer.rows:
            new_row = list(row[p] for p in answer_positions)
            for position, value in binders:
                new_row[position] = value(row)
            rows.add(tuple(new_row))
        new_table = Relation(order, rows)
        if not self._satisfies_keys_flat(
            new_table, context.keys.get(name), ids
        ):
            return False
        self._replace_table(name, new_table)
        return True
