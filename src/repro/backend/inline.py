"""The inline backend: I-SQL over the inlined representation (Section 5).

The session state is an :class:`InlinedRepresentation`
⟨R₁ᵀ, …, R_kᵀ, W⟩ — one flat table per relation, tagged with world-id
attributes, plus the world table W — and is **never** enumerated into
explicit worlds during evaluation. A statement runs through the layered
pipeline of the paper's concluding vision::

    I-SQL ──isql.compile──▶ world-set algebra
          ──optimizer.rewriter──▶ rewritten plan (Figure 7 equivalences)
          ──inline.physical / inline.translate──▶ flat-table evaluation
          ──decode (only on demand)──▶ explicit worlds

Two evaluation strategies implement the last-but-one arrow:

* ``"physical"`` (default) — the dedicated physical operators of
  :mod:`repro.inline.physical`, seeded with the session's world table;
  supports everything in the algebra fragment including repair-by-key.
* ``"translate"`` — the literal Figure 6 translation
  (:mod:`repro.inline.translate`) composed into one relational algebra
  DAG and evaluated by :mod:`repro.relational.algebra`; falls back to
  the physical operators where relational algebra cannot reach
  (repair-by-key, Proposition 4.2).

The compiled fragment covers the whole Figure 1 select surface — SQL
aggregation (a world-grouped flat aggregation), ``[not] in`` /
``[not] exists`` condition subqueries (decorrelated into semijoins and
antijoins, including under ``or`` as a union of per-disjunct chains),
comparisons against scalar subqueries (aggregate or bare-column, the
latter through the ``single`` pseudo-aggregate with a runtime
cardinality guard), and ``group worlds by ⟨subquery⟩`` (subquery-keyed
world grouping) — so those statements never enumerate worlds either.
DML runs flat too: ``delete``/``update`` conditions and ``update`` set
expressions with (world-local) subqueries compile to a match plan whose
per-world-id answer masks or rewrites the flat table directly — no
``_reinline`` round-trip. Only the genuinely row-at-a-time residue
falls back to the explicit engine on the decoded world-set (assignments
re-inline the result): non-column ``in`` needles, scalar subqueries of
other shapes (or under ``or``, where the cardinality guard cannot stay
as lazy as the engine's short-circuit), correlated subqueries that are
themselves complex, disjunctions over an already-world-splitting outer
plan, DML subqueries that are not world-local, and select columns
outside the GROUP BY key.
``fallback_events`` records those statements (kind, reason, clause,
source span), bounded to the most recent :data:`FALLBACK_EVENT_LIMIT`
so a long-lived session's diagnostics cannot grow without bound.

``possible``/``certain`` closings are answered directly from the flat
answer table (a projection, resp. a division by W); worlds are decoded
only when a caller explicitly asks for ``.world_set``.
"""

from __future__ import annotations

from collections import deque
from typing import NamedTuple

from repro.backend.base import Backend, BaseQueryResult, ExecutionContext
from repro.backend.explicit import QueryResult
from repro.backend.instrument import phase
from repro.cache import MISS, CacheInfo, StatementCache
from repro.errors import (
    EvaluationError,
    RewriteError,
    SchemaError,
    TranslationError,
    TypingError,
    WorldLimitError,
)
from repro.inline.factors import FactoredWorld
from repro.inline.physical import (
    PhysicalState,
    decode_extension,
    evaluate_seeded,
    factored_certain_rows,
    match_answers_to_session_worlds,
)
from repro.inline.representation import InlinedRepresentation
from repro.inline.translate import translate_general
from repro.isql import ast
from repro.isql.compile import (
    FragmentError,
    compile_delete,
    compile_query,
    compile_update,
)
from repro.isql.engine import Engine, _Resolver
from repro.optimizer.rewriter import optimize as rewrite_plan
from repro.relational import predicates
from repro.relational.guards import checkpoint
from repro.relational.array_kernel import (
    ArrayRelation,
    _distinct_count,
    _first_rows,
    as_array,
)
from repro.relational.columnar import (
    ColumnarRelation,
    as_columnar,
    as_tuple,
    kernel_ops,
    resolve_kernel,
    tuples_of,
)
from repro.relational.pad import PAD
from repro.relational.relation import Relation, tuple_getter
from repro.relational.schema import Schema
from repro.worlds.worldset import WorldSet, fresh_name

#: Most recent fallback events a session retains (diagnostics only —
#: an unbounded list would grow forever in a long residue-heavy session).
FALLBACK_EVENT_LIMIT = 64


class FallbackEvent(NamedTuple):
    """One fallback-route diagnostic.

    ``event[0]``/``event[1]`` still read the historical (kind, reason)
    positions, but this is a 4-tuple — code that unpacked the old pair
    must index or use the field names.
    """

    kind: str
    reason: str
    clause: str | None = None
    span: tuple[int, int] | None = None


class InlineQueryResult(BaseQueryResult):
    """A select outcome held as flat tables; worlds decoded on demand."""

    __slots__ = ("_representation", "_state", "name", "_decoded")

    def __init__(
        self,
        representation: InlinedRepresentation,
        state: PhysicalState,
        name: str,
    ) -> None:
        self._representation = representation
        self._state = state
        self.name = name
        self._decoded: WorldSet | None = None

    def answers(self) -> frozenset[Relation]:
        return frozenset(self._state.answers_by_world().values())

    def possible(self) -> Relation:
        """poss closure straight off the flat answer table: π_U(Rᵀ)."""
        state = self._state
        return as_tuple(state._answer.project(state.value_attributes()))

    def certain(self) -> Relation:
        """cert closure straight off the flat answer table: Rᵀ ÷ W.

        Over a factored world the division runs factor by factor when
        the answer has the repair shape (a value is certain iff an
        all-PAD row holds it or some factor picks it in every choice);
        otherwise the state expands to joint ids first.
        """
        state = self._state
        if isinstance(state._world, FactoredWorld):
            rows = factored_certain_rows(state)
            if rows is not None:
                return Relation._raw(
                    Schema(state.value_attributes()), list(rows)
                )
            state = state.plain()
        return as_tuple(state._answer.divide(state._world_or_unit_any()))

    @property
    def world_set(self) -> WorldSet:
        if self._decoded is None:
            with phase("decode"):
                self._decoded = decode_extension(
                    self._representation, self._state, self.name
                )
        return self._decoded

    def world_count(self) -> int:
        """Distinct result worlds, from fingerprints — no decoding.

        A result world is a (base world, answer) pair; equal pairs
        collapse like they would in the explicit world-set.
        """
        if self._decoded is not None:
            return len(self._decoded)
        if not self._state.ids:
            # A world-uniform answer pairs the same relation with every
            # base world, so distinct result worlds = distinct session
            # worlds — which a factored representation counts as a
            # product of per-factor counts, never enumerating ids.
            return self._representation.distinct_world_count()
        fingerprints = self._representation.world_fingerprints()
        by_shared, shared_in_session = match_answers_to_session_worlds(
            self._representation, self._state.plain()
        )
        pairs = set()
        for session_world_id, fingerprint in fingerprints.items():
            key = tuple(session_world_id[p] for p in shared_in_session)
            for answer_relation in by_shared.get(key, ()):
                pairs.add((fingerprint, answer_relation))
        return len(pairs)

    def __repr__(self) -> str:
        return (
            f"InlineQueryResult({self.name!r}, "
            f"{len(self._state._world_or_unit_any())} world ids)"
        )


def _carrying_versions(
    replacement: InlinedRepresentation,
    source: InlinedRepresentation,
    added: str,
) -> InlinedRepresentation:
    """Carry *source*'s table/world versions onto a same-worlds commit.

    Constructing an :class:`InlinedRepresentation` mints fresh versions
    for every table, which would invalidate the whole result memo. A
    commit that only *adds* a table (``register``, a world-preserving
    assignment) leaves the existing tables and the world table
    untouched, so their versions carry over verbatim; only the added
    name keeps its fresh mint.
    """
    versions = dict(source.versions)
    versions[added] = replacement.versions[added]
    replacement.versions = versions
    replacement.world_version = source.world_version
    return replacement


class InlineBackend(Backend):
    """Session state as an inlined representation; flat-table evaluation."""

    kind = "inline"

    def __init__(
        self,
        representation: InlinedRepresentation | None = None,
        strategy: str = "physical",
        rewrite: bool = True,
        kernel: str | None = None,
        cache: "bool | StatementCache" = True,
    ) -> None:
        if strategy not in ("physical", "translate"):
            raise EvaluationError(
                f"unknown inline strategy {strategy!r}; "
                "expected 'physical' or 'translate'"
            )
        if kernel is not None:
            kernel_ops(kernel)  # validate (and load) eagerly
        self.representation = (
            representation
            if representation is not None
            else InlinedRepresentation.initial()
        )
        self.strategy = strategy
        self.rewrite = rewrite
        #: Pinned kernel, or None to follow ``REPRO_KERNEL`` per statement.
        self.kernel = kernel
        #: The statement cache: a private StatementCache (``cache=True``),
        #: a shared one (``spawn()`` hands the parent's instance to every
        #: child, making it pool-wide), or None (``cache=False``).
        if cache is True:
            self.cache: StatementCache | None = StatementCache()
        elif cache is False or cache is None:
            self.cache = None
        elif isinstance(cache, StatementCache):
            self.cache = cache
        else:
            raise EvaluationError(
                f"cache must be True, False, or a StatementCache, got {cache!r}"
            )
        #: How the cache treated the most recent statement (see Backend).
        self.last_cache = "bypass"
        #: Total fallback-route statements over the session's lifetime
        #: (fallback_events keeps only the newest FALLBACK_EVENT_LIMIT).
        self.fallback_total = 0
        #: Recent fallback-route events: (kind, reason, clause, span).
        #: Bounded — a long session keeps only the newest
        #: FALLBACK_EVENT_LIMIT diagnostics; ``close()`` clears them.
        self.fallback_events: deque[FallbackEvent] = deque(
            maxlen=FALLBACK_EVENT_LIMIT
        )
        self._counter = 0
        self._decoded: WorldSet | None = None

    @property
    def resolved_kernel(self) -> str:
        """The kernel the next statement will evaluate with."""
        return resolve_kernel(self.kernel)

    # -- catalog ------------------------------------------------------------------

    def register(self, name: str, relation: Relation) -> None:
        # A complete relation is the same in every world, so it is
        # stored without id columns (the lazy interpretation) — no
        # replication however many worlds the session already has.
        rep = self.representation
        self._commit(
            _carrying_versions(
                InlinedRepresentation(
                    tuple(rep.tables.items()) + ((name, relation),),
                    rep._world_table,
                    rep.id_attrs,
                    factors=rep.factors,
                    wild_attrs=rep.wild_attrs,
                ),
                rep,
                name,
            )
        )

    def relation_names(self) -> tuple[str, ...]:
        return self.representation.tables.names

    def schemas(self) -> dict[str, tuple[str, ...]]:
        return self._value_schemas()

    def world_count(self) -> int:
        return self.representation.distinct_world_count()

    def to_world_set(self) -> WorldSet:
        if self._decoded is None:
            with phase("decode"):
                self._decoded = self.representation.rep()
        return self._decoded

    def close(self) -> None:
        """Drop decoded worlds and per-relation cached state.

        The inlined representation itself is kept — it *is* the session
        state — but hash indexes, cached hashes, and columnar twins of
        its tables (and of the world table) rebuild on demand. The
        fallback-event log is dropped too; it exists for diagnostics of
        statements already executed.

        The statement cache is **detached**, not cleared: a retired
        session must stop pinning memoized relations, but when the
        instance is shared pool-wide (``spawn()``), clearing would wipe
        the siblings' entries. The replacement keeps the configured
        bounds, so a reused session caches again from empty.
        """
        self._decoded = None
        self.fallback_events.clear()
        if self.cache is not None:
            self.cache = StatementCache(
                plan_entries=self.cache.plans.maxsize,
                memo_entries=self.cache.memo.maxsize,
                parse_entries=self.cache.parses.maxsize,
            )
        rep = self.representation
        for _, relation in rep.tables.items():
            relation.clear_caches()
        if rep.factors is not None:
            # Never *materialize* the joint table just to clear it.
            for factor in rep.factors.factors:
                factor.clear_caches()
            if rep._world_table is not None:
                rep._world_table.clear_caches()
        else:
            rep.world_table.clear_caches()

    def _commit(self, representation: InlinedRepresentation) -> None:
        self.representation = representation
        self._decoded = None

    def snapshot(self) -> object:
        """Capture (representation, decoded world-set): two references.

        The representation and its tables are immutable and commits are
        reference swaps (:meth:`_commit`), so this is O(#tables) — the
        cheap-snapshot property the transactional session layer builds
        on. The decoded world-set rides along so a rollback does not
        throw away a decode the snapshot point had already paid for.
        """
        return (self.representation, self._decoded)

    def restore(self, token: object) -> None:
        self.representation, self._decoded = token

    def spawn(self) -> "InlineBackend":
        """A fresh backend sharing no mutable state, same configuration.

        Carries strategy/rewrite/kernel across (the base default would
        lose them). The new backend starts from the empty initial
        representation; the service layer immediately :meth:`restore`\\ s
        a snapshot token into it, which *shares* the immutable tables of
        the source representation — the copy-on-write handoff that makes
        pooled sessions O(#tables) to create. The statement cache is
        passed **by reference**: every session forked from one template
        shares the same plan cache and result memo (lock-cheap — see
        :mod:`repro.cache`), so compilation amortizes pool-wide.
        """
        return InlineBackend(
            strategy=self.strategy,
            rewrite=self.rewrite,
            kernel=self.kernel,
            cache=self.cache if self.cache is not None else False,
        )

    def cache_info(self) -> CacheInfo:
        """Aggregate hit/miss/entry counters of the statement cache."""
        if self.cache is None:
            return CacheInfo.empty()
        return self.cache.info()

    def _fresh_name(self, stem: str = "Q") -> str:
        return fresh_name(self.relation_names(), stem)

    # -- the compile → rewrite → evaluate pipeline ------------------------------------

    def _value_schemas(self) -> dict[str, tuple[str, ...]]:
        rep = self.representation
        return {name: rep.value_attributes(name) for name in rep.tables}

    def _catalog_key(self, context: ExecutionContext) -> tuple:
        """The schema/view epoch a compiled plan is valid for.

        Value schemas (in catalog order) plus the view definitions: the
        exact inputs of :func:`compile_query` besides the statement
        itself. Assignments, registrations, and view changes shift this
        key, so a plan compiled against the old catalog can never be
        served against the new one.
        """
        rep = self.representation
        return (
            tuple((name, rep.value_attributes(name)) for name in rep.tables),
            tuple(sorted(context.views.items())),
        )

    def _world_kind(self) -> str:
        """The one-vs-many-worlds bit the rewriter specializes plans on."""
        if not self.rewrite:
            return "-"
        return "1" if self.representation.world_count() <= 1 else "m"

    def _plan_key(self, tag: str, statement, context: ExecutionContext) -> tuple:
        return (
            tag,
            statement,
            self._catalog_key(context),
            self.strategy,
            self.rewrite,
            self._world_kind(),
        )

    def _compile(self, query: ast.SelectQuery, context: ExecutionContext):
        """I-SQL → world-set algebra, then the Figure 7 rewriting pass.

        Consults the plan cache first: a hit skips both compilation and
        rewriting (the cached artifact is the *rewritten* plan). Compile
        failures (FragmentError → explicit-engine fallback) are never
        cached — their diagnostics carry source spans, which the
        span-insensitive statement fingerprint would skew.
        """
        cache = self.cache if context.cache else None
        if cache is not None:
            key = self._plan_key("select", query, context)
            with phase("cache_lookup"):
                hit = cache.plans.get(key)
            if hit is not MISS:
                self.last_cache = "hit"
                return hit
        with phase("compile"):
            compiled = compile_query(query, self._value_schemas(), dict(context.views))
        compiled = self._rewritten(compiled)
        if cache is not None:
            cache.plans.put(key, compiled)
            self.last_cache = "miss"
        return compiled

    def _compiled_dml(
        self, tag: str, statement, context: ExecutionContext, compiler
    ) -> tuple:
        """A DML statement's rewritten match plan + metadata, via the cache.

        Returns exactly what *compiler* (:func:`compile_delete` /
        :func:`compile_update`) returns, with the plan component already
        rewritten — callers must not rewrite again. FragmentError
        propagates uncached, like :meth:`_compile`.
        """
        cache = self.cache if context.cache else None
        if cache is not None:
            key = self._plan_key(tag, statement, context)
            with phase("cache_lookup"):
                hit = cache.plans.get(key)
            if hit is not MISS:
                self.last_cache = "hit"
                return hit
        with phase("compile"):
            parts = compiler(statement, self._value_schemas(), dict(context.views))
        parts = (self._rewritten(parts[0]),) + tuple(parts[1:])
        if cache is not None:
            cache.plans.put(key, parts)
            self.last_cache = "miss"
        return parts

    def _memo_key(self, query: ast.SelectQuery, context: ExecutionContext):
        """The result-memo fingerprint of a select, or None if unkeyable.

        Keys on the statement plus the version counters of every
        relation it reads (and the world version): DML deltas mint a
        fresh version for exactly the table they touch, so the key
        changes precisely when the answer could. Versions live inside
        the (immutable) representation, so snapshot restore / rollback
        bring the old versions back with the old tables and a pinned
        reader keeps hitting its own snapshot's entries. Unknown
        relation names return None so resolution errors surface
        identically cached or not.
        """
        rep = self.representation
        views = dict(context.views)
        try:
            versions = tuple(
                sorted(
                    (name, rep.versions[name])
                    for name in ast.referenced_relations(query, views)
                )
            )
        except KeyError:
            return None
        return (
            "memo",
            query,
            versions,
            rep.world_version,
            self.strategy,
            self.rewrite,
            self.resolved_kernel,
            context.max_worlds,
            tuple(sorted(views.items())),
        )

    def _memoized_state(
        self, query: ast.SelectQuery, compiled, context: ExecutionContext
    ) -> PhysicalState:
        """Evaluate *compiled*, memoizing world-preserving results.

        Only states that mint no fresh world ids (and no new wildcard
        columns) are stored: they are pure functions of the versioned
        input tables, and replaying them from the memo cannot collide
        with ids a later statement mints. ``choice-of`` / repair results
        always re-evaluate.
        """
        cache = self.cache if context.cache else None
        key = self._memo_key(query, context) if cache is not None else None
        if key is not None:
            with phase("cache_lookup"):
                hit = cache.memo.get(key)
            if hit is not MISS:
                self.last_cache = "hit"
                return hit
        state = self._evaluate(compiled, context)
        if key is not None:
            rep = self.representation
            if set(state.ids) <= set(rep.id_attrs) and state.wild <= rep.wild_attrs:
                cache.memo.put(key, state)
        return state

    def _note_fallback(self, kind: str, reason: FragmentError) -> None:
        self.fallback_total += 1
        self.fallback_events.append(
            FallbackEvent(kind, str(reason), reason.clause, reason.span)
        )

    def _rewritten(self, compiled):
        """The Figure 7 rewriting pass (best effort — plans stay correct)."""
        if not self.rewrite:
            return compiled
        schemas = self._value_schemas()
        with phase("rewrite"):
            env = {name: Schema(attrs) for name, attrs in schemas.items()}
            kind = "1" if self.representation.world_count() <= 1 else "m"
            try:
                compiled, _ = rewrite_plan(compiled, env, input_kind=kind)
            except (RewriteError, TypingError, SchemaError):
                pass  # an unoptimized plan is still a correct plan
        return compiled

    def _evaluate(
        self, compiled, context: ExecutionContext, representation=None
    ) -> PhysicalState:
        """Evaluate a compiled plan (against *representation*, default the
        session state — DML's value-determined route passes a view)."""
        if representation is None:
            representation = self.representation
        with phase("execute"):
            if self.strategy == "translate":
                try:
                    return self._evaluate_translated(
                        compiled, context, representation
                    )
                except WorldLimitError:
                    raise
                except TranslationError:
                    pass  # e.g. repair-by-key: beyond relational algebra
            state, self._counter = evaluate_seeded(
                compiled,
                representation,
                max_worlds=context.max_worlds,
                counter_start=self._counter,
                kernel=self.kernel,
            )
            return state

    def _evaluate_translated(
        self, compiled, context: ExecutionContext, representation
    ) -> PhysicalState:
        """Figure 6 route: build one RA DAG, evaluate, keep flat tables.

        The translator wants the strict Definition 5.1 form (every table
        tagged with every id), so the lazy session state is strictified
        for the duration of the statement.
        """
        translation = translate_general(
            compiled, representation.strict(), counter_start=self._counter
        )
        output = translation.apply(
            name="#answer", max_worlds=context.max_worlds, kernel=self.kernel
        )
        self._counter = translation.counter
        return PhysicalState(
            output.tables["#answer"], output.id_attrs, output.world_table
        )

    # -- statements ----------------------------------------------------------------

    def run_select(
        self, query: ast.SelectQuery, context: ExecutionContext, name: str | None = None
    ) -> BaseQueryResult:
        result_name = name if name is not None else self._fresh_name()
        try:
            compiled = self._compile(query, context)
        except FragmentError as reason:
            self._note_fallback("select", reason)
            return self._fallback_select(query, context, name)
        state = self._memoized_state(query, compiled, context)
        return InlineQueryResult(self.representation, state, result_name)

    def assign(
        self, name: str, query: ast.SelectQuery, context: ExecutionContext
    ) -> None:
        try:
            compiled = self._compile(query, context)
        except FragmentError as reason:
            self._note_fallback("assign", reason)
            engine = Engine(context.views, context.keys, context.max_worlds)
            world_set = self.to_world_set()
            with phase("execute"):
                extended, _ = engine.run_select(query, world_set, name=name)
            self._reinline(extended)
            return
        state = self._memoized_state(query, compiled, context)
        rep = self.representation
        fresh = tuple(i for i in state.ids if i not in set(rep.id_attrs))
        if not fresh:
            # No new worlds: the answer is world-uniform (stored without
            # id columns) or varies only with existing ids. Base tables
            # are untouched either way — that is the point of the lazy
            # representation. (Wild PAD columns in the answer are fine:
            # they are existing session factors, so the registry
            # already covers them.)
            assert state.wild <= rep.wild_attrs
            tables = tuple(rep.tables.items()) + ((name, state.answer),)
            self._commit(
                _carrying_versions(
                    InlinedRepresentation(
                        tables,
                        rep._world_table,
                        rep.id_attrs,
                        factors=rep.factors,
                        wild_attrs=rep.wild_attrs,
                    ),
                    rep,
                    name,
                )
            )
            return
        # Fresh world ids were minted (choice-of / repair-by-key).
        state_world = state._world
        if rep.factors is not None or isinstance(state_world, FactoredWorld):
            if self._assign_factored(name, state, fresh, context):
                return
            # Correlated with existing factors in a way the factored
            # form cannot express: fall back to the joint encoding.
            state = state.plain()
            rep = self.representation.materialized()
        tables = tuple(rep.tables.items()) + ((name, state.answer),)
        # The session world table extends by joining with the state's
        # world table — on the shared prefix ids when the split was
        # correlated with existing worlds, as a product when it was
        # independent. Base tables still keep only the ids they depend on.
        world_table = rep.world_table.natural_join(state.world_or_unit())
        if context.max_worlds is not None and len(world_table) > context.max_worlds:
            raise WorldLimitError(
                f"assignment produced {len(world_table)} worlds, over the "
                f"limit of {context.max_worlds}"
            )
        self._commit(
            InlinedRepresentation(tables, world_table, rep.id_attrs + fresh)
        )

    def _assign_factored(
        self,
        name: str,
        state: PhysicalState,
        fresh: tuple[str, ...],
        context: ExecutionContext,
    ) -> bool:
        """Commit a world-splitting assignment in factored form.

        The state's world contributes its factors (a joint legacy world
        counts as one factor) next to the session's; a factor over
        existing ids must restate a session factor verbatim — anything
        else means the split correlated with existing worlds, and the
        caller falls back to the joint join. Returns True on commit.
        """
        rep = self.representation
        state_world = state._world
        prior = (
            rep.factors.factors
            if rep.factors is not None
            else ((rep.world_table,) if rep.id_attrs else ())
        )
        state_factors = (
            state_world.factors
            if isinstance(state_world, FactoredWorld)
            else (as_tuple(state.world_or_unit()),)
        )
        combined = list(prior)
        taken = {a for factor in prior for a in factor.schema.attributes}
        for factor in state_factors:
            attrs = set(factor.schema.attributes)
            if attrs.isdisjoint(taken):
                combined.append(factor)
                taken |= attrs
            elif not any(factor == existing for existing in prior):
                return False
        world = FactoredWorld(tuple(combined))
        if context.max_worlds is not None and world.count() > context.max_worlds:
            raise WorldLimitError(
                f"assignment produced {world.count()} worlds, over the "
                f"limit of {context.max_worlds}"
            )
        tables = tuple(rep.tables.items()) + ((name, state.answer),)
        self._commit(
            InlinedRepresentation(
                tables,
                None,
                rep.id_attrs + fresh,
                factors=world,
                wild_attrs=rep.wild_attrs | state.wild,
            )
        )
        return True

    def _fallback_select(
        self, query: ast.SelectQuery, context: ExecutionContext, name: str | None
    ) -> QueryResult:
        """Outside the algebra fragment: decode and run the explicit engine."""
        engine = Engine(context.views, context.keys, context.max_worlds)
        world_set = self.to_world_set()
        with phase("execute"):
            extended, result_name = engine.run_select(query, world_set, name=name)
        return QueryResult(extended, result_name)

    def _reinline(self, world_set: WorldSet) -> None:
        """Re-encode an explicit world-set produced by a fallback."""
        if world_set.is_singleton:
            self._commit(
                InlinedRepresentation.of_database(
                    dict(world_set.the_world().items())
                )
            )
        else:
            self._commit(InlinedRepresentation.of_world_set(world_set))
        self._decoded = world_set

    # -- data manipulation: the Section 3 DML rule on flat tables ----------------------

    def _in_kernel(self, relation):
        """*relation* in the active kernel's representation (cached)."""
        return kernel_ops(self.kernel).convert(relation)

    def _distinct_rows_relation(self, schema, rows):
        """A kernel-native relation from already-distinct aligned rows."""
        return kernel_ops(self.kernel).from_distinct_rows(schema, rows)

    @staticmethod
    def _key_tuples(relation, key, table_ids) -> set[tuple] | None:
        """The (V_i ∪ key) projection of every row, or None on a duplicate.

        A duplicate means two rows of one world share the key — the flat
        form of a per-world key violation. Rows are distinct, so the
        projection is violation-free iff it has one entry per row; the
        whole check is one C-speed pass over the id+key column slices
        on either kernel. The returned set doubles as a probe index for
        :meth:`run_insert`.
        """
        seen = set(tuples_of(relation, tuple(table_ids) + tuple(key)))
        if len(seen) != len(relation):
            return None
        return seen

    @classmethod
    def _satisfies_keys_flat(
        cls, relation, key, table_ids, wild_attrs=frozenset()
    ) -> bool:
        """Key holds in *every* world: (V_i ∪ key) determines the row.

        On a table with wild (PAD-wildcard) id columns the distinctness
        probe is replaced by a pattern-compatibility check — two rows
        violate iff some world holds both — see :func:`_wild_key_satisfied`.
        """
        if not key:
            return True
        if wild_attrs and not wild_attrs.isdisjoint(table_ids):
            return _wild_key_satisfied(
                relation, tuple(key), table_ids, frozenset(wild_attrs)
            )
        return cls._key_tuples(relation, key, table_ids) is not None

    def _dml_state(self, plan, context: ExecutionContext):
        """Evaluate a (rewritten) DML match plan against the session state.

        The apply paths mask/scatter by exact id match, so a wild
        (PAD-pattern) answer expands to joint ids here — over the
        touched factors only, mirroring :meth:`InlinedRepresentation.expanded`
        on the table side. *plan* comes out of :meth:`_compiled_dml`
        already rewritten.
        """
        state = self._evaluate(plan, context).plain()
        stray = [i for i in state.ids if i not in set(self.representation.id_attrs)]
        assert not stray, f"DML plan minted world ids {stray}"
        return state

    def _subqueries_world_uniform(self, subqueries, views) -> bool:
        """True when every relation the subqueries read is world-uniform.

        A (world-local) DML subquery that reads only tables stored
        without id columns has the same answer in every world, so the
        whole match is *value-determined*: whether a row is matched —
        and the value a set clause computes for it — depends only on
        the row itself, never on which world holds it. Those statements
        take :meth:`_uniform_dml_state`'s route. Unknown relation names
        route to the general path so resolution errors stay identical.
        """
        if self.strategy == "translate":
            # The Figure 6 route strictifies the representation (every
            # table re-tagged with every id), which would undo the
            # value-determined evaluation; the translate backend keeps
            # the general id-expanded route instead — it is the
            # differential vehicle, not the hot path.
            return False
        rep = self.representation
        views = dict(views)
        for subquery in subqueries:
            for name in ast.referenced_relations(subquery, views):
                if name not in rep.tables or rep.table_id_attrs(name):
                    return False
        return True

    def _uniform_dml_state(self, name, plan, context: ExecutionContext):
        """Evaluate a value-determined match plan on distinct value rows.

        The plan runs against a view of the session where the target
        table is replaced by its distinct value projection (id columns
        dropped): polynomial in the *distinct value rows* — typically
        orders of magnitude below the id-expanded flat table — and the
        flat answer applies to every world alike. With a 2¹³-world
        repaired census this turns a 2·10⁵-row match pass into a
        ~40-row one; the only full-table work left is the single apply
        pass of :meth:`_apply_delete_uniform`/:meth:`_apply_update_uniform`.
        """
        rep = self.representation
        projected = as_tuple(
            self._in_kernel(rep.tables[name]).project(rep.value_attributes(name))
        )
        uniform = rep.replacing(name, projected, validate=False)
        state = self._evaluate(plan, context, uniform)
        assert not state.ids, f"value-determined DML plan minted ids {state.ids}"
        return state

    def _replace_table(self, name: str, table) -> None:
        """Commit a rewritten flat table (either kernel).

        Routed through :meth:`InlinedRepresentation.replacing` with
        validation off: every DML rewrite derives its rows from the
        representation's own tables (mask keeps a subset, scatter
        rewrites only value columns — ``$``-prefixed id attributes are
        not even lexable in a set clause — and append draws its id
        columns from the world table), so the committed table cannot
        reference an unknown world id. Cached id expansions of the
        other tables carry over.
        """
        self._commit(
            self.representation.replacing(name, as_tuple(table), validate=False)
        )

    @staticmethod
    def _insert_rows(schema, assignment, table_ids, sub_ids) -> list[tuple]:
        """The aligned addition tuples: one per world id the table carries."""
        template = [assignment.get(a) for a in schema.attributes]
        positions = schema.indices(table_ids)
        rows = []
        for sub_id in sub_ids:
            row = list(template)
            for position, value in zip(positions, sub_id):
                row[position] = value
            rows.append(tuple(row))
        return rows

    def run_insert(self, statement: ast.Insert, context: ExecutionContext) -> bool:
        """Insert into every world; on a key violation, insert nowhere.

        The key check runs *before* any new table is materialized: all
        additions share one value part and differ only on world ids, so
        a violation exists iff some existing row already claims the new
        key in a world the insert reaches (or the table itself violates
        the key, which the engine's whole-table check also rejects). A
        violating insert on a 2¹⁶-world table therefore costs one
        indexed scan — no O(worlds) garbage rows. An applied insert is
        the kernel ``append``: the additions are deduplicated and
        checked alone, the existing rows are reused as-is instead of
        being re-validated through the ``Relation`` constructor.
        """
        rep = self.representation
        table = rep.tables[statement.relation]
        value_attrs = rep.value_attributes(statement.relation)
        if len(statement.values) != len(value_attrs):
            raise SchemaError(
                f"insert arity {len(statement.values)} does not match "
                f"{statement.relation}{list(value_attrs)}"
            )
        assignment = dict(zip(value_attrs, statement.values))
        table_ids = rep.table_id_attrs(statement.relation)
        # Wild columns take PAD (one stored row reaches every world of
        # those factors), concrete columns enumerate — never the joint
        # product on a factored world.
        sub_ids = rep.insert_sub_ids(statement.relation)
        key = context.keys.get(statement.relation)
        if key:
            if rep.table_wild_attrs(statement.relation):
                if not self._satisfies_keys_flat(
                    table, tuple(key), table_ids, rep.wild_attrs
                ):
                    return False  # a pre-existing violation rejects too
                # The addition is an every-world row, so it conflicts
                # with *any* existing row claiming the key — every
                # stored pattern shares at least one world with it.
                new_key = tuple(assignment[a] for a in key)
                if new_key in set(tuples_of(table, tuple(key))):
                    return False
            else:
                seen = self._key_tuples(table, tuple(key), table_ids)
                if seen is None:
                    return False  # a pre-existing violation rejects too
                new_key = tuple(assignment[a] for a in key)
                if any(tuple(sub_id) + new_key in seen for sub_id in sub_ids):
                    return False
        with phase("dml_apply"):
            additions = self._insert_rows(
                table.schema, assignment, table_ids, sub_ids
            )
            self._replace_table(
                statement.relation, self._in_kernel(table).append(additions)
            )
        return True

    def run_delete(self, statement: ast.Delete, context: ExecutionContext) -> None:
        """Delete matching rows in every world — flat, even with subqueries.

        Subquery-free conditions filter the flat table in one kernel
        pass (the kept rows are shared, never rebuilt through the
        ``Relation`` constructor). A condition with (world-local)
        subqueries compiles to its match plan (``select * from R where
        φ``), whose flat answer the kernel ``mask`` subtracts from the
        id-expanded table per world id — the Section 3 rule without
        decoding a single world. Only conditions the compiler rejects
        (e.g. world-splitting subqueries, which the engine rejects too
        when a row reaches them) fall back.
        """
        subqueries = ast.condition_subqueries(statement.where)
        if subqueries:
            try:
                plan, attrs = self._compiled_dml(
                    "delete", statement, context, compile_delete
                )
            except FragmentError as reason:
                self._note_fallback("delete", reason)
                self._reinline(
                    Engine(
                        context.views, context.keys, context.max_worlds
                    ).run_delete(statement, self.to_world_set())
                )
                return
            if self._subqueries_world_uniform(subqueries, context.views):
                state = self._uniform_dml_state(statement.relation, plan, context)
                self._apply_delete_uniform(statement.relation, attrs, state)
                return
            state = self._dml_state(plan, context)
            self._apply_delete(statement.relation, attrs, state)
            return
        table = self.representation.tables[statement.relation]
        schema = table.schema
        if statement.where is None:
            with phase("dml_apply"):
                self._replace_table(
                    statement.relation, self._distinct_rows_relation(schema, [])
                )
            return
        matches = Engine(context.views, context.keys).bind_row_condition(
            statement.where, schema.attributes
        )
        with phase("dml_apply"):
            kernel_table = self._in_kernel(table)
            # The flat row scan is not a kernel op, but it is the same
            # O(rows) work — checkpoint it like one.
            checkpoint("dml_scan", len(kernel_table))
            kept = [row for row in kernel_table if not matches(row)]
            self._replace_table(
                statement.relation, self._distinct_rows_relation(schema, kept)
            )

    def _apply_delete_uniform(
        self, name: str, attrs: tuple[str, ...], state
    ) -> None:
        """Mask a value-determined answer out of the flat table.

        The answer names matched *value rows* (no id columns): in every
        world that holds such a row the Section 3 rule deletes it, and
        a world that lacks it is unaffected — so one kernel ``mask``
        keyed on the value attributes applies the delete to all worlds
        at once, with no id expansion at any point.
        """
        answer = state._answer
        if not answer:
            return  # no-op delete: the lazily stored table is untouched
        with phase("dml_apply"):
            table = self.representation.tables[name]
            self._replace_table(name, self._in_kernel(table).mask(answer, attrs))

    def _apply_delete(self, name: str, attrs: tuple[str, ...], state) -> None:
        """Mask the match plan's flat answer out of the flat table."""
        answer = state._answer
        if not answer:
            # Nothing matched in any world: keep the (possibly lazily
            # stored) table untouched rather than committing an
            # id-expanded copy — a no-op delete must not replicate the
            # table over the match plan's foreign world ids.
            return
        with phase("dml_apply"):
            expanded = self.representation.expanded(name, state.ids, self.kernel)
            kept = self._in_kernel(expanded).mask(answer, state.ids + attrs)
            self._replace_table(name, kept)

    def run_update(self, statement: ast.Update, context: ExecutionContext) -> bool:
        """Update matching rows in every world — flat, even with subqueries.

        Subquery-free statements rewrite the flat table in one kernel
        pass. With subqueries in the condition or the set expressions,
        the compiled match plan (extended with one value column per
        scalar-subquery set clause) is evaluated once; its flat answer
        names every matched (world id, row) pair and carries the inputs
        of the new values, so the kernel ``scatter_update`` rewrites the
        table per world id without decoding worlds. The Section 3
        discard rule then applies: a key violation in *any* world
        rejects the update in all of them (checked as one vectorized
        (V_i ∪ key)-distinctness pass).
        """
        subqueries = list(ast.condition_subqueries(statement.where))
        for clause in statement.settings:
            subqueries.extend(ast.expression_subqueries(clause.expression))
        if subqueries:
            try:
                plan, attrs, set_terms = self._compiled_dml(
                    "update", statement, context, compile_update
                )
            except FragmentError as reason:
                self._note_fallback("update", reason)
                world_set, applied = Engine(
                    context.views, context.keys, context.max_worlds
                ).run_update(statement, self.to_world_set())
                if applied:
                    self._reinline(world_set)
                return applied
            if self._subqueries_world_uniform(subqueries, context.views):
                state = self._uniform_dml_state(statement.relation, plan, context)
                return self._apply_update_uniform(
                    statement, attrs, set_terms, state, context
                )
            state = self._dml_state(plan, context)
            return self._apply_update(statement, attrs, set_terms, state, context)
        table = self.representation.tables[statement.relation]
        engine = Engine(context.views, context.keys)
        attributes = table.schema.attributes
        matches = (
            (lambda row: True)
            if statement.where is None
            else engine.bind_row_condition(statement.where, attributes)
        )
        settings = [
            (
                table.schema.index(clause.attribute),
                engine.bind_row_expression(clause.expression, attributes),
            )
            for clause in statement.settings
        ]
        with phase("dml_apply"):
            kernel_table = self._in_kernel(table)
            checkpoint("dml_scan", len(kernel_table))
            rows: dict[tuple, None] = {}
            for row in kernel_table:
                if not matches(row):
                    rows[row] = None
                    continue
                new_row = list(row)
                for position, value in settings:
                    new_row[position] = value(row)
                rows[tuple(new_row)] = None
            new_table = self._distinct_rows_relation(table.schema, list(rows))
            if not self._satisfies_keys_flat(
                new_table,
                context.keys.get(statement.relation),
                self.representation.table_id_attrs(statement.relation),
                self.representation.wild_attrs,
            ):
                return False
            self._replace_table(statement.relation, new_table)
        return True

    def _apply_update_uniform(
        self,
        statement: ast.Update,
        attrs: tuple[str, ...],
        set_terms: tuple[tuple[str, object], ...],
        state,
        context: ExecutionContext,
    ) -> bool:
        """Scatter a value-determined answer into the flat table.

        The answer names matched value rows plus their computed set
        inputs (no id columns): every world that holds a matched row
        rewrites it the same way, so the rewrite map — value row →
        rewritten value row(s), built from the tiny distinct-value
        answer — applies to the whole flat table in one pass that
        keeps each row's id columns as they are. The Section 3 discard
        rule then checks the rewritten table exactly like the general
        path.
        """
        name = statement.relation
        answer = state._answer
        rep = self.representation
        key = context.keys.get(name)
        table_ids = rep.table_id_attrs(name)
        if not answer:
            # No match anywhere: unchanged table, but still key-checked.
            return self._satisfies_keys_flat(
                rep.tables[name], key, table_ids, rep.wild_attrs
            )
        with phase("dml_apply"):
            kernel_table = self._in_kernel(rep.tables[name])._reordered(
                attrs + table_ids
            )
            width = len(attrs)
            attr_index = {attr: j for j, attr in enumerate(attrs)}
            binders = [
                (attr_index[attr], term.bind(answer.schema))
                for attr, term in set_terms
            ]
            target_of = tuple_getter(answer.schema.indices(attrs))
            rewrites: dict[tuple, list[tuple]] = {}
            for match in answer:
                target = target_of(match)
                new_row = list(target)
                for position, value in binders:
                    new_row[position] = value(match)
                rewrites.setdefault(target, []).append(tuple(new_row))
            rows: list[tuple] = []
            append = rows.append
            for row in kernel_table:
                hits = rewrites.get(row[:width])
                if hits is None:
                    append(row)
                else:
                    id_part = row[width:]
                    for new_values in hits:
                        append(new_values + id_part)
            new_table = (
                type(kernel_table)._deduped(kernel_table.schema, rows)
                if isinstance(kernel_table, ColumnarRelation)
                else Relation._raw(kernel_table.schema, frozenset(rows))
            )
            if not self._satisfies_keys_flat(
                new_table, key, table_ids, rep.wild_attrs
            ):
                return False
            self._replace_table(name, new_table)
        return True

    def _apply_update(
        self,
        statement: ast.Update,
        attrs: tuple[str, ...],
        set_terms: tuple[tuple[str, object], ...],
        state,
        context: ExecutionContext,
    ) -> bool:
        """Scatter the evaluated update plan's rewrites into the flat table."""
        name = statement.relation
        answer = state._answer
        if not answer:
            # No row matched in any world: the table stays as stored
            # (no id expansion), but the engine still key-checks the
            # unchanged relation — a pre-existing violation rejects.
            table = self.representation.tables[name]
            return self._satisfies_keys_flat(
                table,
                context.keys.get(name),
                self.representation.table_id_attrs(name),
                self.representation.wild_attrs,
            )
        with phase("dml_apply"):
            ids = state.ids
            order = attrs + ids
            expanded = self._in_kernel(
                self.representation.expanded(name, ids, self.kernel)
            )._reordered(order)
            new_table = self._scatter(expanded, answer, order, set_terms)
            if not self._satisfies_keys_flat(
                new_table, context.keys.get(name), ids
            ):
                return False
            self._replace_table(name, new_table)
        return True

    @staticmethod
    def _scatter(expanded, answer, order, set_terms):
        """The rewritten flat table for an evaluated update plan.

        On the columnar kernel, a set term with a column form
        (:meth:`~repro.relational.predicates.Term.column` — attribute
        reads, constants, pad defaults, arithmetic over those) rewrites
        as pure column slices of the answer: the whole update is a
        handful of C-speed passes with no per-row closure calls. Terms
        that only evaluate row at a time (the ``single`` cardinality
        guard) fall back to the kernel ``scatter_update``, which both
        kernels always use for the tuple engine.
        """
        if isinstance(expanded, ColumnarRelation):
            answer_columnar = as_columnar(answer)
            setter_columns: dict[str, object] = {}
            for attr, term in set_terms:
                column = term.column(answer_columnar)
                if column is None:
                    break
                setter_columns[attr] = column
            else:
                columns = [
                    setter_columns[a]
                    if a in setter_columns
                    else answer_columnar.column_values(a)
                    for a in order
                ]
                rewritten = list(zip(*columns))
                kept = expanded.mask(answer_columnar, order)
                return type(expanded)._deduped(
                    Schema(order), rewritten + kept.row_list()
                )
        binders = [(attr, term.bind(answer.schema)) for attr, term in set_terms]
        return expanded.scatter_update(answer, binders)

    # -- the batched DML pipeline ------------------------------------------------------

    def run_dml_batch(
        self, statements: tuple, context: ExecutionContext
    ) -> list[bool]:
        """Consecutive subquery-free DML on one relation, as one pass.

        ``ISQLSession.run_script`` hands over a maximal run of batchable
        statements (one target relation, conditions and set expressions
        without subqueries). The batch binds every condition once, then
        pipelines the statements over a single working row list in the
        active kernel — filtering (delete), rewriting (update) and
        appending (insert) — and commits **one** new table at the end:
        the representation is validated once per batch instead of once
        per statement, and the (ids ∪ key) probe index is maintained
        incrementally so a run of k inserts costs O(k · additions), not
        k table scans. Statement semantics are exactly
        statement-at-a-time (the property suite asserts row-for-row
        equivalence), including the Section 3 discard rule — a
        violating update/insert is discarded alone, later statements
        still apply — and error behavior: a statement that raises
        mid-batch first commits the statements already applied, like
        separate executions would.
        """
        name = statements[0].relation
        rep = self.representation
        if rep.table_wild_attrs(name):
            # Wildcard id columns: the batch's (V_i ∪ key) distinctness
            # probes and row-membership dedup assume exact ids, which
            # PAD patterns are not — replay statement-at-a-time through
            # the wild-aware per-statement paths.
            applied: list[bool] = []
            for statement in statements:
                if isinstance(statement, ast.Delete):
                    self.run_delete(statement, context)
                    applied.append(True)
                elif isinstance(statement, ast.Update):
                    applied.append(self.run_update(statement, context))
                elif isinstance(statement, ast.Insert):
                    applied.append(self.run_insert(statement, context))
                else:
                    raise EvaluationError(
                        "run_dml_batch accepts insert/delete/update "
                        f"statements, not {type(statement).__name__}"
                    )
            return applied
        table = rep.tables[name]
        schema = table.schema
        attributes = schema.attributes
        table_ids = rep.table_id_attrs(name)
        value_attrs = rep.value_attributes(name)
        # Normalized to None when absent *or empty* — the per-statement
        # paths treat a degenerate () key as no constraint (`if key:`),
        # and batched execution must match them decision for decision.
        key = context.keys.get(name) or None
        engine = Engine(context.views, context.keys)
        with phase("dml_apply"):
            kernel_table = self._in_kernel(table)
            if isinstance(kernel_table, ArrayRelation):
                plans = _vector_plans(statements, attributes, schema)
                if plans is not None:
                    return self._run_dml_batch_array(
                        statements,
                        plans,
                        kernel_table,
                        name,
                        schema,
                        table_ids,
                        value_attrs,
                        key,
                    )
            rows: list[tuple] = (
                list(kernel_table.row_list())
                if isinstance(kernel_table, ColumnarRelation)
                else list(kernel_table.rows)
            )
            # insert_sub_ids never builds the joint product: on a
            # factored world it enumerates the touched factors only.
            sub_ids = rep.insert_sub_ids(name)
            # Lazily (re)built per-batch indexes over the working rows:
            # the (V_i ∪ key) probe set (None while a violation exists)
            # and the row membership set for insert dedup. The getter
            # binds lazily too, inside the per-statement try — a bad
            # declared key must raise at the statement that first
            # checks it, after earlier batch statements applied, like
            # statement-at-a-time execution.
            key_getter = None
            key_seen: set[tuple] | None = None
            key_seen_valid = False
            row_set: set[tuple] | None = None
            applied: list[bool] = []
            changed = False

            def bound_key_getter():
                nonlocal key_getter
                if key_getter is None:
                    key_getter = tuple_getter(
                        schema.indices(table_ids + tuple(key))
                    )
                return key_getter

            def key_index() -> set[tuple] | None:
                nonlocal key_seen, key_seen_valid
                if not key_seen_valid:
                    key_seen = set(map(bound_key_getter(), rows))
                    if len(key_seen) != len(rows):
                        key_seen = None
                    key_seen_valid = True
                return key_seen

            def commit() -> None:
                if changed:
                    self._replace_table(
                        name, self._distinct_rows_relation(schema, rows)
                    )

            for statement in statements:
                try:
                    if isinstance(statement, ast.Delete):
                        if statement.where is None:
                            kept: list[tuple] = []
                        else:
                            matches = engine.bind_row_condition(
                                statement.where, attributes
                            )
                            kept = [row for row in rows if not matches(row)]
                        if len(kept) != len(rows):
                            rows = kept
                            changed = True
                            key_seen_valid, row_set = False, None
                        applied.append(True)
                    elif isinstance(statement, ast.Update):
                        matches = (
                            (lambda row: True)
                            if statement.where is None
                            else engine.bind_row_condition(
                                statement.where, attributes
                            )
                        )
                        settings = [
                            (
                                schema.index(clause.attribute),
                                engine.bind_row_expression(
                                    clause.expression, attributes
                                ),
                            )
                            for clause in statement.settings
                        ]
                        new_rows: dict[tuple, None] = {}
                        touched = False
                        for row in rows:
                            if not matches(row):
                                new_rows[row] = None
                                continue
                            touched = True
                            candidate = list(row)
                            for position, value in settings:
                                candidate[position] = value(row)
                            new_rows[tuple(candidate)] = None
                        if not touched:
                            # Unchanged table, but the Section 3 check
                            # still runs: a pre-existing violation
                            # rejects, like statement-at-a-time.
                            applied.append(key is None or key_index() is not None)
                            continue
                        candidate_rows = list(new_rows)
                        if key is not None:
                            candidate_seen = set(
                                map(bound_key_getter(), candidate_rows)
                            )
                            if len(candidate_seen) != len(candidate_rows):
                                applied.append(False)  # discarded in all worlds
                                continue
                            key_seen, key_seen_valid = candidate_seen, True
                        rows = candidate_rows
                        changed, row_set = True, None
                        applied.append(True)
                    elif isinstance(statement, ast.Insert):
                        if len(statement.values) != len(value_attrs):
                            raise SchemaError(
                                f"insert arity {len(statement.values)} does "
                                f"not match {name}{list(value_attrs)}"
                            )
                        assignment = dict(zip(value_attrs, statement.values))
                        if key is not None:
                            seen = key_index()
                            if seen is None:
                                applied.append(False)
                                continue
                            new_key = tuple(assignment[a] for a in key)
                            if any(
                                tuple(sub_id) + new_key in seen
                                for sub_id in sub_ids
                            ):
                                applied.append(False)
                                continue
                        additions = self._insert_rows(
                            schema, assignment, table_ids, sub_ids
                        )
                        if row_set is None:
                            row_set = set(rows)
                        fresh = [
                            row
                            for row in dict.fromkeys(additions)
                            if row not in row_set
                        ]
                        if fresh:
                            # rows is always an owned list (copied at
                            # batch start, rebuilt by update/delete), so
                            # extending in place keeps a run of k
                            # inserts O(k · additions), not k copies.
                            rows.extend(fresh)
                            row_set.update(fresh)
                            if key is not None:
                                # key_index() above left a valid probe
                                # set; the checked additions extend it.
                                key_seen.update(map(bound_key_getter(), fresh))
                            changed = True
                        applied.append(True)
                    else:
                        raise EvaluationError(
                            "run_dml_batch accepts insert/delete/update "
                            f"statements, not {type(statement).__name__}"
                        )
                except Exception:
                    # Parity with statement-at-a-time execution: the
                    # statements already applied commit before the
                    # failing one propagates.
                    commit()
                    raise
            commit()
        return applied

    def _run_dml_batch_array(
        self,
        statements: tuple,
        plans: list[tuple],
        state: ArrayRelation,
        name: str,
        schema: Schema,
        table_ids: tuple[str, ...],
        value_attrs: tuple[str, ...],
        key: tuple[str, ...] | None,
    ) -> list[bool]:
        """The batch pipeline on array columns: masks, assigns, concats.

        Each condition evaluates as one boolean-array pass over the
        working :class:`ArrayRelation` (falling back to a bound-row
        scan only for object-dtype columns), updates rewrite whole
        column slices through :meth:`ArrayRelation.masked_assign`, and
        key checks count distinct ``(V_i ∪ key)`` row codes instead of
        building tuple sets. Statement semantics — the Section 3
        discard rule, error ordering, commit-before-raise — mirror the
        row pipeline decision for decision; the property suite asserts
        row-for-row equivalence between the two.
        """
        import numpy as np

        rep = self.representation
        applied: list[bool] = []
        changed = False
        sub_ids_cache: list | None = None

        def sub_ids() -> list:
            # Lazy and vectorized: one np.unique over the world table's
            # id codes instead of a sorted full-row distinct pass, and
            # only batches that actually insert pay it.
            nonlocal sub_ids_cache
            if sub_ids_cache is None:
                if not table_ids:
                    sub_ids_cache = [()]
                elif rep.factors is not None:
                    # Touched factors only — never the joint product.
                    sub_ids_cache = rep.insert_sub_ids(name)
                else:
                    world = as_array(rep.world_table)
                    positions = world.schema.indices(table_ids)
                    codes, domain = world._row_codes(positions)
                    first = _first_rows(codes, domain)
                    cols = world.arrays()
                    sub_ids_cache = list(
                        zip(*(cols[p].values[first].tolist() for p in positions))
                    )
            return sub_ids_cache

        def predicate_mask(predicate):
            mask = state._predicate_mask(predicate)
            if mask is None:
                check = predicate.bind(schema)
                mask = np.fromiter(
                    map(check, state.row_list()),
                    dtype=np.bool_,
                    count=len(state),
                )
            return mask

        def key_distinct(relation) -> bool:
            # Combined-code uniqueness equals tuple-set uniqueness: the
            # factorization assigns equal codes exactly to values equal
            # under Python semantics.
            if len(relation) == 0:
                return True
            codes, domain = relation._row_codes(
                schema.indices(table_ids + tuple(key))
            )
            return _distinct_count(codes, domain) == len(relation)

        def commit() -> None:
            if changed:
                self._replace_table(name, state)

        for statement, plan in zip(statements, plans):
            try:
                if plan[0] == "delete":
                    predicate = plan[1]
                    if predicate is None:
                        if len(state):
                            state = type(state)._from_rows(schema, [])
                            changed = True
                    else:
                        mask = predicate_mask(predicate)
                        if mask.any():
                            state = state._take(~mask)
                            changed = True
                    applied.append(True)
                elif plan[0] == "update":
                    _, predicate, settings = plan
                    mask = (
                        np.ones(len(state), dtype=np.bool_)
                        if predicate is None
                        else predicate_mask(predicate)
                    )
                    if not mask.any():
                        # Unchanged table, but the Section 3 check still
                        # runs: a pre-existing violation rejects.
                        applied.append(key is None or key_distinct(state))
                        continue
                    candidate = state.masked_assign(mask, settings)
                    if key is not None and not key_distinct(candidate):
                        applied.append(False)  # discarded in all worlds
                        continue
                    state = candidate
                    changed = True
                    applied.append(True)
                else:  # insert
                    if len(statement.values) != len(value_attrs):
                        raise SchemaError(
                            f"insert arity {len(statement.values)} does "
                            f"not match {name}{list(value_attrs)}"
                        )
                    assignment = dict(zip(value_attrs, statement.values))
                    if key is not None:
                        if not key_distinct(state):
                            applied.append(False)
                            continue
                        new_key = tuple(assignment[a] for a in key)
                        if _array_key_claimed(
                            state, schema, table_ids, key, new_key, sub_ids()
                        ):
                            applied.append(False)
                            continue
                    # All additions share one value row: dedup against
                    # the stored rows is a constant-equality mask over
                    # the value columns plus an id-set difference.
                    value_mask = _array_eq_mask(
                        state,
                        [(schema.index(a), assignment[a]) for a in value_attrs],
                    )
                    if not table_ids:
                        fresh_ids = [] if value_mask.any() else [()]
                    elif value_mask.any():
                        hits = np.flatnonzero(value_mask)
                        acols = state.arrays()
                        claimed = set(
                            zip(
                                *(
                                    acols[p].values[hits].tolist()
                                    for p in schema.indices(table_ids)
                                )
                            )
                        )
                        fresh_ids = [
                            s for s in sub_ids() if tuple(s) not in claimed
                        ]
                    else:
                        fresh_ids = list(sub_ids())
                    if fresh_ids:
                        template = [
                            assignment.get(a) for a in schema.attributes
                        ]
                        state = state.append_broadcast(
                            template, schema.indices(table_ids), fresh_ids
                        )
                        changed = True
                    applied.append(True)
            except Exception:
                # Parity with statement-at-a-time execution: the
                # statements already applied commit before the failing
                # one propagates.
                commit()
                raise
        commit()
        return applied


def _wild_key_satisfied(relation, key, table_ids, wild_attrs) -> bool:
    """Key holds in every world of a wild (PAD-wildcard) table.

    Two rows violate the key iff they share a key value *and* their id
    patterns are compatible — equal on concrete columns, with PAD
    matching anything on a wild one — i.e. some world holds both rows.
    The pairwise check runs per key group, and key groups stay small by
    construction: a repaired table has one group per violating input
    key, each the size of that group's candidate list.
    """
    wild_positions = frozenset(
        i for i, a in enumerate(table_ids) if a in wild_attrs
    )
    groups: dict[tuple, list[tuple]] = {}
    for sub_id, key_value in zip(
        tuples_of(relation, table_ids), tuples_of(relation, key)
    ):
        groups.setdefault(key_value, []).append(sub_id)
    for patterns in groups.values():
        for i, first in enumerate(patterns):
            for second in patterns[i + 1 :]:
                if all(
                    a == b
                    or (j in wild_positions and (a is PAD or b is PAD))
                    for j, (a, b) in enumerate(zip(first, second))
                ):
                    return False
    return True


# -- DML batch vectorization ---------------------------------------------------------


def _vector_term(expression, resolver: _Resolver, attributes: tuple[str, ...]):
    """A condition operand as a predicate term, or None to bail."""
    if isinstance(expression, ast.Literal):
        return predicates.Const(expression.value)
    if isinstance(expression, ast.Column):
        try:
            position = resolver.position(expression)
        except EvaluationError:
            return None
        if position is None:
            return None
        return predicates.Attr(attributes[position])
    return None


def _vector_condition(condition, resolver: _Resolver, attributes: tuple[str, ...]):
    """An AST condition as a relational predicate, or None to bail.

    Only shapes with exact engine-row parity translate: comparisons
    over direct column reads and literals (TypeError → False on both
    paths) combined with and/or/not. Arithmetic, subqueries, and
    unresolved or ambiguous columns leave the whole batch on the row
    pipeline, which reports them exactly like statement-at-a-time
    execution.
    """
    if isinstance(condition, ast.Comparison):
        left = _vector_term(condition.left, resolver, attributes)
        right = _vector_term(condition.right, resolver, attributes)
        if left is None or right is None or condition.op not in predicates._OPS:
            return None
        return predicates.Comparison(left, condition.op, right)
    if isinstance(condition, ast.BoolOp):
        left = _vector_condition(condition.left, resolver, attributes)
        right = _vector_condition(condition.right, resolver, attributes)
        if left is None or right is None:
            return None
        if condition.op == "and":
            return predicates.And(left, right)
        if condition.op == "or":
            return predicates.Or(left, right)
        return None
    if isinstance(condition, ast.NotOp):
        inner = _vector_condition(condition.operand, resolver, attributes)
        return None if inner is None else predicates.Not(inner)
    return None


def _vector_plans(
    statements: tuple, attributes: tuple[str, ...], schema: Schema
) -> list[tuple] | None:
    """Vector programs for a whole batch, or None if any statement bails."""
    resolver = _Resolver(attributes)
    plans: list[tuple] = []
    for statement in statements:
        if isinstance(statement, ast.Delete):
            predicate = None
            if statement.where is not None:
                predicate = _vector_condition(
                    statement.where, resolver, attributes
                )
                if predicate is None:
                    return None
            plans.append(("delete", predicate))
        elif isinstance(statement, ast.Update):
            predicate = None
            if statement.where is not None:
                predicate = _vector_condition(
                    statement.where, resolver, attributes
                )
                if predicate is None:
                    return None
            settings: list[tuple] = []
            for clause in statement.settings:
                try:
                    position = schema.index(clause.attribute)
                except Exception:
                    return None
                expression = clause.expression
                if isinstance(expression, ast.Literal):
                    settings.append((position, "const", expression.value))
                elif isinstance(expression, ast.Column):
                    try:
                        source = resolver.position(expression)
                    except EvaluationError:
                        return None
                    if source is None:
                        return None
                    settings.append((position, "col", source))
                else:
                    return None
            plans.append(("update", predicate, tuple(settings)))
        elif isinstance(statement, ast.Insert):
            plans.append(("insert",))
        else:
            return None
    return plans


def _array_eq_mask(state: ArrayRelation, pairs) -> "object":
    """Mask of rows whose columns equal the given (position, value) pairs.

    Parity with a tuple-set probe: per-column numpy equality where the
    dtype allows, plain Python ``==`` otherwise.
    """
    import numpy as np

    mask = np.ones(len(state), dtype=np.bool_)
    acols = state.arrays()
    for position, value in pairs:
        column = acols[position]
        hit = state._column_mask(column, value, "=")
        if hit is None:
            hit = np.fromiter(
                (entry == value for entry in column.tolist()),
                dtype=np.bool_,
                count=len(state),
            )
        mask &= hit
        if not mask.any():
            break
    return mask


def _array_key_claimed(
    state: ArrayRelation,
    schema: Schema,
    table_ids: tuple[str, ...],
    key: tuple[str, ...],
    new_key: tuple,
    sub_ids,
) -> bool:
    """Whether an existing row claims *new_key* in a world the insert reaches."""
    import numpy as np

    if len(state) == 0:
        return False
    mask = _array_eq_mask(
        state, zip(schema.indices(tuple(key)), new_key)
    )
    if not mask.any():
        return False
    if not table_ids:
        return True  # sub_ids is [()] and the key part matched
    hits = np.flatnonzero(mask)
    id_positions = schema.indices(table_ids)
    acols = state.arrays()
    claimed = set(
        zip(*(acols[p].values[hits].tolist() for p in id_positions))
    )
    return not claimed.isdisjoint(map(tuple, sub_ids))
