"""Per-phase wall-clock accounting for statement execution.

The benchmark suite wants to know *where* a backend spends its time —
compile (parse + I-SQL → world-set algebra), rewrite (the Figure 7
pass), execute (flat-table or per-world evaluation), dml_apply (the
mask/scatter/append application of DML answers to the flat tables,
including the batched pipeline's single-pass commit), decode (explicit
world materialization), rollback (transactional state restores:
``atomic`` scripts, ``transaction()`` exits and ``rollback_to`` in
:mod:`repro.isql.session`), cache_lookup (plan-cache and result-memo
probes in the inline backend, hit or miss) — so that performance PRs
can target the right layer instead of re-measuring end-to-end numbers.

The mechanism is deliberately tiny: a caller installs a collector dict
with :func:`collect_phases`, and instrumented code brackets work in
``with phase("execute"):``. When no collector is installed the bracket
is a no-op, so sessions outside a benchmark pay one ``is None`` check
per statement, nothing more. Phases must not nest (the accounting adds
sibling durations; instrumentation sites are chosen to be disjoint).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator

_collector: dict[str, float] | None = None


@contextmanager
def collect_phases(target: dict[str, float] | None = None) -> Iterator[dict[str, float]]:
    """Install *target* (or a fresh dict) as the phase collector.

    Durations accumulate under their phase name for the duration of the
    ``with`` block; collectors restore on exit, so nested collections
    (a benchmark inside a benchmark) see only their own phases.
    """
    global _collector
    previous = _collector
    _collector = target if target is not None else {}
    try:
        yield _collector
    finally:
        _collector = previous


def active_collector() -> dict[str, float] | None:
    """The currently installed phase collector, if any.

    ``ISQLSession.run`` uses this to tee per-statement phase timings
    into an outer benchmark collector while still attaching a private
    copy to each :class:`~repro.isql.session.StatementResult`.
    """
    return _collector


@contextmanager
def phase(name: str) -> Iterator[None]:
    """Bracket one phase of work; a no-op without an active collector."""
    if _collector is None:
        yield
        return
    collector = _collector
    start = time.perf_counter()
    try:
        yield
    finally:
        collector[name] = (
            collector.get(name, 0.0) + time.perf_counter() - start
        )
