"""Pluggable execution backends for I-SQL sessions (Section 5 realized).

``ISQLSession(backend="explicit")`` materializes world-sets (Figure 3);
``ISQLSession(backend="inline")`` evaluates on the inlined
representation and never enumerates worlds. See :mod:`repro.backend.base`
for the contract and :mod:`repro.backend.testing` for the differential
harness that keeps the two in agreement.
"""

from repro.backend.base import (
    Backend,
    BaseQueryResult,
    ExecutionContext,
    create_backend,
)
from repro.backend.explicit import ExplicitBackend, QueryResult
from repro.backend.inline import InlineBackend, InlineQueryResult
from repro.backend.instrument import collect_phases, phase

__all__ = [
    "Backend",
    "BaseQueryResult",
    "ExecutionContext",
    "ExplicitBackend",
    "InlineBackend",
    "InlineQueryResult",
    "QueryResult",
    "collect_phases",
    "create_backend",
    "phase",
]
