"""The differential-testing harness holding backends to equal answers.

The correctness story of the backend layer is Theorem 5.7's: evaluation
on the inlined representation must coincide with the Figure 3 semantics
on the explicit world-set. :func:`run_scenario` replays a
:class:`repro.datagen.Scenario` on any backend; :func:`assert_backends_agree`
replays it on several and compares

* the final query's answer set (the distinct per-world answers),
* the decoded session world-sets (``rep(T)`` vs the explicit state),
* the distinct world counts.

Used by ``tests/backend/test_differential.py`` (every scenario, every
backend) and by ``benchmarks/bench_backends.py`` (which additionally
times the runs).
"""

from __future__ import annotations

import os
from typing import Callable

from repro.backend.base import Backend
from repro.datagen.workloads import Scenario
from repro.isql.session import ISQLSession


def fuzz_range(default: int) -> range:
    """Case count for a randomized differential suite.

    PR-time runs use *default* (the suites stay at 48–64 scripts);
    the nightly CI job sets ``REPRO_FUZZ_SCRIPTS`` to scale every
    randomized harness up by orders of magnitude with no code change.
    Cases are seeded by index, so a failure in the scaled run
    reproduces locally by running that one parametrized index.
    """
    return range(int(os.environ.get("REPRO_FUZZ_SCRIPTS", default)))


def run_scenario(
    scenario: Scenario,
    backend: "str | Backend | Callable[[], Backend]" = "explicit",
    max_worlds: int | None = None,
    max_rows: int | None = None,
    max_seconds: float | None = None,
) -> tuple[ISQLSession, object]:
    """Replay *scenario* on a fresh session; returns (session, result).

    *backend* is a backend name, a :class:`Backend` instance, or a
    zero-argument factory — the latter lets differential suites replay
    one scenario on configured backends (e.g. ``lambda:
    InlineBackend(kernel="tuple")``) while every run still gets a fresh
    state. *max_rows* / *max_seconds* arm the session's per-statement
    resource budget — the benchmark suite replays scenarios with huge,
    never-firing budgets to measure the armed checkpoint overhead.
    """
    resolved = backend() if callable(backend) else backend
    session = ISQLSession(
        max_worlds=max_worlds,
        backend=resolved,
        max_rows=max_rows,
        max_seconds=max_seconds,
    )
    for name, relation in scenario.relations:
        session.register(name, relation)
    for relation, attributes in scenario.keys:
        session.declare_key(relation, attributes)
    if scenario.script:
        # run_script, not execute: consecutive subquery-free DML
        # statements replay through the batch pipeline, so every
        # scenario doubles as batching-equivalence coverage (the
        # explicit backend takes the statement-at-a-time default).
        session.run_script(scenario.script)
    return session, session.query(scenario.query)


def run_scenario_pooled(
    scenario: Scenario,
    backend: "str | Backend | Callable[[], Backend]" = "inline",
    size: int = 2,
    max_worlds: int | None = None,
    max_rows: int | None = None,
    max_seconds: float | None = None,
):
    """Replay *scenario* through the service layer; returns (pool, result).

    The relations and keys seed a fresh session as usual, but the
    script and the final query run over a
    :class:`~repro.service.pool.SessionPool` connection — the DBAPI
    text path, writer lock, snapshot publication and all. The returned
    result is the same possible-worlds object :func:`run_scenario`
    yields, so suites can assert the pooled replay ≡ the direct one
    answer-for-answer. The pool is returned open (its store holds the
    committed state) so callers can keep querying; close it when done.
    """
    from repro.service.pool import SessionPool

    resolved = backend() if callable(backend) else backend
    seed = ISQLSession(max_worlds=max_worlds, backend=resolved)
    for name, relation in scenario.relations:
        seed.register(name, relation)
    for relation, attributes in scenario.keys:
        seed.declare_key(relation, attributes)
    pool = SessionPool(
        seed, size=size, max_rows=max_rows, max_seconds=max_seconds
    )
    with pool.connection() as connection:
        if scenario.script:
            connection.execute(scenario.script)
        result = connection.execute(scenario.query).result
    return pool, result


def assert_backends_agree(
    scenario: Scenario,
    backends: tuple = ("explicit", "inline"),
    max_worlds: int | None = None,
) -> None:
    """Replay on every backend and assert identical observable behavior.

    Each entry of *backends* is a backend name, a factory, or a
    ``(label, backend_or_factory)`` pair (labels keep assertion messages
    readable when comparing configured backends such as kernels).
    """
    labelled = [
        backend if isinstance(backend, tuple) else (str(backend), backend)
        for backend in backends
    ]
    runs = [
        (label, *run_scenario(scenario, backend, max_worlds=max_worlds))
        for label, backend in labelled
    ]
    reference_backend, reference_session, reference_result = runs[0]
    for backend, session, result in runs[1:]:
        context = f"scenario {scenario.name!r}: {reference_backend} vs {backend}"
        assert result.answers() == reference_result.answers(), (
            f"{context}: final answers differ"
        )
        assert result.world_count() == reference_result.world_count(), (
            f"{context}: result world counts differ"
        )
        assert session.world_count() == reference_session.world_count(), (
            f"{context}: session world counts differ"
        )
        assert session.world_set == reference_session.world_set, (
            f"{context}: session world-sets differ"
        )
        assert result.world_set == reference_result.world_set, (
            f"{context}: result world-sets differ"
        )
