"""The execution-backend abstraction for I-SQL sessions.

The paper gives two equivalent ways to evaluate I-SQL:

* **explicitly**, by materializing the world-set A = {I₁, …, I_n} and
  running the Figure 3 / Section 3 semantics world by world; and
* **on the inlined representation** ⟨R₁ᵀ, …, R_kᵀ, W⟩ of Section 5,
  where evaluation is polynomial in the representation even when the
  world-set it encodes is exponential.

A :class:`Backend` encapsulates one of these strategies behind a common
interface: it owns the session's state (a world-set or an inlined
representation), executes select statements, materializes assignments,
and applies the possible-worlds DML of Section 3. Sessions are backend
agnostic — ``ISQLSession(backend="inline")`` flips a whole session from
world enumeration to flat-table evaluation, and the differential test
harness (:mod:`repro.backend.testing`) holds the two implementations to
identical answers on every workload.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping

from repro.errors import EvaluationError
from repro.relational.relation import Relation
from repro.worlds.worldset import WorldSet

if TYPE_CHECKING:  # the isql package imports this module at init time
    from repro.isql import ast


@dataclass(frozen=True)
class ExecutionContext:
    """Per-statement session configuration handed to a backend.

    *cache* is the statement's cache gate: ``False`` makes a caching
    backend bypass its plan cache and result memo for this statement
    (the ``execute(..., cache=False)`` / ``connect(..., cache=False)``
    escape hatch of the differential suites). Backends without caches
    ignore it.
    """

    views: Mapping[str, ast.SelectQuery] = field(default_factory=dict)
    keys: Mapping[str, tuple[str, ...]] = field(default_factory=dict)
    max_worlds: int | None = None
    cache: bool = True


class BaseQueryResult:
    """Common interface of a select statement's outcome.

    Both backends expose the same surface: :attr:`relation` for closed
    queries, :meth:`answers` for open ones, :meth:`world_count`, and a
    :attr:`world_set` property holding the input world-set extended with
    the answer (computed lazily — and only on demand — by the inline
    backend).
    """

    name: str

    def answers(self) -> frozenset[Relation]:
        """The distinct answer relations across all worlds."""
        raise NotImplementedError

    @property
    def world_set(self) -> WorldSet:
        """The input world-set extended with the answer under *name*."""
        raise NotImplementedError

    def world_count(self) -> int:
        return len(self.world_set)

    def possible(self) -> Relation:
        """Union of the answer across all worlds (the poss closure)."""
        return self.world_set.possible(self.name)

    def certain(self) -> Relation:
        """Intersection of the answer across all worlds (cert)."""
        return self.world_set.certain(self.name)

    @property
    def relation(self) -> Relation:
        answers = self.answers()
        if len(answers) != 1:
            raise EvaluationError(
                f"the answer differs across worlds ({len(answers)} variants); "
                "use .answers()"
            )
        return next(iter(answers))

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


class Backend:
    """Abstract base class of session execution backends."""

    #: Short name used by ``ISQLSession(backend=...)`` and diagnostics.
    kind = "abstract"

    #: How the cache treated the most recent statement: ``"hit"`` (plan
    #: or memo served from cache), ``"miss"`` (compiled fresh, now
    #: cached), or ``"bypass"`` (no cache consulted — non-caching
    #: backend, ``cache=False``, or a statement kind that never caches).
    #: The session resets this to ``"bypass"`` before dispatching each
    #: statement and copies it into the :class:`StatementResult`.
    last_cache = "bypass"

    def cache_info(self):
        """Aggregate cache counters; all-zero for non-caching backends."""
        from repro.cache import CacheInfo

        return CacheInfo.empty()

    # -- catalog ------------------------------------------------------------------

    def register(self, name: str, relation: Relation) -> None:
        """Add a complete relation to every world of the state."""
        raise NotImplementedError

    def relation_names(self) -> tuple[str, ...]:
        """Names of the base relations in the current state."""
        raise NotImplementedError

    def schemas(self) -> dict[str, tuple[str, ...]]:
        """Value-attribute schemas of the current catalog.

        The shape ``{relation: (attr, …)}`` that
        :func:`repro.isql.compile.compile_query` and
        :func:`repro.isql.explain.inline_route_report` take, so callers
        can ask routing/compilation questions against a live session
        without decoding its state.
        """
        raise NotImplementedError

    def world_count(self) -> int:
        """Number of distinct possible worlds in the current state."""
        raise NotImplementedError

    def to_world_set(self) -> WorldSet:
        """The current state as an explicit world-set (decode on demand)."""
        raise NotImplementedError

    def close(self) -> None:
        """Release caches derived from the session state.

        The state itself (world-set or inlined representation) stays
        valid and the backend remains usable — caches rebuild on
        demand. Long-lived processes cycling many sessions call this
        via ``ISQLSession.close()``; the default is a no-op.
        """

    # -- state snapshots ------------------------------------------------------------

    def snapshot(self) -> object:
        """An opaque token capturing the current session state.

        O(#tables): state objects (world-sets, inlined representations
        and their tables) are immutable, and every statement commits by
        swapping references, so a snapshot is a handful of reference
        captures, never a copy. Tokens stay valid for the backend's
        lifetime — the transactional layer in
        :class:`repro.isql.session.ISQLSession` stacks them to back
        ``atomic`` scripts and savepoints.
        """
        raise NotImplementedError

    def restore(self, token: object) -> None:
        """Reset the session state to a :meth:`snapshot` token.

        Like :meth:`snapshot`, O(#tables) reference swaps. Restoring
        discards nothing shared: state committed after the snapshot
        simply becomes unreferenced.
        """
        raise NotImplementedError

    def spawn(self) -> "Backend":
        """A fresh backend of the same kind and configuration, empty state.

        The service layer (:mod:`repro.service`) forks one backend per
        pooled session so every connection owns private mutable state
        while sharing immutable relation/representation objects via
        :meth:`snapshot`/:meth:`restore` tokens. The default
        reconstructs from :attr:`kind`; backends with extra
        configuration (kernel, strategy, …) override this to carry it
        across.
        """
        return create_backend(self.kind)

    # -- statements ----------------------------------------------------------------

    def run_select(
        self, query: ast.SelectQuery, context: ExecutionContext, name: str | None = None
    ) -> BaseQueryResult:
        """Evaluate a select without changing the session state."""
        raise NotImplementedError

    def assign(
        self, name: str, query: ast.SelectQuery, context: ExecutionContext
    ) -> None:
        """``name <- query``: materialize the answer into the state."""
        raise NotImplementedError

    def run_insert(self, statement: ast.Insert, context: ExecutionContext) -> bool:
        """Insert in every world; False = discarded on key violation."""
        raise NotImplementedError

    def run_delete(self, statement: ast.Delete, context: ExecutionContext) -> None:
        raise NotImplementedError

    def run_update(self, statement: ast.Update, context: ExecutionContext) -> bool:
        """Update every world; False = discarded on key violation."""
        raise NotImplementedError

    def run_dml_batch(
        self, statements: tuple, context: ExecutionContext
    ) -> list[bool]:
        """Apply consecutive DML statements; one applied flag per statement.

        ``ISQLSession.run_script`` routes maximal runs of consecutive
        *subquery-free* DML statements against one relation here. The
        contract is strict statement-at-a-time equivalence — same final
        state, same applied/discarded flags, same errors in the same
        order — and this default simply is statement-at-a-time
        execution. Backends override it to pipeline the batch (the
        inline backend applies the whole run in one pass over the flat
        table and commits once).
        """
        from repro.isql import ast as isql_ast

        applied: list[bool] = []
        for statement in statements:
            if isinstance(statement, isql_ast.Insert):
                applied.append(self.run_insert(statement, context))
            elif isinstance(statement, isql_ast.Delete):
                self.run_delete(statement, context)
                applied.append(True)
            elif isinstance(statement, isql_ast.Update):
                applied.append(self.run_update(statement, context))
            else:
                raise EvaluationError(
                    "run_dml_batch accepts insert/delete/update statements, "
                    f"not {type(statement).__name__}"
                )
        return applied


def create_backend(backend: str | Backend) -> Backend:
    """Resolve ``ISQLSession``'s *backend* argument to an instance."""
    if isinstance(backend, Backend):
        return backend
    from repro.backend.explicit import ExplicitBackend
    from repro.backend.inline import InlineBackend

    if backend == "explicit":
        return ExplicitBackend()
    if backend == "inline":
        return InlineBackend()
    if backend == "inline-translate":
        return InlineBackend(strategy="translate")
    raise EvaluationError(
        f"unknown backend {backend!r}; expected 'explicit', 'inline', "
        "'inline-translate', or a Backend instance"
    )
