"""repro — World-set Algebra and I-SQL for incomplete information.

A faithful, self-contained reproduction of

    Lyublena Antova, Christoph Koch, Dan Olteanu.
    "From Complete to Incomplete Information and Back." SIGMOD 2007.

The package provides:

* :mod:`repro.relational` — a set-semantics relational algebra engine
  (the substrate the paper assumes);
* :mod:`repro.worlds` — worlds, world-sets, isomorphism and genericity;
* :mod:`repro.core` — world-set algebra: AST, Figure 3 semantics,
  operator typing, repair-by-key, NP-hardness reduction;
* :mod:`repro.inline` — the inlined representation (Definition 5.1),
  the Figure 6 translation to relational algebra (Theorem 5.7) and the
  §5.3 optimized complete-to-complete translation;
* :mod:`repro.optimizer` — the Figure 7 equivalences and the rewrite
  engine of Section 6;
* :mod:`repro.isql` — the I-SQL language: parser, evaluation engine
  (with aggregation and possible-worlds DML), sessions, and compilation
  of the algebra fragment to world-set algebra;
* :mod:`repro.uldb` — the ULDB/TriQL fragment of Remark 4.6;
* :mod:`repro.datagen` / :mod:`repro.render` — workload generators and
  paper-figure-style ASCII rendering.

Quickstart::

    from repro import ISQLSession
    from repro.datagen import paper_flights

    session = ISQLSession()
    session.register("Flights", paper_flights())
    result = session.query("select certain Arr from Flights choice of Dep;")
    print(result.relation.sorted_rows())   # [('ATL',)]
"""

from repro.core import (
    WSAQuery,
    answer,
    answers,
    cert,
    cert_group,
    choice_of,
    evaluate,
    evaluate_on_database,
    is_complete_to_complete,
    poss,
    poss_group,
    product,
    project,
    query_type,
    rel,
    rename,
    repair_by_key,
    select,
)
from repro.errors import (
    EvaluationError,
    OwnershipError,
    ParseError,
    RepresentationError,
    ReproError,
    ResourceLimitError,
    RewriteError,
    SchemaError,
    TranslationError,
    TypingError,
)
from repro.inline import (
    InlinedRepresentation,
    apply_general,
    conservative_ra_query,
    evaluate_optimized,
    optimized_ra_query,
    translate_general,
)
from repro.cache import CacheInfo, StatementCache
from repro.isql import (
    ISQLSession,
    StatementResult,
    compile_query,
    parse_query,
    parse_script,
)
from repro.backend import (
    Backend,
    ExplicitBackend,
    InlineBackend,
    create_backend,
)
from repro.optimizer import optimize
from repro.relational import Database, Relation, Schema
from repro.service import SessionPool, SnapshotStore, connect
from repro.worlds import World, WorldSet, are_isomorphic, check_generic

__version__ = "1.0.0"

__all__ = [
    "Backend",
    "CacheInfo",
    "Database",
    "EvaluationError",
    "ExplicitBackend",
    "InlineBackend",
    "ISQLSession",
    "InlinedRepresentation",
    "OwnershipError",
    "ParseError",
    "Relation",
    "RepresentationError",
    "ReproError",
    "ResourceLimitError",
    "RewriteError",
    "Schema",
    "SchemaError",
    "SessionPool",
    "SnapshotStore",
    "StatementCache",
    "StatementResult",
    "TranslationError",
    "TypingError",
    "WSAQuery",
    "World",
    "WorldSet",
    "answer",
    "answers",
    "apply_general",
    "are_isomorphic",
    "cert",
    "cert_group",
    "check_generic",
    "choice_of",
    "compile_query",
    "connect",
    "conservative_ra_query",
    "create_backend",
    "evaluate",
    "evaluate_on_database",
    "evaluate_optimized",
    "is_complete_to_complete",
    "optimize",
    "optimized_ra_query",
    "parse_query",
    "parse_script",
    "poss",
    "poss_group",
    "product",
    "project",
    "query_type",
    "rel",
    "rename",
    "repair_by_key",
    "select",
    "translate_general",
]
