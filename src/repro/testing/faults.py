"""Fault injection at kernel-op boundaries.

The transactional claims of :mod:`repro.isql.session` — a statement
either applies whole or not at all, ``atomic`` scripts roll back
wholesale, the session survives any mid-kernel crash — are only worth
stating if something adversarially exercises them. This module is that
something: it installs a hook on the cooperative checkpoint every
kernel op passes through (:func:`repro.relational.guards.checkpoint`)
and raises :class:`InjectedFault` at the Nth invocation, simulating a
crash *inside* the evaluation of a statement — between two kernel ops,
after some intermediate relations exist but before anything committed.

:class:`InjectedFault` deliberately does **not** derive from
:class:`~repro.errors.ReproError`: it stands in for the exceptions the
library does not raise on purpose (a numpy error, a bug). The session's
exception-hygiene net must therefore surface it as
:class:`~repro.errors.EvaluationError` with the fault as ``__cause__``
— the differential sweep in ``tests/backend/test_fault_injection.py``
asserts exactly that, plus bit-identical post-fault state.

Typical use::

    total = count_ops(lambda: run())          # dry run: how many ops?
    for n in sweep_points(total, limit=8):    # bounded injection sweep
        with inject_fault(n):
            with pytest.raises(EvaluationError) as info:
                run()
        assert isinstance(info.value.__cause__, InjectedFault)
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Iterator

from repro.relational import guards


class InjectedFault(RuntimeError):
    """The simulated mid-kernel crash raised by :func:`inject_fault`.

    Intentionally a bare :class:`RuntimeError`: it models the faults
    the library never raises deliberately, so it must only ever reach
    the public API wrapped in an
    :class:`~repro.errors.EvaluationError`.
    """


class FaultCounter:
    """Mutable op count shared with the caller of :func:`inject_fault`."""

    __slots__ = ("ops", "fired")

    def __init__(self) -> None:
        self.ops = 0
        self.fired = False


@contextmanager
def inject_fault(at: int, op: str | None = None) -> Iterator[FaultCounter]:
    """Raise :class:`InjectedFault` at the *at*-th checkpoint (1-based).

    *op* narrows the countdown to checkpoints of one kernel op name
    (``"mask"``, ``"join_on"``, …); by default every op counts. The
    yielded :class:`FaultCounter` reports how many matching checkpoints
    ran and whether the fault fired — a sweep uses ``fired`` to detect
    that it has walked past the last op boundary.
    """
    counter = FaultCounter()

    def hook(name: str, rows: int) -> None:
        if op is not None and name != op:
            return
        counter.ops += 1
        if counter.ops == at:
            counter.fired = True
            raise InjectedFault(
                f"injected fault at kernel op #{at} ({name}, {rows} rows)"
            )

    with guards.op_hook(hook):
        yield counter


def count_ops(run: Callable[[], object], op: str | None = None) -> int:
    """The number of checkpoint crossings a clean run of *run* makes.

    The dry-run half of a sweep: run once while counting, then inject
    at points 1..N. *op* filters like in :func:`inject_fault`.
    """
    counter = FaultCounter()

    def hook(name: str, rows: int) -> None:
        if op is None or name == op:
            counter.ops += 1

    with guards.op_hook(hook):
        run()
    return counter.ops


def sweep_points(total: int, limit: int | None = None) -> list[int]:
    """Injection points covering ``1..total``, at most *limit* of them.

    With no limit (or ``total <= limit``) every op boundary is swept —
    the nightly configuration. Otherwise the sample always includes the
    first and last boundary and spreads the rest evenly, so a bounded
    per-PR sweep still probes the edges (before anything ran / after
    almost everything ran) plus the interior.
    """
    if total <= 0:
        return []
    if limit is None or total <= limit:
        return list(range(1, total + 1))
    if limit == 1:
        return [1]
    step = (total - 1) / (limit - 1)
    points = {round(1 + i * step) for i in range(limit)}
    points.add(1)
    points.add(total)
    return sorted(points)


__all__ = ["FaultCounter", "InjectedFault", "count_ops", "inject_fault", "sweep_points"]
