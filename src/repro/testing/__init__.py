"""Adversarial testing utilities: kernel-op fault injection.

Public home of the fault-injection harness
(:mod:`repro.testing.faults`) that the crash-consistency differential
suite drives; importable by downstream users who want to subject their
own workloads to the same treatment. Distinct from
:mod:`repro.backend.testing`, which holds the backend-agreement
helpers.
"""

from repro.testing.faults import (
    FaultCounter,
    InjectedFault,
    count_ops,
    inject_fault,
    sweep_points,
)

__all__ = ["FaultCounter", "InjectedFault", "count_ops", "inject_fault", "sweep_points"]
