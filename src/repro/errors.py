"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so
applications can catch one type. Subclasses mirror the major subsystems:
schemas, evaluation, typing, parsing, rewriting, and world-set
representations.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SchemaError(ReproError):
    """A relation or operator was used with an incompatible schema.

    Raised, e.g., when a union's operands have different attribute sets,
    when a product's operands share attribute names, or when a projection
    references an unknown attribute.
    """


class EvaluationError(ReproError):
    """A query could not be evaluated against the given data."""


class TypingError(ReproError):
    """A world-set algebra query failed static type checking (Section 4.1)."""


class TranslationError(ReproError):
    """A world-set query cannot be translated to relational algebra.

    Raised for the operators beyond relational algebra's reach:
    repair-by-key (NP-hard, Proposition 4.2) and the active-domain
    relation of Proposition 6.3.
    """


class WorldLimitError(EvaluationError, TranslationError):
    """Evaluation exceeded the configured ``max_worlds`` guard.

    Derives from both :class:`EvaluationError` (it is an evaluation
    limit, whichever backend hits it) and :class:`TranslationError`
    (historically the inlined evaluators raised the latter), so callers
    may catch either — and backends can tell "over the limit" apart
    from "not translatable" without string matching.
    """


class ParseError(ReproError):
    """An I-SQL statement could not be tokenized or parsed."""

    def __init__(self, message: str, position: int | None = None) -> None:
        if position is not None:
            message = f"{message} (at offset {position})"
        super().__init__(message)
        self.position = position


class RewriteError(ReproError):
    """A rewrite rule was applied to a query it does not match."""


class RepresentationError(ReproError):
    """An inlined representation (Definition 5.1) is malformed."""
