"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so
applications can catch one type. Subclasses mirror the major subsystems:
schemas, evaluation, typing, parsing, rewriting, and world-set
representations.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SchemaError(ReproError):
    """A relation or operator was used with an incompatible schema.

    Raised, e.g., when a union's operands have different attribute sets,
    when a product's operands share attribute names, or when a projection
    references an unknown attribute.
    """


class EvaluationError(ReproError):
    """A query could not be evaluated against the given data."""


class TypingError(ReproError):
    """A world-set algebra query failed static type checking (Section 4.1)."""


class TranslationError(ReproError):
    """A world-set query cannot be translated to relational algebra.

    Raised for the operators beyond relational algebra's reach:
    repair-by-key (NP-hard, Proposition 4.2) and the active-domain
    relation of Proposition 6.3.
    """


class WorldLimitError(EvaluationError, TranslationError):
    """Evaluation exceeded the configured ``max_worlds`` guard.

    Derives from both :class:`EvaluationError` (it is an evaluation
    limit, whichever backend hits it) and :class:`TranslationError`
    (historically the inlined evaluators raised the latter), so callers
    may catch either — and backends can tell "over the limit" apart
    from "not translatable" without string matching.
    """


class ResourceLimitError(EvaluationError):
    """A statement exceeded its configured resource budget.

    Raised cooperatively at kernel-op boundaries when a session's
    ``max_rows`` or ``max_seconds`` budget runs out (see
    :mod:`repro.relational.guards`). Like :class:`WorldLimitError` it
    is a guard, not a crash: the check fires *before* any state commit,
    so catching it leaves the session usable with its state equal to
    the last commit.
    """


class OwnershipError(EvaluationError):
    """A session was used from a thread that does not own it.

    Sessions are single-threaded objects; the service layer
    (:mod:`repro.service`) pins each pooled session to the thread that
    acquired it via :meth:`~repro.isql.session.ISQLSession.pin_thread`.
    Any statement, snapshot, or restore attempted from another thread
    raises this instead of silently corrupting shared state.
    """


class ParseError(ReproError):
    """An I-SQL statement could not be tokenized or parsed.

    When both *position* (a character offset) and *source* (the script
    text) are known, the message carries a line/column location and a
    caret-annotated snippet of the offending line, and the ``line`` /
    ``column`` attributes are set (1-based). With only a position the
    message falls back to the bare offset. Parser internals raise with
    the offset alone; the entry points in :mod:`repro.isql.parser`
    re-raise with the source attached (:meth:`with_source`).
    """

    def __init__(
        self,
        message: str,
        position: int | None = None,
        source: str | None = None,
    ) -> None:
        self.message = message
        self.position = position
        self.source = source
        self.line: int | None = None
        self.column: int | None = None
        decorated = message
        if position is not None and source is not None:
            clamped = min(max(position, 0), len(source))
            prefix = source[:clamped]
            self.line = prefix.count("\n") + 1
            line_start = prefix.rfind("\n") + 1
            self.column = clamped - line_start + 1
            line_end = source.find("\n", clamped)
            if line_end == -1:
                line_end = len(source)
            snippet = source[line_start:line_end]
            caret = " " * (self.column - 1) + "^"
            decorated = (
                f"{message} (line {self.line}, column {self.column})"
                f"\n  {snippet}\n  {caret}"
            )
        elif position is not None:
            decorated = f"{message} (at offset {position})"
        super().__init__(decorated)

    def with_source(self, source: str) -> "ParseError":
        """This error re-located against *source* (the full script text).

        Returns ``self`` unchanged when there is no position to locate
        or a source is already attached.
        """
        if self.position is None or self.source is not None:
            return self
        return ParseError(self.message, self.position, source)


class RewriteError(ReproError):
    """A rewrite rule was applied to a query it does not match."""


class RepresentationError(ReproError):
    """An inlined representation (Definition 5.1) is malformed."""
