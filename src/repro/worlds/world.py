"""A possible world: a complete database instance over a fixed schema.

The paper treats a world as a tuple of relations ⟨R₁, …, R_k⟩ over a
schema Σ. We reuse :class:`repro.relational.Database` (which preserves
name order) and add the world-specific helpers the semantics needs:
schema signatures, prefix restriction (for the binary-operator world
matching of Figure 3), and answer-relation access.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.errors import SchemaError
from repro.relational.database import Database
from repro.relational.relation import Relation
from repro.relational.schema import Schema


class World(Database):
    """One possible world. Immutable and hashable."""

    __slots__ = ()

    @staticmethod
    def of(relations: Mapping[str, Relation] | Iterable[tuple[str, Relation]]) -> "World":
        """Build a world from (name, relation) pairs."""
        return World(relations)

    def signature(self) -> tuple[tuple[str, Schema], ...]:
        """The world's schema: ordered (name, schema) pairs."""
        return tuple((name, self[name].schema) for name in self.names)

    def restrict(self, names: Iterable[str]) -> "World":
        """The world restricted to a prefix/subset of its relations.

        Figure 3's binary operators combine worlds "that agree on the
        relations R₁, …, R_k"; agreement is checked on this restriction.
        """
        names = tuple(names)
        return World((name, self[name]) for name in names)

    def base(self) -> "World":
        """All relations except the last (the ⟨R₁,…,R_k⟩ prefix)."""
        return self.restrict(self.names[:-1])

    def answer(self) -> Relation:
        """The last relation R_{k+1} — the query answer in this world."""
        names = self.names
        if not names:
            raise SchemaError("world has no relations")
        return self[names[-1]]

    def extend(self, name: str, relation: Relation) -> "World":
        """The world with a fresh relation appended as R_{k+1}."""
        if name in self:
            raise SchemaError(f"relation {name!r} already exists in world")
        return World(tuple(self.items()) + ((name, relation),))

    def replace_answer(self, relation: Relation) -> "World":
        """The world with its last relation replaced."""
        names = self.names
        if not names:
            raise SchemaError("world has no relations")
        return World(
            tuple((n, self[n]) for n in names[:-1]) + ((names[-1], relation),)
        )
