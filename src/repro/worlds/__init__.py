"""World-set data model: worlds, world-sets, isomorphism, genericity."""

from repro.worlds.isomorphism import (
    apply_bijection,
    are_isomorphic,
    check_generic,
    find_isomorphism,
)
from repro.worlds.world import World
from repro.worlds.worldset import WorldSet

__all__ = [
    "World",
    "WorldSet",
    "apply_bijection",
    "are_isomorphic",
    "check_generic",
    "find_isomorphism",
]
