"""World-sets: finite sets of possible worlds over a common schema.

A :class:`WorldSet` is the paper's set of possible worlds
A = {I₁, …, I_n}. World-sets are set-based (Section 3 fixes set
semantics), so two worlds that become equal after an operation collapse
into one — this is exactly what makes 1↦1 queries produce singleton
world-sets (Section 4.1).
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator

from repro.errors import SchemaError
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.worlds.world import World


def fresh_name(taken: Iterable[str], stem: str = "Q") -> str:
    """A name based on *stem* avoiding *taken* (for query answers).

    Shared by every state holder that mints default answer names
    (world-sets and the inline backend), so all backends agree on the
    names they generate.
    """
    taken = set(taken)
    if stem not in taken:
        return stem
    counter = 1
    while f"{stem}{counter}" in taken:
        counter += 1
    return f"{stem}{counter}"


class WorldSet:
    """An immutable set of worlds sharing one schema.

    The empty world-set is permitted (it is representable by an empty
    world table, Definition 5.1); its schema is remembered so that
    operators can still type-check against it.
    """

    __slots__ = ("worlds", "_signature")

    def __init__(
        self,
        worlds: Iterable[World],
        schema: tuple[tuple[str, Schema], ...] | None = None,
    ) -> None:
        frozen = frozenset(worlds)
        signatures = {world.signature() for world in frozen}
        if len(signatures) > 1:
            raise SchemaError(
                "worlds of a world-set must share one schema; got "
                + " vs ".join(str([n for n, _ in s]) for s in signatures)
            )
        if signatures:
            inferred = next(iter(signatures))
            if schema is not None and schema != inferred:
                raise SchemaError(
                    f"declared schema {schema} does not match worlds' {inferred}"
                )
            schema = inferred
        elif schema is None:
            schema = ()
        self.worlds = frozen
        self._signature = schema

    # -- constructors -----------------------------------------------------------

    @staticmethod
    def single(world: World) -> "WorldSet":
        """The singleton world-set {A} of a complete database."""
        return WorldSet((world,))

    @staticmethod
    def empty(schema: tuple[tuple[str, Schema], ...] = ()) -> "WorldSet":
        """The empty world-set (no possible world at all)."""
        return WorldSet((), schema)

    # -- container protocol -------------------------------------------------------

    def __iter__(self) -> Iterator[World]:
        return iter(self.worlds)

    def __len__(self) -> int:
        return len(self.worlds)

    def __contains__(self, world: object) -> bool:
        return world in self.worlds

    @staticmethod
    def _canonical_signature(
        signature: tuple[tuple[str, Schema], ...]
    ) -> tuple[tuple[str, frozenset[str]], ...]:
        """Signature up to attribute order (the named perspective)."""
        return tuple((name, schema.as_set()) for name, schema in signature)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, WorldSet):
            return NotImplemented
        return self.worlds == other.worlds and self._canonical_signature(
            self._signature
        ) == self._canonical_signature(other._signature)

    def __hash__(self) -> int:
        return hash((self.worlds, self._canonical_signature(self._signature)))

    def __repr__(self) -> str:
        names = [name for name, _ in self._signature]
        return f"WorldSet({len(self.worlds)} worlds over {names})"

    # -- schema ---------------------------------------------------------------------

    @property
    def signature(self) -> tuple[tuple[str, Schema], ...]:
        """Ordered (relation name, schema) pairs shared by all worlds."""
        return self._signature

    @property
    def relation_names(self) -> tuple[str, ...]:
        """The relation names R₁, …, R_k of the shared schema."""
        return tuple(name for name, _ in self._signature)

    @property
    def is_singleton(self) -> bool:
        """True iff the world-set contains exactly one world."""
        return len(self.worlds) == 1

    def the_world(self) -> World:
        """The unique world of a singleton world-set."""
        if not self.is_singleton:
            raise SchemaError(
                f"expected a singleton world-set, got {len(self.worlds)} worlds"
            )
        return next(iter(self.worlds))

    def fresh_name(self, stem: str = "Q") -> str:
        """A relation name not used by the schema (for query answers)."""
        return fresh_name(self.relation_names, stem)

    # -- transformation helpers used by the semantics --------------------------------

    def map_worlds(self, function: Callable[[World], World]) -> "WorldSet":
        """Apply *function* to every world (set semantics may collapse)."""
        return WorldSet(function(world) for world in self.worlds)

    def extend_each(self, name: str, function: Callable[[World], Relation]) -> "WorldSet":
        """Append relation *name* computed per world by *function*."""
        return WorldSet(world.extend(name, function(world)) for world in self.worlds)

    def instances(self, name: str) -> list[Relation]:
        """All instances of relation *name* across worlds (deduplicated)."""
        return list({world[name] for world in self.worlds})

    def possible(self, name: str) -> Relation:
        """Union of relation *name* over all worlds (the `poss` closure)."""
        schema = self._schema_of(name)
        rows: set[tuple] = set()
        for world in self.worlds:
            rows |= world[name]._reordered(schema.attributes).rows
        return Relation(schema, rows)

    def certain(self, name: str) -> Relation:
        """Intersection of relation *name* over all worlds (`cert`)."""
        schema = self._schema_of(name)
        rows: set[tuple] | None = None
        for world in self.worlds:
            world_rows = world[name]._reordered(schema.attributes).rows
            rows = set(world_rows) if rows is None else rows & world_rows
        return Relation(schema, rows or ())

    def _schema_of(self, name: str) -> Schema:
        for rel_name, schema in self._signature:
            if rel_name == name:
                return schema
        raise SchemaError(f"unknown relation {name!r} in world-set schema")

    def active_domain(self) -> frozenset[object]:
        """All values appearing in any relation of any world."""
        values: set[object] = set()
        for world in self.worlds:
            values |= world.active_domain()
        return frozenset(values)

    def sorted_worlds(self) -> list[World]:
        """Worlds in a deterministic display order."""

        def key(world: World) -> tuple:
            return tuple(
                tuple(world[name].sorted_rows()) for name in world.names
            )

        try:
            return sorted(self.worlds, key=key)
        except TypeError:
            return sorted(self.worlds, key=lambda w: str(key(w)))
