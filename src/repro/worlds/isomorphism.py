"""World-set isomorphism and genericity (Definitions 4.3 and 4.4).

Two world-sets A and A' are isomorphic under a bijection
θ : dom(A) → dom(A') iff θ maps A's worlds exactly onto A''s worlds.
A query q is *generic* iff A ≅_θ A' implies q(A) ≅_θ q(A').

:func:`find_isomorphism` searches for such a bijection with
profile-based pruning; :func:`check_generic` is the Proposition 4.5 /
Remark 4.6 test harness used by the genericity test suites for both
world-set algebra (generic) and TriQL on ULDBs (not generic).
"""

from __future__ import annotations

from collections import Counter
from typing import Callable, Mapping

from repro.relational.pad import sort_key
from repro.relational.relation import Relation
from repro.worlds.world import World
from repro.worlds.worldset import WorldSet

Bijection = Mapping[object, object]


def apply_bijection(world_set: WorldSet, theta: Bijection) -> WorldSet:
    """Apply the domain bijection θ to every value of every world.

    Values missing from θ are kept unchanged, which lets callers pass
    partial maps for domains that are only partially renamed.
    """

    def map_world(world: World) -> World:
        return World(
            (
                name,
                Relation(
                    world[name].schema,
                    (tuple(theta.get(v, v) for v in row) for row in world[name].rows),
                ),
            )
            for name in world.names
        )

    return WorldSet(map_world(world) for world in world_set.worlds)


def _value_profile(world_set: WorldSet) -> dict[object, tuple]:
    """A θ-invariant fingerprint for each domain value.

    For every value we count, per (relation, column), how often it
    occurs in each world, and aggregate the per-world counts into a
    sorted multiset. Any isomorphism must map values to values with
    identical profiles, which prunes the backtracking search hard.
    """
    per_value: dict[object, Counter] = {}
    for world in world_set.worlds:
        world_key: dict[object, Counter] = {}
        for name in world.names:
            relation = world[name]
            for row in relation.rows:
                for column, value in enumerate(row):
                    world_key.setdefault(value, Counter())[(name, column)] += 1
        for value, counts in world_key.items():
            per_value.setdefault(value, Counter())[
                tuple(sorted(counts.items()))
            ] += 1
    return {
        value: tuple(sorted(profile.items(), key=str))
        for value, profile in per_value.items()
    }


def find_isomorphism(a: WorldSet, b: WorldSet) -> dict[object, object] | None:
    """Find θ with a ≅_θ b, or None if the world-sets are not isomorphic."""
    if a.signature != b.signature or len(a) != len(b):
        return None
    dom_a = sorted(a.active_domain(), key=sort_key)
    dom_b = sorted(b.active_domain(), key=sort_key)
    if len(dom_a) != len(dom_b):
        return None
    profile_a = _value_profile(a)
    profile_b = _value_profile(b)

    candidates: dict[object, list[object]] = {}
    for value in dom_a:
        matches = [w for w in dom_b if profile_b[w] == profile_a[value]]
        if not matches:
            return None
        candidates[value] = matches

    order = sorted(dom_a, key=lambda v: (len(candidates[v]), sort_key(v)))
    assignment: dict[object, object] = {}
    used: set[object] = set()

    def backtrack(position: int) -> bool:
        if position == len(order):
            return apply_bijection(a, assignment) == b
        value = order[position]
        for target in candidates[value]:
            if target in used:
                continue
            assignment[value] = target
            used.add(target)
            if backtrack(position + 1):
                return True
            del assignment[value]
            used.remove(target)
        return False

    if backtrack(0):
        return dict(assignment)
    return None


def are_isomorphic(a: WorldSet, b: WorldSet) -> bool:
    """True iff some bijection θ witnesses a ≅_θ b (Definition 4.3)."""
    return find_isomorphism(a, b) is not None


def check_generic(
    query: Callable[[WorldSet], WorldSet],
    world_set: WorldSet,
    theta: Bijection,
) -> bool:
    """Check Definition 4.4 for one instance: does θ commute with *query*?

    Returns True iff q(θ(A)) ≅ q(A) under the same θ. The bijection must
    be injective on the world-set's active domain.
    """
    domain = world_set.active_domain()
    image = [theta.get(v, v) for v in domain]
    if len(set(image)) != len(image):
        raise ValueError("theta must be injective on the active domain")
    mapped_input = apply_bijection(world_set, theta)
    answer_then_map = apply_bijection(query(world_set), theta)
    map_then_answer = query(mapped_input)
    return answer_then_map == map_then_answer
