"""Operator-tree rendering for query plans (Figures 8 and 9).

Renders world-set algebra queries and relational algebra expressions as
indented ASCII trees, the vertical format the paper uses for the
q1/q1′ and q2/q2′ plan pairs.
"""

from __future__ import annotations

from repro.core.ast import (
    Cert,
    CertGroup,
    ChoiceOf,
    Poss,
    PossGroup,
    Project,
    Rel,
    Rename,
    RepairByKey,
    Select,
    ThetaJoin,
    WSAQuery,
    _GroupWorldsBy,
)
from repro.relational.algebra import RAExpr


def _wsa_label(node: WSAQuery) -> str:
    if isinstance(node, Rel):
        return node.name
    if isinstance(node, Select):
        return f"σ[{node.predicate!r}]"
    if isinstance(node, Project):
        return f"π[{','.join(node.attrs)}]"
    if isinstance(node, Rename):
        renames = ",".join(f"{o}→{n}" for o, n in sorted(node.mapping.items()))
        return f"δ[{renames}]"
    if isinstance(node, ChoiceOf):
        return f"χ[{','.join(node.attrs)}]"
    if isinstance(node, _GroupWorldsBy):
        kind = "p" if isinstance(node, PossGroup) else "c"
        return f"{kind}γ[{','.join(node.proj_attrs) or '∅'}; by {','.join(node.group_attrs) or '∅'}]"
    if isinstance(node, Poss):
        return "poss"
    if isinstance(node, Cert):
        return "cert"
    if isinstance(node, ThetaJoin):
        return f"⋈[{node.predicate!r}]"
    if isinstance(node, RepairByKey):
        return f"repair[{','.join(node.attrs)}]"
    symbol = getattr(node, "symbol", None)
    return symbol if symbol else type(node).__name__


def render_plan(query: WSAQuery, title: str | None = None) -> str:
    """Render a world-set algebra plan as an indented tree."""
    lines: list[str] = []
    if title:
        lines.append(title)

    def walk(node: WSAQuery, prefix: str, is_last: bool, is_root: bool) -> None:
        connector = "" if is_root else ("└─ " if is_last else "├─ ")
        lines.append(prefix + connector + _wsa_label(node))
        children = node.children()
        child_prefix = prefix + ("" if is_root else ("   " if is_last else "│  "))
        for index, child in enumerate(children):
            walk(child, child_prefix, index == len(children) - 1, False)

    walk(query, "", True, True)
    return "\n".join(lines)


def _ra_label(node: RAExpr) -> str:
    text = node.to_text()
    head, _, _ = text.partition("(")
    symbol = getattr(node, "symbol", None)
    if symbol and not node.children():
        return text
    if symbol and len(node.children()) == 2:
        return symbol
    return head if head else text


def render_ra_plan(expression: RAExpr, title: str | None = None) -> str:
    """Render a relational algebra expression as an indented tree."""
    lines: list[str] = []
    if title:
        lines.append(title)

    def walk(node: RAExpr, prefix: str, is_last: bool, is_root: bool) -> None:
        connector = "" if is_root else ("└─ " if is_last else "├─ ")
        lines.append(prefix + connector + _ra_label(node))
        children = node.children()
        child_prefix = prefix + ("" if is_root else ("   " if is_last else "│  "))
        for index, child in enumerate(children):
            walk(child, child_prefix, index == len(children) - 1, False)

    walk(expression, "", True, True)
    return "\n".join(lines)
