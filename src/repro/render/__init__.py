"""ASCII rendering of relations, world-sets, representations, and plans."""

from repro.render.plans import render_plan, render_ra_plan
from repro.render.tables import (
    render_database,
    render_relation,
    render_representation,
    render_world_set,
)

__all__ = [
    "render_database",
    "render_plan",
    "render_ra_plan",
    "render_relation",
    "render_representation",
    "render_world_set",
]
