"""ASCII rendering of relations, worlds, world-sets, and representations.

The examples print their output in the shape the paper's figures use:
small headed tables, one per relation, grouped per world. Rendering is
deterministic (rows are sorted) so example output is reproducible.
"""

from __future__ import annotations

from repro.inline.representation import InlinedRepresentation
from repro.relational.database import Database
from repro.relational.relation import Relation
from repro.worlds.worldset import WorldSet


def render_relation(relation: Relation, title: str | None = None) -> str:
    """Render one relation as an ASCII table (Figure 2 style)."""
    headers = list(relation.schema.attributes)
    if not headers:
        body = "⟨⟩" if relation.rows else "∅"
        return f"{title or ''}{'() ' if title else ''}{body}".strip()
    rows = [[repr(v) if isinstance(v, str) else str(v) for v in row] for row in relation.sorted_rows()]
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    if not rows:
        lines.append("(empty)")
    return "\n".join(lines)


def render_database(database: Database, title: str | None = None) -> str:
    """Render all relations of a database/world, one table per relation."""
    parts = []
    if title:
        parts.append(f"=== {title} ===")
    for name, relation in database.items():
        parts.append(render_relation(relation, title=name))
    return "\n\n".join(parts)


def render_world_set(world_set: WorldSet, title: str | None = None) -> str:
    """Render every world of a world-set (Figure 2 (b)–(d) style)."""
    parts = []
    if title:
        parts.append(f"### {title} ({len(world_set)} worlds) ###")
    for index, world in enumerate(world_set.sorted_worlds(), start=1):
        parts.append(render_database(world, title=f"world {index}"))
    return "\n\n".join(parts)


def render_representation(
    representation: InlinedRepresentation, title: str | None = None
) -> str:
    """Render an inlined representation (Figure 4/5 style)."""
    parts = []
    if title:
        parts.append(f"### {title} ###")
    for name, table in representation.tables.items():
        parts.append(render_relation(table, title=f"{name}ᵀ"))
    if representation.factors is not None:
        # A factored world renders factor by factor — the joint table
        # is the (never materialized) product of these.
        for factor_name, factor in representation.factor_tables().items():
            parts.append(render_relation(factor, title=f"W ({factor_name})"))
    else:
        parts.append(render_relation(representation.world_table, title="W"))
    return "\n\n".join(parts)
