"""Proposition 4.2: WSA with repair-by-key is NP-hard.

The paper notes that "one can easily reduce the 3-colorability problem
to the evaluation of a world-set algebra query" with repair-by-key.
This module spells the reduction out:

1. Build the candidate relation ``Cand(VID, Color) = V × Colors`` and
   the (symmetric) edge relation ``E(U, V)``.
2. Guess: ``Coloring ← repair by key VID (Cand)`` creates one world per
   total color assignment (|Colors|^|V| worlds). Materializing the
   result as a *base* relation of the world-set is what lets the check
   query reference the same guess twice — in world-set algebra a binary
   operator correlates its operands only through the base relations
   R₁, …, R_k (Figure 3), so the guess must be added to the worlds
   first (this is exactly I-SQL's ``V ← select …`` view mechanism).
3. Check, per world: a monochromatic edge is a violation; the query

       poss( π_∅(Cand) − π_∅( σ_{C1=C2}(Coloring ⋈ E ⋈ Coloring) ) )

   answers the nullary relation {⟨⟩} iff some world is violation-free,
   i.e. iff the graph is |Colors|-colorable.

The module also ships a brute-force oracle for the test suite.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Sequence

from repro.core import ast as wsa
from repro.core.semantics import answer, evaluate
from repro.relational.predicates import eq
from repro.relational.relation import Relation
from repro.worlds.world import World
from repro.worlds.worldset import WorldSet

#: The three colors of the classical 3-colorability problem.
THREE_COLORS = ("red", "green", "blue")


def coloring_candidates(
    vertices: Sequence[object], colors: Sequence[object] = THREE_COLORS
) -> Relation:
    """``Cand(VID, Color)``: every vertex paired with every color."""
    return Relation(("VID", "Color"), itertools.product(vertices, colors))


def edge_relation(edges: Iterable[tuple[object, object]]) -> Relation:
    """``E(U, V)``: the symmetric closure of the edge list."""
    rows: set[tuple] = set()
    for u, v in edges:
        rows.add((u, v))
        rows.add((v, u))
    return Relation(("U", "V"), rows)


def guess_query() -> wsa.WSAQuery:
    """The guess phase: all repairs of Cand keyed on VID."""
    return wsa.repair_by_key(("VID",), wsa.rel("Cand"))


def check_query() -> wsa.WSAQuery:
    """The check phase, evaluated after `Coloring` was materialized."""
    left = wsa.rename({"VID": "U", "Color": "C1"}, wsa.rel("Coloring"))
    right = wsa.rename({"VID": "V", "Color": "C2"}, wsa.rel("Coloring"))
    monochromatic = wsa.select(
        eq("C1", "C2"),
        wsa.natural_join(wsa.natural_join(left, wsa.rel("E")), right),
    )
    has_vertices = wsa.project((), wsa.rel("Cand"))
    no_violation = wsa.difference(has_vertices, wsa.project((), monochromatic))
    return wsa.poss(no_violation)


def is_colorable(
    vertices: Sequence[object],
    edges: Iterable[tuple[object, object]],
    colors: Sequence[object] = THREE_COLORS,
    max_worlds: int | None = 1_000_000,
) -> bool:
    """Decide |colors|-colorability by evaluating the WSA program."""
    vertices = list(vertices)
    if not vertices:
        return True
    base = World.of(
        {
            "Cand": coloring_candidates(vertices, colors),
            "E": edge_relation(edges),
        }
    )
    guessed = evaluate(
        guess_query(), WorldSet.single(base), name="Coloring", max_worlds=max_worlds
    )
    verdict = answer(check_query(), guessed, max_worlds=max_worlds)
    return bool(verdict)


def brute_force_colorable(
    vertices: Sequence[object],
    edges: Iterable[tuple[object, object]],
    colors: Sequence[object] = THREE_COLORS,
) -> bool:
    """Independent oracle: try every assignment directly."""
    vertices = list(vertices)
    edge_list = [(u, v) for u, v in edges]
    for assignment in itertools.product(colors, repeat=len(vertices)):
        color = dict(zip(vertices, assignment))
        if all(color[u] != color[v] for u, v in edge_list):
            return True
    return not vertices
