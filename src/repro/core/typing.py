"""Static operator typing for world-set algebra (Section 4.1).

Operators are typed by the cardinality of their input and output
world-sets, with kinds ``1`` (singleton) and ``m`` (many), and type
overloading:

* relational algebra operators and group-worlds-by: 1↦1 and m↦m;
* SQL aggregation (the I-SQL extension node) is applied per world, so
  it types like the relational operators: 1↦1 and m↦m;
* the φ-semijoin/antijoin (decorrelated condition subqueries) and the
  subquery-keyed group-worlds-by combine two operand world-sets like
  the binary operators: the output kind is MANY iff either operand's is;
* choice-of and repair-by-key: 1↦m and m↦m;
* poss and cert: m↦1 (overloaded 1↦1).

A query's type is obtained by composing the operator types. A query of
type 1↦1 is *complete-to-complete*: starting from a complete database
it ends in a complete database, and by Theorem 5.7 it is equivalent to
a relational algebra query. Section 5 uses exactly this static type to
decide when the translation's final step may project away the world-id
attributes.
"""

from __future__ import annotations

from repro.errors import TypingError
from repro.core.ast import (
    ActiveDomain,
    Aggregate,
    Cert,
    CertGroup,
    ChoiceOf,
    Poss,
    PossGroup,
    Rel,
    RepairByKey,
    WSAQuery,
)

#: Kind of a singleton world-set.
ONE = "1"
#: Kind of a general (multi-world) world-set.
MANY = "m"


def kind_after(query: WSAQuery, input_kind: str) -> str:
    """The world-set kind after applying *query* to an *input_kind* set."""
    if input_kind not in (ONE, MANY):
        raise TypingError(f"unknown world-set kind {input_kind!r}")
    if isinstance(query, (Rel, ActiveDomain)):
        return input_kind
    if isinstance(query, (Poss, Cert)):
        # poss/cert close the possible-worlds semantics: m↦1 (and 1↦1).
        kind_after(query.child, input_kind)
        return ONE
    if isinstance(query, (ChoiceOf, RepairByKey)):
        # The splitting operators: 1↦m and m↦m.
        kind_after(query.children()[0], input_kind)
        return MANY
    if isinstance(query, Aggregate):
        # SQL aggregation is applied per world: 1↦1 and m↦m.
        return kind_after(query.child, input_kind)
    children = query.children()
    if not children:
        raise TypingError(f"cannot type leaf {type(query).__name__}")
    if isinstance(query, (PossGroup, CertGroup)):
        # Group-worlds-by is 1↦1 or m↦m: it never changes the kind.
        return kind_after(children[0], input_kind)
    kinds = [kind_after(child, input_kind) for child in children]
    return MANY if MANY in kinds else ONE


def query_type(query: WSAQuery) -> str:
    """The query's type as the paper writes it, e.g. ``"1↦1, m↦m"``."""
    return f"1↦{kind_after(query, ONE)}, m↦{kind_after(query, MANY)}"


def is_complete_to_complete(query: WSAQuery) -> bool:
    """True iff the query has type 1↦1 (maps complete DBs to complete DBs)."""
    return kind_after(query, ONE) == ONE
