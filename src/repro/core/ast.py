"""World-set algebra query trees (Section 4.1).

World-set algebra extends relational algebra (σ, π, δ, ×, ∪, ∩, −) with
the world-aware operators:

* ``poss`` / ``cert`` — close the possible-worlds semantics by union /
  intersection of the answer relation across all worlds;
* ``χ_U`` (:class:`ChoiceOf`) — split each world into one world per
  distinct value combination of the attributes U;
* ``pγ^V_U`` / ``cγ^V_U`` (:class:`PossGroup` / :class:`CertGroup`) —
  group worlds that agree on π_U of the answer, then union / intersect
  π_V of the answer within each group;
* ``repair by key U`` (:class:`RepairByKey`) — the I-SQL extension of
  Section 4.1 that enumerates all maximal key-consistent sub-relations
  (NP-hard, Proposition 4.2);
* ``D^arity`` (:class:`ActiveDomain`) — the domain relation used by
  Proposition 6.3 to inter-express poss and cert.

Three further I-SQL-driven extensions let the compiler keep the whole
Figure 1 surface inside the algebra (so the inline backend never
enumerates worlds for them):

* ``γ^{aggs}_U`` (:class:`Aggregate`) — per-world SQL grouping and
  aggregation, the construct Section 4 explicitly leaves out of the
  fragment; added as a first-class node with the engine's semantics;
* ``q₁ ⋉_φ q₂`` / ``q₁ ▷_φ q₂`` (:class:`SemiJoin` / :class:`AntiJoin`)
  — the decorrelated forms of ``[not] in`` / ``[not] exists`` condition
  subqueries: per paired world, the left rows with (without) a
  φ-partner in the right answer;
* ``pγ^V_K`` / ``cγ^V_K`` (:class:`PossGroupKey` / :class:`CertGroupKey`)
  — ``group worlds by ⟨subquery⟩``: worlds are grouped by the *key*
  query's per-world answer instead of a projection of the child's.

Queries are immutable and hashable so the optimizer can compare plans
structurally. Derived operators (θ-join, natural join, division) carry
:meth:`WSAQuery.desugar` definitions in terms of the base operators,
which the property-test suite uses as semantic oracles.
"""

from __future__ import annotations

import itertools
from typing import Iterator, Mapping, Sequence

from repro.errors import SchemaError
from repro.relational.aggregates import AggSpec
from repro.relational.predicates import Predicate, conjunction, eq
from repro.relational.schema import Schema

SchemaEnv = Mapping[str, Schema]


def _attr_tuple(attributes: Sequence[str] | str) -> tuple[str, ...]:
    if isinstance(attributes, str):
        return (attributes,)
    return tuple(attributes)


class WSAQuery:
    """Abstract base class of world-set algebra queries."""

    __slots__ = ()

    def children(self) -> tuple["WSAQuery", ...]:
        """Immediate subqueries."""
        raise NotImplementedError

    def attributes(self, env: SchemaEnv) -> tuple[str, ...]:
        """Output attributes of the answer relation R_{k+1}."""
        raise NotImplementedError

    def to_text(self) -> str:
        """Compact textbook rendering, e.g. ``cert(π[Arr](χ[Dep](HFlights)))``."""
        raise NotImplementedError

    def desugar(self) -> "WSAQuery":
        """The same query with derived operators expanded to base ones."""
        children = tuple(child.desugar() for child in self.children())
        if children == self.children():
            return self
        return self._with_children(children)

    def _with_children(self, children: tuple["WSAQuery", ...]) -> "WSAQuery":
        raise NotImplementedError

    def walk(self) -> Iterator["WSAQuery"]:
        """Pre-order traversal."""
        yield self
        for child in self.children():
            yield from child.walk()

    def size(self) -> int:
        """Number of operator nodes."""
        return 1 + sum(child.size() for child in self.children())

    def relation_names(self) -> frozenset[str]:
        """Base relations referenced by the query."""
        return frozenset(
            node.name for node in self.walk() if isinstance(node, Rel)
        )

    def __repr__(self) -> str:
        return self.to_text()

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self._key() == other._key()  # type: ignore[attr-defined]

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._key()))

    def _key(self) -> tuple:
        raise NotImplementedError


class Rel(WSAQuery):
    """Identity on a base relation R_i (the base case of Figure 3)."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def children(self) -> tuple[WSAQuery, ...]:
        return ()

    def _with_children(self, children: tuple[WSAQuery, ...]) -> "Rel":
        return self

    def attributes(self, env: SchemaEnv) -> tuple[str, ...]:
        try:
            return env[self.name].attributes
        except KeyError:
            raise SchemaError(f"unknown relation {self.name!r}") from None

    def to_text(self) -> str:
        return self.name

    def _key(self) -> tuple:
        return (self.name,)


class Select(WSAQuery):
    """Selection σ_φ(q), applied per world to the answer relation."""

    __slots__ = ("predicate", "child")

    def __init__(self, predicate: Predicate, child: WSAQuery) -> None:
        self.predicate = predicate
        self.child = child

    def children(self) -> tuple[WSAQuery, ...]:
        return (self.child,)

    def _with_children(self, children: tuple[WSAQuery, ...]) -> "Select":
        return Select(self.predicate, children[0])

    def attributes(self, env: SchemaEnv) -> tuple[str, ...]:
        attrs = self.child.attributes(env)
        available = set(attrs)
        for attr in self.predicate.attributes():
            if attr not in available:
                raise SchemaError(
                    f"selection references {attr!r}, not among {list(attrs)}"
                )
        return attrs

    def to_text(self) -> str:
        return f"σ[{self.predicate!r}]({self.child.to_text()})"

    def _key(self) -> tuple:
        return (self.predicate, self.child)


class Project(WSAQuery):
    """Projection π_U(q)."""

    __slots__ = ("attrs", "child")

    def __init__(self, attrs: Sequence[str] | str, child: WSAQuery) -> None:
        self.attrs = _attr_tuple(attrs)
        self.child = child

    def children(self) -> tuple[WSAQuery, ...]:
        return (self.child,)

    def _with_children(self, children: tuple[WSAQuery, ...]) -> "Project":
        return Project(self.attrs, children[0])

    def attributes(self, env: SchemaEnv) -> tuple[str, ...]:
        available = set(self.child.attributes(env))
        for attr in self.attrs:
            if attr not in available:
                raise SchemaError(f"projection references unknown attribute {attr!r}")
        if len(set(self.attrs)) != len(self.attrs):
            raise SchemaError(f"duplicate attributes in projection {self.attrs}")
        return self.attrs

    def to_text(self) -> str:
        return f"π[{','.join(self.attrs)}]({self.child.to_text()})"

    def _key(self) -> tuple:
        return (self.attrs, self.child)


class Rename(WSAQuery):
    """Renaming δ_{old→new}(q)."""

    __slots__ = ("mapping", "child")

    def __init__(self, mapping: Mapping[str, str], child: WSAQuery) -> None:
        self.mapping = dict(mapping)
        self.child = child

    def children(self) -> tuple[WSAQuery, ...]:
        return (self.child,)

    def _with_children(self, children: tuple[WSAQuery, ...]) -> "Rename":
        return Rename(self.mapping, children[0])

    def attributes(self, env: SchemaEnv) -> tuple[str, ...]:
        return Schema(self.child.attributes(env)).rename(self.mapping).attributes

    def to_text(self) -> str:
        renames = ",".join(f"{o}→{n}" for o, n in sorted(self.mapping.items()))
        return f"δ[{renames}]({self.child.to_text()})"

    def _key(self) -> tuple:
        return (tuple(sorted(self.mapping.items())), self.child)


class _BinaryQuery(WSAQuery):
    """Shared plumbing for the binary operators of Figure 3."""

    __slots__ = ("left", "right")
    symbol = "?"

    def __init__(self, left: WSAQuery, right: WSAQuery) -> None:
        self.left = left
        self.right = right

    def children(self) -> tuple[WSAQuery, ...]:
        return (self.left, self.right)

    def _with_children(self, children: tuple[WSAQuery, ...]) -> "_BinaryQuery":
        return type(self)(children[0], children[1])

    def to_text(self) -> str:
        return f"({self.left.to_text()} {self.symbol} {self.right.to_text()})"

    def _key(self) -> tuple:
        return (self.left, self.right)

    def _same_attrs(self, env: SchemaEnv, op: str) -> tuple[str, ...]:
        left = self.left.attributes(env)
        right = self.right.attributes(env)
        if set(left) != set(right):
            raise SchemaError(
                f"{op} operands must have equal attribute sets; "
                f"got {list(left)} vs {list(right)}"
            )
        return left


class Product(_BinaryQuery):
    """Product q₁ × q₂ (disjoint attribute sets; per-world pairing)."""

    __slots__ = ()
    symbol = "×"

    def attributes(self, env: SchemaEnv) -> tuple[str, ...]:
        left = self.left.attributes(env)
        right = self.right.attributes(env)
        shared = set(left) & set(right)
        if shared:
            raise SchemaError(f"product operands share attributes {sorted(shared)}")
        return left + right


class Union(_BinaryQuery):
    """Union q₁ ∪ q₂."""

    __slots__ = ()
    symbol = "∪"

    def attributes(self, env: SchemaEnv) -> tuple[str, ...]:
        return self._same_attrs(env, "union")


class Intersect(_BinaryQuery):
    """Intersection q₁ ∩ q₂ (expressible as q₁ − (q₁ − q₂))."""

    __slots__ = ()
    symbol = "∩"

    def attributes(self, env: SchemaEnv) -> tuple[str, ...]:
        return self._same_attrs(env, "intersection")

    def desugar(self) -> WSAQuery:
        left = self.left.desugar()
        right = self.right.desugar()
        return Difference(left, Difference(left, right))


class Difference(_BinaryQuery):
    """Difference q₁ − q₂."""

    __slots__ = ()
    symbol = "−"

    def attributes(self, env: SchemaEnv) -> tuple[str, ...]:
        return self._same_attrs(env, "difference")


class ThetaJoin(WSAQuery):
    """θ-join q₁ ⋈_φ q₂ — sugar for σ_φ(q₁ × q₂) (Example 4.1 style)."""

    __slots__ = ("predicate", "left", "right")

    def __init__(self, predicate: Predicate, left: WSAQuery, right: WSAQuery) -> None:
        self.predicate = predicate
        self.left = left
        self.right = right

    def children(self) -> tuple[WSAQuery, ...]:
        return (self.left, self.right)

    def _with_children(self, children: tuple[WSAQuery, ...]) -> "ThetaJoin":
        return ThetaJoin(self.predicate, children[0], children[1])

    def attributes(self, env: SchemaEnv) -> tuple[str, ...]:
        return Product(self.left, self.right).attributes(env)

    def desugar(self) -> WSAQuery:
        return Select(self.predicate, Product(self.left.desugar(), self.right.desugar()))

    def to_text(self) -> str:
        return f"({self.left.to_text()} ⋈[{self.predicate!r}] {self.right.to_text()})"

    def _key(self) -> tuple:
        return (self.predicate, self.left, self.right)


class NaturalJoin(_BinaryQuery):
    """Natural join q₁ ⋈ q₂ on shared attribute names.

    Desugars to rename–product–select–project over the base operators.
    """

    __slots__ = ()
    symbol = "⋈"

    def attributes(self, env: SchemaEnv) -> tuple[str, ...]:
        left = self.left.attributes(env)
        right = self.right.attributes(env)
        shared = set(left) & set(right)
        return left + tuple(a for a in right if a not in shared)

    def shared_attributes(self, env: SchemaEnv) -> tuple[str, ...]:
        """The join attributes (shared names), in left-operand order."""
        right = set(self.right.attributes(env))
        return tuple(a for a in self.left.attributes(env) if a in right)

    def desugar(self) -> WSAQuery:
        # The rename targets must be globally fresh; we derive them from
        # the shared names with a reserved prefix.
        left = self.left.desugar()
        right = self.right.desugar()
        return _desugared_natural_join(left, right)


def _desugared_natural_join(left: WSAQuery, right: WSAQuery) -> WSAQuery:
    """Expand a natural join using only base operators.

    The shared attributes of the right operand are renamed to fresh
    ``joined#`` names, the operands are θ-joined on equality, and the
    duplicates are projected away. Attribute resolution happens lazily
    at evaluation/validation time via :class:`_NaturalJoinExpansion`.
    """
    return _NaturalJoinExpansion(left, right)


class _NaturalJoinExpansion(_BinaryQuery):
    """A natural join that expands itself once schemas are known.

    Natural-join desugaring needs the operand schemas (to know the
    shared attributes), which are only available under a schema
    environment. This node performs the expansion on demand via
    :meth:`expand`; the evaluator and translator call it.
    """

    __slots__ = ()
    symbol = "⋈*"

    def attributes(self, env: SchemaEnv) -> tuple[str, ...]:
        return NaturalJoin(self.left, self.right).attributes(env)

    def expand(self, env: SchemaEnv) -> WSAQuery:
        """The base-operator expression for this natural join."""
        left_attrs = self.left.attributes(env)
        right_attrs = self.right.attributes(env)
        shared = [a for a in right_attrs if a in set(left_attrs)]
        if not shared:
            return Product(self.left, self.right)
        fresh = {a: f"joined#{a}" for a in shared}
        renamed = Rename(fresh, self.right)
        condition = conjunction([eq(a, fresh[a]) for a in shared])
        joined = Select(condition, Product(self.left, renamed))
        keep = left_attrs + tuple(a for a in right_attrs if a not in set(shared))
        return Project(keep, joined)


class Divide(_BinaryQuery):
    """Division q₁ ÷ q₂ — the derived operator used in Section 2.

    Desugars to π_D(q₁) − π_D((π_D(q₁) × q₂) − q₁); the attribute
    bookkeeping is resolved lazily like the natural join.
    """

    __slots__ = ()
    symbol = "÷"

    def attributes(self, env: SchemaEnv) -> tuple[str, ...]:
        left = self.left.attributes(env)
        right = self.right.attributes(env)
        if not set(right) <= set(left):
            raise SchemaError("division requires divisor attributes ⊆ dividend attributes")
        return tuple(a for a in left if a not in set(right))

    def expand(self, env: SchemaEnv) -> WSAQuery:
        """The base-operator expression for this division."""
        keep = self.attributes(env)
        quotient = Project(keep, self.left)
        candidates = Product(quotient, self.right)
        missing = Project(keep, Difference(candidates, _align(self.left, candidates, env)))
        return Difference(quotient, missing)


def _align(query: WSAQuery, like: WSAQuery, env: SchemaEnv) -> WSAQuery:
    """Project *query* onto the attribute order of *like* (named views)."""
    return Project(like.attributes(env), query)


class ChoiceOf(WSAQuery):
    """χ_U(q): one world per distinct U-value of the answer (Figure 3).

    Applied to an empty answer relation, a single world with an empty
    answer is produced (the paper's dummy choice ``v = 1``).
    """

    __slots__ = ("attrs", "child")

    def __init__(self, attrs: Sequence[str] | str, child: WSAQuery) -> None:
        self.attrs = _attr_tuple(attrs)
        self.child = child

    def children(self) -> tuple[WSAQuery, ...]:
        return (self.child,)

    def _with_children(self, children: tuple[WSAQuery, ...]) -> "ChoiceOf":
        return ChoiceOf(self.attrs, children[0])

    def attributes(self, env: SchemaEnv) -> tuple[str, ...]:
        available = set(self.child.attributes(env))
        for attr in self.attrs:
            if attr not in available:
                raise SchemaError(f"choice-of references unknown attribute {attr!r}")
        return self.child.attributes(env)

    def to_text(self) -> str:
        return f"χ[{','.join(self.attrs)}]({self.child.to_text()})"

    def _key(self) -> tuple:
        return (self.attrs, self.child)


class _GroupWorldsBy(WSAQuery):
    """Shared plumbing for pγ^V_U and cγ^V_U."""

    __slots__ = ("group_attrs", "proj_attrs", "child")
    prefix = "?"

    def __init__(
        self,
        group_attrs: Sequence[str] | str,
        proj_attrs: Sequence[str] | str,
        child: WSAQuery,
    ) -> None:
        self.group_attrs = _attr_tuple(group_attrs)
        self.proj_attrs = _attr_tuple(proj_attrs)
        self.child = child

    def children(self) -> tuple[WSAQuery, ...]:
        return (self.child,)

    def _with_children(self, children: tuple[WSAQuery, ...]) -> "_GroupWorldsBy":
        return type(self)(self.group_attrs, self.proj_attrs, children[0])

    def attributes(self, env: SchemaEnv) -> tuple[str, ...]:
        available = set(self.child.attributes(env))
        for attr in self.group_attrs + self.proj_attrs:
            if attr not in available:
                raise SchemaError(
                    f"group-worlds-by references unknown attribute {attr!r}"
                )
        return self.proj_attrs

    def to_text(self) -> str:
        groups = ",".join(self.group_attrs) if self.group_attrs else "∅"
        projs = ",".join(self.proj_attrs) if self.proj_attrs else "∅"
        return f"{self.prefix}γ[{projs}; by {groups}]({self.child.to_text()})"

    def _key(self) -> tuple:
        return (self.group_attrs, self.proj_attrs, self.child)


class PossGroup(_GroupWorldsBy):
    """pγ^V_U(q): group worlds by π_U(answer), union π_V within groups."""

    __slots__ = ()
    prefix = "p"


class CertGroup(_GroupWorldsBy):
    """cγ^V_U(q): group worlds by π_U(answer), intersect π_V within groups."""

    __slots__ = ()
    prefix = "c"


class _GroupWorldsByKey(WSAQuery):
    """Shared plumbing for pγ^V_K and cγ^V_K (subquery-keyed grouping).

    Worlds are grouped by the per-world *answer of the key query* —
    worlds whose key answers coincide as sets form one group — and the
    answer is the union (pγ) / intersection (cγ) of π_V of the child's
    answer within each group. This is exactly I-SQL's
    ``group worlds by ⟨subquery⟩``; the attribute-list form of
    :class:`PossGroup`/:class:`CertGroup` is the special case where the
    key query is a projection of the child itself (evaluated without
    re-splitting worlds, which is why it stays a separate node).
    """

    __slots__ = ("proj_attrs", "child", "key")
    prefix = "?"

    def __init__(
        self,
        proj_attrs: Sequence[str] | str,
        child: WSAQuery,
        key: WSAQuery,
    ) -> None:
        self.proj_attrs = _attr_tuple(proj_attrs)
        self.child = child
        self.key = key

    def children(self) -> tuple[WSAQuery, ...]:
        return (self.child, self.key)

    def _with_children(self, children: tuple[WSAQuery, ...]) -> "_GroupWorldsByKey":
        return type(self)(self.proj_attrs, children[0], children[1])

    def attributes(self, env: SchemaEnv) -> tuple[str, ...]:
        available = set(self.child.attributes(env))
        for attr in self.proj_attrs:
            if attr not in available:
                raise SchemaError(
                    f"group-worlds-by references unknown attribute {attr!r}"
                )
        self.key.attributes(env)  # validate the key query too
        return self.proj_attrs

    def to_text(self) -> str:
        projs = ",".join(self.proj_attrs) if self.proj_attrs else "∅"
        return (
            f"{self.prefix}γ[{projs}; by ⟨{self.key.to_text()}⟩]"
            f"({self.child.to_text()})"
        )

    def _key(self) -> tuple:
        return (self.proj_attrs, self.child, self.key)


class PossGroupKey(_GroupWorldsByKey):
    """pγ^V_K(q): group worlds by K's answer, union π_V within groups."""

    __slots__ = ()
    prefix = "p"


class CertGroupKey(_GroupWorldsByKey):
    """cγ^V_K(q): group worlds by K's answer, intersect π_V within groups."""

    __slots__ = ()
    prefix = "c"


class Aggregate(WSAQuery):
    """γ^{specs}_U(q): per-world SQL grouping and aggregation.

    Within every world, the answer relation is grouped by the attributes
    U and each :class:`~repro.relational.aggregates.AggSpec` folds its
    argument within the group, producing ⟨U-values, aggregates⟩ rows.
    With U = ∅ this is a global aggregate: exactly one output row per
    world, defaulting over the empty answer (count/sum 0, min/max
    undefined) — SQL's single empty group, matching the I-SQL engine.

    This is deliberately *outside* the Section 4 fragment ("the algebra
    of the fragment of I-SQL without SQL grouping and aggregation");
    carrying it as a first-class node is what lets the inline
    representation evaluate aggregation flat, with the world-id
    attributes simply joining the grouping key.
    """

    __slots__ = ("group_attrs", "specs", "child")

    def __init__(
        self,
        group_attrs: Sequence[str] | str,
        specs: Sequence[AggSpec],
        child: WSAQuery,
    ) -> None:
        self.group_attrs = _attr_tuple(group_attrs)
        self.specs = tuple(specs)
        self.child = child

    def children(self) -> tuple[WSAQuery, ...]:
        return (self.child,)

    def _with_children(self, children: tuple[WSAQuery, ...]) -> "Aggregate":
        return Aggregate(self.group_attrs, self.specs, children[0])

    def attributes(self, env: SchemaEnv) -> tuple[str, ...]:
        available = set(self.child.attributes(env))
        for attr in self.group_attrs:
            if attr not in available:
                raise SchemaError(f"aggregation groups unknown attribute {attr!r}")
        for spec in self.specs:
            if spec.argument is not None and spec.argument not in available:
                raise SchemaError(
                    f"aggregate argument {spec.argument!r} is unknown"
                )
        outputs = tuple(spec.output for spec in self.specs)
        result = self.group_attrs + outputs
        if len(set(result)) != len(result):
            raise SchemaError(
                f"duplicate output attributes in aggregation {result}"
            )
        return result

    def to_text(self) -> str:
        aggs = ",".join(spec.render() for spec in self.specs)
        groups = ",".join(self.group_attrs) if self.group_attrs else "∅"
        return f"γ[{aggs}; by {groups}]({self.child.to_text()})"

    def _key(self) -> tuple:
        return (self.group_attrs, self.specs, self.child)


class _PredicateJoin(WSAQuery):
    """Shared plumbing for the φ-semijoin and φ-antijoin."""

    __slots__ = ("predicate", "left", "right")
    symbol = "?"

    def __init__(self, predicate: Predicate, left: WSAQuery, right: WSAQuery) -> None:
        self.predicate = predicate
        self.left = left
        self.right = right

    def children(self) -> tuple[WSAQuery, ...]:
        return (self.left, self.right)

    def _with_children(self, children: tuple[WSAQuery, ...]) -> "_PredicateJoin":
        return type(self)(self.predicate, children[0], children[1])

    def attributes(self, env: SchemaEnv) -> tuple[str, ...]:
        left = self.left.attributes(env)
        right = self.right.attributes(env)
        shared = set(left) & set(right)
        if shared:
            raise SchemaError(
                f"semijoin operands share attributes {sorted(shared)}; "
                "rename the right operand first"
            )
        available = set(left) | set(right)
        for attr in self.predicate.attributes():
            if attr not in available:
                raise SchemaError(
                    f"semijoin predicate references unknown attribute {attr!r}"
                )
        return left

    def to_text(self) -> str:
        return (
            f"({self.left.to_text()} {self.symbol}[{self.predicate!r}] "
            f"{self.right.to_text()})"
        )

    def _key(self) -> tuple:
        return (self.predicate, self.left, self.right)


class SemiJoin(_PredicateJoin):
    """q₁ ⋉_φ q₂: left rows with a φ-partner in q₂, per paired world.

    The decorrelated form of ``expr in ⟨subquery⟩`` / ``exists
    ⟨subquery⟩``: equivalent to π_{Attrs(q₁)}(σ_φ(q₁ × q₂)) but
    evaluated as one hash pass on the inlined representation — the
    product is never materialized.
    """

    __slots__ = ()
    symbol = "⋉"


class AntiJoin(_PredicateJoin):
    """q₁ ▷_φ q₂: left rows with *no* φ-partner in q₂, per paired world.

    The decorrelated form of ``expr not in ⟨subquery⟩`` / ``not exists
    ⟨subquery⟩``: equivalent to q₁ − π_{Attrs(q₁)}(σ_φ(q₁ × q₂)).
    """

    __slots__ = ()
    symbol = "▷"


class PadJoin(_BinaryQuery):
    """q₁ =⊳⊲ q₂: the padded left outer join of Remark 5.5, per world.

    Tuples join on the shared attribute names; left tuples without a
    partner are kept, padded with the PAD constant on q₂'s non-shared
    attributes. The decorrelated scalar-aggregate comparison uses this
    to give outer rows without a correlation partner their SQL
    empty-group default (via the ``PadDefault`` predicate term) —
    crucially referencing the outer subquery *once*, so a
    world-splitting outer plan is never evaluated twice against itself.
    """

    __slots__ = ()
    symbol = "=⊳⊲"

    def attributes(self, env: SchemaEnv) -> tuple[str, ...]:
        left = self.left.attributes(env)
        right = self.right.attributes(env)
        shared = set(left) & set(right)
        return left + tuple(a for a in right if a not in shared)


class _Closing(WSAQuery):
    """Shared plumbing for poss and cert."""

    __slots__ = ("child",)
    name = "?"

    def __init__(self, child: WSAQuery) -> None:
        self.child = child

    def children(self) -> tuple[WSAQuery, ...]:
        return (self.child,)

    def _with_children(self, children: tuple[WSAQuery, ...]) -> "_Closing":
        return type(self)(children[0])

    def attributes(self, env: SchemaEnv) -> tuple[str, ...]:
        return self.child.attributes(env)

    def to_text(self) -> str:
        return f"{self.name}({self.child.to_text()})"

    def _key(self) -> tuple:
        return (self.child,)


class Poss(_Closing):
    """poss(q): answer := union of the answer over all worlds.

    Figure 3 defines poss as pγ^*_true — grouping with the trivially
    true condition, projecting all attributes.
    """

    __slots__ = ()
    name = "poss"


class Cert(_Closing):
    """cert(q): answer := intersection of the answer over all worlds."""

    __slots__ = ()
    name = "cert"


class RepairByKey(WSAQuery):
    """``repair by key U`` — all maximal U-key-consistent sub-relations.

    This is the Section 4.1 extension: one world per choice function
    that picks exactly one tuple for each distinct U-value. Evaluation
    is NP-hard (Proposition 4.2).
    """

    __slots__ = ("attrs", "child")

    def __init__(self, attrs: Sequence[str] | str, child: WSAQuery) -> None:
        self.attrs = _attr_tuple(attrs)
        self.child = child

    def children(self) -> tuple[WSAQuery, ...]:
        return (self.child,)

    def _with_children(self, children: tuple[WSAQuery, ...]) -> "RepairByKey":
        return RepairByKey(self.attrs, children[0])

    def attributes(self, env: SchemaEnv) -> tuple[str, ...]:
        available = set(self.child.attributes(env))
        for attr in self.attrs:
            if attr not in available:
                raise SchemaError(f"repair-by-key references unknown attribute {attr!r}")
        return self.child.attributes(env)

    def to_text(self) -> str:
        return f"repair[{','.join(self.attrs)}]({self.child.to_text()})"

    def _key(self) -> tuple:
        return (self.attrs, self.child)


class ActiveDomain(WSAQuery):
    """D^arity: the full product of the input world-set's active domain.

    Proposition 6.3 uses a domain relation D "which holds the values
    that appear in the union of all the worlds" to express cert via poss
    and vice versa. The node carries explicit attribute names so the
    result can be combined with other subqueries.
    """

    __slots__ = ("attrs",)

    def __init__(self, attrs: Sequence[str] | str) -> None:
        self.attrs = _attr_tuple(attrs)
        if not self.attrs:
            raise SchemaError("active domain relation needs at least one attribute")

    def children(self) -> tuple[WSAQuery, ...]:
        return ()

    def _with_children(self, children: tuple[WSAQuery, ...]) -> "ActiveDomain":
        return self

    def attributes(self, env: SchemaEnv) -> tuple[str, ...]:
        return self.attrs

    def to_text(self) -> str:
        return f"D[{','.join(self.attrs)}]"

    def _key(self) -> tuple:
        return (self.attrs,)


# -- fluent constructors ------------------------------------------------------


def rel(name: str) -> Rel:
    """Reference base relation *name*."""
    return Rel(name)


def select(predicate: Predicate, child: WSAQuery) -> Select:
    """σ_φ(q)."""
    return Select(predicate, child)


def project(attrs: Sequence[str] | str, child: WSAQuery) -> Project:
    """π_U(q)."""
    return Project(attrs, child)


def rename(mapping: Mapping[str, str], child: WSAQuery) -> Rename:
    """δ_{old→new}(q)."""
    return Rename(mapping, child)


def product(left: WSAQuery, right: WSAQuery) -> Product:
    """q₁ × q₂."""
    return Product(left, right)


def union(left: WSAQuery, right: WSAQuery) -> Union:
    """q₁ ∪ q₂."""
    return Union(left, right)


def intersect(left: WSAQuery, right: WSAQuery) -> Intersect:
    """q₁ ∩ q₂."""
    return Intersect(left, right)


def difference(left: WSAQuery, right: WSAQuery) -> Difference:
    """q₁ − q₂."""
    return Difference(left, right)


def theta_join(predicate: Predicate, left: WSAQuery, right: WSAQuery) -> ThetaJoin:
    """q₁ ⋈_φ q₂."""
    return ThetaJoin(predicate, left, right)


def natural_join(left: WSAQuery, right: WSAQuery) -> NaturalJoin:
    """q₁ ⋈ q₂."""
    return NaturalJoin(left, right)


def divide(left: WSAQuery, right: WSAQuery) -> Divide:
    """q₁ ÷ q₂."""
    return Divide(left, right)


def choice_of(attrs: Sequence[str] | str, child: WSAQuery) -> ChoiceOf:
    """χ_U(q)."""
    return ChoiceOf(attrs, child)


def poss_group(
    group_attrs: Sequence[str] | str,
    proj_attrs: Sequence[str] | str,
    child: WSAQuery,
) -> PossGroup:
    """pγ^V_U(q) with U = group_attrs, V = proj_attrs."""
    return PossGroup(group_attrs, proj_attrs, child)


def cert_group(
    group_attrs: Sequence[str] | str,
    proj_attrs: Sequence[str] | str,
    child: WSAQuery,
) -> CertGroup:
    """cγ^V_U(q) with U = group_attrs, V = proj_attrs."""
    return CertGroup(group_attrs, proj_attrs, child)


def poss_group_key(
    proj_attrs: Sequence[str] | str, child: WSAQuery, key: WSAQuery
) -> PossGroupKey:
    """pγ^V_K(q) grouping worlds by the key query's answer."""
    return PossGroupKey(proj_attrs, child, key)


def cert_group_key(
    proj_attrs: Sequence[str] | str, child: WSAQuery, key: WSAQuery
) -> CertGroupKey:
    """cγ^V_K(q) grouping worlds by the key query's answer."""
    return CertGroupKey(proj_attrs, child, key)


def aggregate(
    group_attrs: Sequence[str] | str,
    specs: Sequence[AggSpec],
    child: WSAQuery,
) -> Aggregate:
    """γ^{specs}_U(q): per-world SQL grouping/aggregation."""
    return Aggregate(group_attrs, specs, child)


def semijoin(predicate: Predicate, left: WSAQuery, right: WSAQuery) -> SemiJoin:
    """q₁ ⋉_φ q₂."""
    return SemiJoin(predicate, left, right)


def pad_join(left: WSAQuery, right: WSAQuery) -> PadJoin:
    """q₁ =⊳⊲ q₂ (padded left outer join on shared attributes)."""
    return PadJoin(left, right)


def antijoin(predicate: Predicate, left: WSAQuery, right: WSAQuery) -> AntiJoin:
    """q₁ ▷_φ q₂."""
    return AntiJoin(predicate, left, right)


def poss(child: WSAQuery) -> Poss:
    """poss(q)."""
    return Poss(child)


def cert(child: WSAQuery) -> Cert:
    """cert(q)."""
    return Cert(child)


def repair_by_key(attrs: Sequence[str] | str, child: WSAQuery) -> RepairByKey:
    """``q repair by key U``."""
    return RepairByKey(attrs, child)


def active_domain(attrs: Sequence[str] | str) -> ActiveDomain:
    """D^arity over the named attributes."""
    return ActiveDomain(attrs)


def contains_world_splitter(query: WSAQuery) -> bool:
    """True iff evaluating *query* can mint fresh world ids.

    Choice-of and repair-by-key split worlds; every other operator is
    deterministic per world. Duplicating a split-free subtree across the
    branches of a union (the compiler's union-of-semijoins form of
    ``or`` over condition subqueries) is therefore semantics-preserving,
    while duplicating a splitting subtree would pair *independent*
    splits — each occurrence would mint its own ids — which is why both
    the compiler and the σ∪σ rewrite rule consult this before sharing.
    """
    return any(
        isinstance(node, (ChoiceOf, RepairByKey)) for node in query.walk()
    )


def repairs_of_rows(
    rows: Sequence[tuple],
    key_positions: Sequence[int],
) -> Iterator[frozenset[tuple]]:
    """Enumerate the key-repairs of a set of rows (helper for RepairByKey).

    Each repair keeps exactly one row per distinct key value; repairs
    are produced in a deterministic order.
    """
    groups: dict[tuple, list[tuple]] = {}
    for row in sorted(rows, key=lambda r: tuple(map(str, r))):
        key = tuple(row[p] for p in key_positions)
        groups.setdefault(key, []).append(row)
    pools = list(groups.values())
    for combination in itertools.product(*pools):
        yield frozenset(combination)
