"""Reference semantics of world-set algebra — Figure 3 of the paper.

A query q evaluated on a world-set A over schema ⟨R₁, …, R_k⟩ extends
every world with a new relation R_{k+1} holding q's answer in that
world. The semantics function ⟦·⟧ is implemented operator by operator:

* base relations copy themselves into R_{k+1};
* unary relational operators transform R_{k+1} per world;
* binary operators combine the two operand world-sets on worlds that
  agree on the base relations R₁, …, R_k;
* χ_U splits worlds per distinct U-value (one world with an empty
  answer when the answer is empty — the paper's dummy choice v = 1);
* pγ/cγ group worlds that agree on π_U(R_{k+1}) — note that, following
  Example 3.1, grouping compares only the answer projections, never the
  base relations (see the faithfulness notes in DESIGN.md);
* poss/cert union/intersect the answer across all worlds and write the
  result back into every world;
* repair-by-key enumerates key-consistent maximal sub-relations
  (the Section 4.1 extension).

Because world-sets are *sets*, worlds that become identical collapse;
this is what makes 1↦1 queries end in singleton world-sets.
"""

from __future__ import annotations

import itertools

from repro.errors import EvaluationError
from repro.core.ast import (
    ActiveDomain,
    Aggregate,
    AntiJoin,
    Cert,
    CertGroup,
    CertGroupKey,
    ChoiceOf,
    Difference,
    Divide,
    Intersect,
    NaturalJoin,
    PadJoin,
    Poss,
    PossGroup,
    PossGroupKey,
    Product,
    Project,
    Rel,
    Rename,
    RepairByKey,
    Select,
    SemiJoin,
    ThetaJoin,
    Union,
    WSAQuery,
    _NaturalJoinExpansion,
    repairs_of_rows,
)
from repro.relational.database import Database
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.worlds.world import World
from repro.worlds.worldset import WorldSet


class Evaluator:
    """Evaluates world-set algebra queries by the Figure 3 semantics."""

    def __init__(
        self,
        world_set: WorldSet,
        answer_name: str,
        max_worlds: int | None = None,
    ) -> None:
        self.base = world_set
        self.answer_name = answer_name
        self.max_worlds = max_worlds
        self.env = {name: schema for name, schema in world_set.signature}
        self.base_names = world_set.relation_names

    # -- public entry point --------------------------------------------------

    def evaluate(self, query: WSAQuery) -> WorldSet:
        """⟦query⟧(A): the input world-set extended with the answer."""
        query.attributes(self.env)  # validate the whole tree up front
        return self._eval(query)

    # -- plumbing -----------------------------------------------------------------

    def _signature(self, query: WSAQuery) -> tuple[tuple[str, Schema], ...]:
        answer_schema = Schema(query.attributes(self.env))
        return self.base.signature + ((self.answer_name, answer_schema),)

    def _guard(self, count: int) -> None:
        if self.max_worlds is not None and count > self.max_worlds:
            raise EvaluationError(
                f"evaluation would produce {count} worlds, over the "
                f"limit of {self.max_worlds}"
            )

    def _result(self, query: WSAQuery, worlds) -> WorldSet:
        world_set = WorldSet(worlds, self._signature(query))
        self._guard(len(world_set))
        return world_set

    # -- the semantics function, by case -------------------------------------------

    def _eval(self, query: WSAQuery) -> WorldSet:
        if isinstance(query, Rel):
            return self._eval_rel(query)
        if isinstance(query, ActiveDomain):
            return self._eval_active_domain(query)
        if isinstance(query, Select):
            return self._eval_unary(query, lambda r: r.select(query.predicate))
        if isinstance(query, Project):
            return self._eval_unary(query, lambda r: r.project(query.attrs))
        if isinstance(query, Rename):
            return self._eval_unary(query, lambda r: r.rename(query.mapping))
        if isinstance(query, Product):
            return self._eval_binary(query, lambda a, b: a.product(b))
        if isinstance(query, Union):
            return self._eval_binary(query, lambda a, b: a.union(b))
        if isinstance(query, Intersect):
            return self._eval_binary(query, lambda a, b: a.intersection(b))
        if isinstance(query, Difference):
            return self._eval_binary(query, lambda a, b: a.difference(b))
        if isinstance(query, ThetaJoin):
            return self._eval_binary(
                query, lambda a, b: a.theta_join(b, query.predicate)
            )
        if isinstance(query, (NaturalJoin, _NaturalJoinExpansion)):
            return self._eval_binary(query, lambda a, b: a.natural_join(b))
        if isinstance(query, PadJoin):
            return self._eval_binary(
                query, lambda a, b: a.left_outer_join_padded(b)
            )
        if isinstance(query, Divide):
            return self._eval_binary(query, lambda a, b: a.divide(b))
        if isinstance(query, ChoiceOf):
            return self._eval_choice(query)
        if isinstance(query, Poss):
            return self._eval_closing(query, certain=False)
        if isinstance(query, Cert):
            return self._eval_closing(query, certain=True)
        if isinstance(query, PossGroup):
            return self._eval_group(query, certain=False)
        if isinstance(query, CertGroup):
            return self._eval_group(query, certain=True)
        if isinstance(query, Aggregate):
            return self._eval_unary(
                query, lambda r: r.aggregate_by(query.group_attrs, query.specs)
            )
        if isinstance(query, (SemiJoin, AntiJoin)):
            return self._eval_semijoin(query)
        if isinstance(query, (PossGroupKey, CertGroupKey)):
            return self._eval_group_keyed(
                query, certain=isinstance(query, CertGroupKey)
            )
        if isinstance(query, RepairByKey):
            return self._eval_repair(query)
        raise EvaluationError(f"no semantics for query node {type(query).__name__}")

    def _eval_rel(self, query: Rel) -> WorldSet:
        worlds = (
            world.extend(self.answer_name, world[query.name])
            for world in self.base.worlds
        )
        return self._result(query, worlds)

    def _eval_active_domain(self, query: ActiveDomain) -> WorldSet:
        domain = sorted(self.base.active_domain(), key=str)
        arity = len(query.attrs)
        size = len(domain) ** arity
        if self.max_worlds is not None and size > 1_000_000:
            raise EvaluationError(f"active-domain relation too large ({size} rows)")
        relation = Relation(query.attrs, itertools.product(domain, repeat=arity))
        worlds = (world.extend(self.answer_name, relation) for world in self.base.worlds)
        return self._result(query, worlds)

    def _eval_unary(self, query: WSAQuery, operation) -> WorldSet:
        inner = self._eval(query.children()[0])
        worlds = (
            world.replace_answer(operation(world.answer()))
            for world in inner.worlds
        )
        return self._result(query, worlds)

    def _eval_binary(self, query: WSAQuery, operation) -> WorldSet:
        left_ws = self._eval(query.children()[0])
        right_ws = self._eval(query.children()[1])
        # Figure 3: combine worlds of the two operand world-sets that
        # agree on the base relations R₁, …, R_k.
        right_by_base: dict[World, list[Relation]] = {}
        for world in right_ws.worlds:
            right_by_base.setdefault(world.base(), []).append(world.answer())

        def generate():
            for world in left_ws.worlds:
                base = world.base()
                left_answer = world.answer()
                for right_answer in right_by_base.get(base, ()):  # pragma: no branch
                    yield base.extend(
                        self.answer_name, operation(left_answer, right_answer)
                    )

        return self._result(query, generate())

    def _eval_semijoin(self, query: SemiJoin | AntiJoin) -> WorldSet:
        """⋉_φ / ▷_φ per world pair: membership/existence decorrelated.

        The reference implementation is the literal definition — the
        left rows with(out) a φ-partner: π_L(σ_φ(q₁ × q₂)), resp. the
        left answer minus it — evaluated per pair of worlds agreeing on
        the base relations, like every binary operator of Figure 3.
        """
        anti = isinstance(query, AntiJoin)

        def operation(left: Relation, right: Relation) -> Relation:
            matched = (
                left.theta_join(right, query.predicate)
                .project(left.schema.attributes)
            )
            return left.difference(matched) if anti else matched

        return self._eval_binary(query, operation)

    def _eval_group_keyed(
        self, query: PossGroupKey | CertGroupKey, certain: bool
    ) -> WorldSet:
        """pγ^V_K / cγ^V_K: worlds grouped by the key query's answer.

        Child and key are evaluated like binary operands (worlds paired
        on the base relations); each paired world's group fingerprint is
        the key answer's row set, and π_V of the child answer is
        unioned/intersected within groups — including worlds whose child
        answer is empty, which an attribute-keyed grouping could never
        put in a non-empty group.
        """
        child_ws = self._eval(query.child)
        key_ws = self._eval(query.key)
        key_by_base: dict[World, list[Relation]] = {}
        for world in key_ws.worlds:
            key_by_base.setdefault(world.base(), []).append(world.answer())

        schema = Schema(query.proj_attrs)
        pairs: list[tuple[World, frozenset]] = []
        folded: dict[frozenset, set[tuple]] = {}
        for world in child_ws.worlds:
            base = world.base()
            projected = frozenset(
                world.answer().project(query.proj_attrs)._reordered(
                    schema.attributes
                ).rows
            )
            for key_answer in key_by_base.get(base, ()):  # pragma: no branch
                fingerprint = frozenset(key_answer.rows)
                pairs.append((base, fingerprint))
                if fingerprint not in folded:
                    folded[fingerprint] = set(projected)
                elif certain:
                    folded[fingerprint] &= projected
                else:
                    folded[fingerprint] |= projected

        worlds = (
            base.extend(self.answer_name, Relation(schema, folded[fingerprint]))
            for base, fingerprint in pairs
        )
        return self._result(query, worlds)

    def _eval_choice(self, query: ChoiceOf) -> WorldSet:
        inner = self._eval(query.child)

        def generate():
            for world in inner.worlds:
                answer = world.answer()
                choices = answer.distinct_values(query.attrs)
                if not choices:
                    # Empty answer: Figure 3's dummy choice v = 1 keeps
                    # one world whose answer is (still) empty.
                    yield world
                    continue
                for values in choices:
                    assignment = dict(zip(query.attrs, values))
                    yield world.replace_answer(answer.select_values(assignment))

        return self._result(query, generate())

    def _eval_closing(self, query: WSAQuery, certain: bool) -> WorldSet:
        inner = self._eval(query.children()[0])
        if not inner.worlds:
            return inner
        closed = (
            inner.certain(self.answer_name)
            if certain
            else inner.possible(self.answer_name)
        )
        worlds = (world.replace_answer(closed) for world in inner.worlds)
        return self._result(query, worlds)

    def _eval_group(self, query: PossGroup | CertGroup, certain: bool) -> WorldSet:
        inner = self._eval(query.children()[0])
        group_attrs = query.group_attrs
        proj_attrs = query.proj_attrs

        def group_key(world: World) -> frozenset:
            return frozenset(world.answer().project(group_attrs).rows)

        members: dict[frozenset, list[Relation]] = {}
        for world in inner.worlds:
            members.setdefault(group_key(world), []).append(
                world.answer().project(proj_attrs)
            )

        schema = Schema(proj_attrs)
        grouped: dict[frozenset, Relation] = {}
        for key, relations in members.items():
            rows: set[tuple] | None = None
            for relation in relations:
                aligned = relation._reordered(schema.attributes).rows
                if rows is None:
                    rows = set(aligned)
                elif certain:
                    rows &= aligned
                else:
                    rows |= aligned
            grouped[key] = Relation(schema, rows or ())

        worlds = (
            world.replace_answer(grouped[group_key(world)]) for world in inner.worlds
        )
        return self._result(query, worlds)

    def _eval_repair(self, query: RepairByKey) -> WorldSet:
        inner = self._eval(query.child)

        def generate():
            for world in inner.worlds:
                answer = world.answer()
                positions = answer.schema.indices(query.attrs)
                produced = False
                for rows in repairs_of_rows(list(answer.rows), positions):
                    produced = True
                    yield world.replace_answer(Relation(answer.schema, rows))
                if not produced:
                    yield world  # empty answer: the unique repair is empty

        # Guard before materializing: the number of repairs per world is
        # the product of key-group sizes, which can be astronomically
        # large (Proposition 4.2).
        if self.max_worlds is not None:
            total = 0
            for world in inner.worlds:
                answer = world.answer()
                positions = answer.schema.indices(query.attrs)
                count = 1
                groups: dict[tuple, int] = {}
                for row in answer.rows:
                    key = tuple(row[p] for p in positions)
                    groups[key] = groups.get(key, 0) + 1
                for size in groups.values():
                    count *= size
                    if count > self.max_worlds:
                        break
                total += max(count, 1)
                if total > self.max_worlds:
                    raise EvaluationError(
                        f"repair-by-key would produce over {self.max_worlds} worlds"
                    )
        return self._result(query, generate())


# -- module-level convenience API ---------------------------------------------


def evaluate(
    query: WSAQuery,
    world_set: WorldSet,
    name: str | None = None,
    max_worlds: int | None = None,
    backend: str = "explicit",
) -> WorldSet:
    """⟦query⟧(world_set): extend every world with the answer relation.

    *name* is the name given to the answer relation R_{k+1} (a fresh
    name is generated when omitted). *max_worlds* guards against
    exponential blow-ups from repair-by-key.

    *backend* selects the evaluation strategy: ``"explicit"`` runs the
    Figure 3 reference semantics world by world; ``"inline"`` encodes
    the world-set into an inlined representation, evaluates with the
    Section 5 physical operators over the flat tables, and decodes the
    result — the two are differentially tested to coincide.
    """
    answer_name = name if name is not None else world_set.fresh_name()
    if backend == "inline":
        return _evaluate_inline(query, world_set, answer_name, max_worlds)
    if backend != "explicit":
        raise EvaluationError(
            f"unknown semantics backend {backend!r}; "
            "expected 'explicit' or 'inline'"
        )
    return Evaluator(world_set, answer_name, max_worlds).evaluate(query)


def _evaluate_inline(
    query: WSAQuery,
    world_set: WorldSet,
    name: str,
    max_worlds: int | None,
) -> WorldSet:
    """The inline route: encode → flat evaluation → decode."""
    # Imported lazily: repro.core must not depend on repro.inline at
    # import time (the translation layers build on the core AST).
    from repro.inline.physical import decode_extension, evaluate_seeded
    from repro.inline.representation import InlinedRepresentation

    representation = InlinedRepresentation.of_world_set(world_set)
    state, _ = evaluate_seeded(query, representation, max_worlds=max_worlds)
    return decode_extension(representation, state, name)


def evaluate_on_database(
    query: WSAQuery,
    database: Database | World,
    name: str | None = None,
    max_worlds: int | None = None,
) -> WorldSet:
    """Evaluate on a complete database (a singleton world-set)."""
    world = database if isinstance(database, World) else World(dict(database.items()))
    return evaluate(query, WorldSet.single(world), name=name, max_worlds=max_worlds)


def answers(
    query: WSAQuery, world_set: WorldSet, max_worlds: int | None = None
) -> frozenset[Relation]:
    """The distinct answer relations of *query* across all worlds."""
    name = world_set.fresh_name()
    result = evaluate(query, world_set, name=name, max_worlds=max_worlds)
    return frozenset(result.instances(name))


def answer(
    query: WSAQuery, world_set: WorldSet, max_worlds: int | None = None
) -> Relation:
    """The unique answer of a query that closes the worlds (poss/cert).

    Raises :class:`EvaluationError` if the answer differs across worlds
    (i.e. the query is not of type ·↦1 on this input).
    """
    distinct = answers(query, world_set, max_worlds=max_worlds)
    if len(distinct) != 1:
        raise EvaluationError(
            f"query has {len(distinct)} distinct answers across worlds; "
            "expected exactly one (use answers() for open queries)"
        )
    return next(iter(distinct))
