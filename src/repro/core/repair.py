"""Key repairs of a relation (the ``repair by key`` construct).

Given a relation R and a set of key attributes U, a *repair* is a
maximal sub-relation of R in which U is a key — equivalently, a choice
of exactly one tuple for every distinct U-value occurring in R
(Sections 2 and 3: "each choice of a distinct tuple for each
combination of values is a possible repair of the database").

The number of repairs is the product of the sizes of the key groups and
grows exponentially; :func:`count_repairs` computes the count without
enumeration, which the NP-hardness benchmark uses.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.core.ast import repairs_of_rows
from repro.relational.relation import Relation


def key_groups(relation: Relation, key: Sequence[str]) -> dict[tuple, list[tuple]]:
    """Partition the relation's rows by their key value."""
    positions = relation.schema.indices(key)
    groups: dict[tuple, list[tuple]] = {}
    for row in sorted(relation.rows, key=lambda r: tuple(map(str, r))):
        groups.setdefault(tuple(row[p] for p in positions), []).append(row)
    return groups


def factored_repair_groups(
    rows: Sequence[tuple], key_positions: Sequence[int]
) -> tuple[list[tuple], list[list[tuple]]]:
    """Partition *rows* for the factored (sum-size) repair encoding.

    Returns ``(base_rows, violating_groups)``: rows whose key value is
    unique belong to every repair and need no choice column, while each
    key group with two or more candidates becomes one independent choice
    factor. Rows are ordered like :func:`repro.core.ast.repairs_of_rows`
    (string-sorted), so the index a candidate gets inside its group is
    deterministic and matches the explicit enumeration order.
    """
    groups: dict[tuple, list[tuple]] = {}
    for row in sorted(rows, key=lambda r: tuple(map(str, r))):
        groups.setdefault(tuple(row[p] for p in key_positions), []).append(row)
    base: list[tuple] = []
    violating: list[list[tuple]] = []
    for candidates in groups.values():
        if len(candidates) == 1:
            base.append(candidates[0])
        else:
            violating.append(candidates)
    return base, violating


def count_repairs(relation: Relation, key: Sequence[str]) -> int:
    """The number of repairs (product of key-group sizes; 1 if empty)."""
    count = 1
    for rows in key_groups(relation, key).values():
        count *= len(rows)
    return count


def key_repairs(relation: Relation, key: Sequence[str]) -> Iterator[Relation]:
    """Enumerate all repairs of *relation* under key *key*.

    An empty relation has exactly one repair: itself.
    """
    positions = relation.schema.indices(key)
    produced = False
    for rows in repairs_of_rows(list(relation.rows), positions):
        produced = True
        yield Relation(relation.schema, rows)
    if not produced:
        yield relation


def is_repair(candidate: Relation, original: Relation, key: Sequence[str]) -> bool:
    """Check the repair invariants (used by the property-based tests).

    A candidate is a repair iff it is contained in the original, its key
    values are unique, and it covers every key value of the original.
    """
    if candidate.schema.attributes != original.schema.attributes:
        return False
    if not candidate.rows <= original.rows:
        return False
    positions = original.schema.indices(key)
    candidate_keys = [tuple(r[p] for p in positions) for r in candidate.rows]
    original_keys = {tuple(r[p] for p in positions) for r in original.rows}
    return (
        len(candidate_keys) == len(set(candidate_keys))
        and set(candidate_keys) == original_keys
    )
