"""A DBAPI-2-style facade over pooled, snapshot-isolated I-SQL sessions.

:func:`connect` takes a datagen :class:`~repro.datagen.workloads.Scenario`
(or its registered name), a live :class:`~repro.isql.session.ISQLSession`,
or a :class:`~repro.service.snapshots.SnapshotStore`, and returns a
:class:`Connection` in the shape client code expects from any Python
database driver::

    import repro.service as service

    conn = service.connect("trip_certain")
    cur = conn.cursor()
    cur.execute("select certain Arr from HFlights choice of Dep;")
    cur.fetchall()                      # [('A0',)]
    conn.close()

Multiple connections over one :class:`SnapshotStore` see a single
shared state: writes serialize through the store's writer lock and
publish atomically on :meth:`Connection.commit`, while reads run
lock-free on copy-on-write snapshots (see
:mod:`repro.service.snapshots`). The transaction mapping onto the PR 7
session layer:

* a connection's first write statement acquires the store's writer lock
  (pessimistic two-phase locking; ``lock_timeout`` bounds the wait) and
  re-syncs the private session to the latest published state;
* further statements run on the private session — other connections
  keep reading the last published snapshot, isolated from the open
  transaction;
* :meth:`Connection.commit` publishes the private state as the next
  version and releases the lock; :meth:`Connection.rollback` restores
  the latest published state and releases the lock. With
  ``autocommit=True`` every execute that writes runs as one atomic
  script (``run_script(..., atomic=True)``) and publishes immediately.

Fetching is defined for **world-uniform** answers (the closed results
of ``certain``/``possible`` queries, or open queries whose answer
happens to agree in every world): rows come back as plain tuples in
deterministic order. An answer that *differs* across worlds has no
single-relation reading, so fetching raises :exc:`ProgrammingError`;
the full possible-worlds result object stays available as
``cursor.result`` (use ``.answers()``, ``.possible()``, ``.certain()``).

Module constants per PEP 249: ``apilevel = "2.0"``,
``threadsafety = 1`` (share the module — and a
:class:`~repro.service.pool.SessionPool` — across threads, but give
each thread its own connection; pooled connections additionally pin
their session to the acquiring thread), ``paramstyle = "qmark"``
(literal substitution at the text layer; the I-SQL lexer has no quote
escapes, so string parameters must not contain ``'``).

The exception hierarchy is PEP 249's, rooted so that
``Error`` **is a** :class:`~repro.errors.ReproError`: the library-wide
"only ``ReproError`` escapes" hygiene survives the facade, and one
``except ReproError`` still catches everything.
"""

from __future__ import annotations

from repro import errors as _errors
from repro.datagen.workloads import Scenario, scenarios
from repro.isql import ast
from repro.isql.parser import parse_script
from repro.cache import CacheInfo
from repro.isql.session import ISQLSession, StatementResult
from repro.service.snapshots import SnapshotStore

apilevel = "2.0"
threadsafety = 1
paramstyle = "qmark"


# -- PEP 249 exceptions ----------------------------------------------------------------


class Warning(Exception):  # noqa: A001 - PEP 249 mandates the name
    """PEP 249 Warning (never raised by this driver; present for shape)."""


class Error(_errors.ReproError):
    """Root of the DBAPI exception tree — and a ReproError."""


class InterfaceError(Error):
    """Misuse of the driver itself: closed connections/cursors, bad params."""


class DatabaseError(Error):
    """Any error coming out of the underlying engine."""


class DataError(DatabaseError):
    """A problem with the processed data (bad literal, bad value)."""


class OperationalError(DatabaseError):
    """Trouble during operation: lock/pool timeouts, resource budgets."""


class IntegrityError(DatabaseError):
    """A constraint violation (unused: the Section 3 DML rule *discards*)."""


class InternalError(DatabaseError):
    """The engine hit an internal inconsistency."""


class ProgrammingError(DatabaseError):
    """Bad SQL, unknown relations, or statements misused."""


class NotSupportedError(DatabaseError):
    """A feature outside the I-SQL fragment or this facade."""


#: ReproError → DBAPI error, most specific match first.
_ERROR_MAP: tuple[tuple[type, type], ...] = (
    (_errors.ParseError, ProgrammingError),
    (_errors.SchemaError, ProgrammingError),
    (_errors.TypingError, ProgrammingError),
    (_errors.OwnershipError, ProgrammingError),
    (_errors.ResourceLimitError, OperationalError),
    (_errors.WorldLimitError, OperationalError),
    (_errors.TranslationError, NotSupportedError),
    (_errors.RewriteError, InternalError),
    (_errors.RepresentationError, InternalError),
    (_errors.EvaluationError, OperationalError),
    (_errors.ReproError, DatabaseError),
)


def _mapped(error: _errors.ReproError) -> Error:
    """The DBAPI-shaped twin of a library error (original as __cause__)."""
    if isinstance(error, Error):
        return error
    for source, target in _ERROR_MAP:
        if isinstance(error, source):
            wrapped = target(str(error))
            wrapped.__cause__ = error
            return wrapped
    raise AssertionError("unreachable: _ERROR_MAP ends at ReproError")


# -- parameter substitution ------------------------------------------------------------


def _render_literal(value: object) -> str:
    if isinstance(value, bool):
        raise NotSupportedError("I-SQL has no boolean literals")
    if isinstance(value, (int, float)):
        return repr(value)
    if isinstance(value, str):
        if "'" in value:
            raise DataError(
                "string parameter contains a quote; the I-SQL lexer "
                "has no quote escapes"
            )
        return f"'{value}'"
    if value is None:
        raise NotSupportedError("I-SQL has no NULL")
    raise InterfaceError(
        f"unsupported parameter type {type(value).__name__}"
    )


def _substitute(operation: str, parameters) -> str:
    """Replace ``?`` placeholders (outside string literals) by literals."""
    if parameters is None:
        parameters = ()
    if isinstance(parameters, (str, bytes)):
        raise InterfaceError("parameters must be a sequence, not a string")
    values = list(parameters)
    out: list[str] = []
    index = 0
    used = 0
    length = len(operation)
    while index < length:
        ch = operation[index]
        if ch == "'":
            end = operation.find("'", index + 1)
            if end < 0:
                out.append(operation[index:])
                break
            out.append(operation[index : end + 1])
            index = end + 1
            continue
        if ch == "?":
            if used >= len(values):
                raise InterfaceError(
                    f"statement expects more than {len(values)} parameters"
                )
            out.append(_render_literal(values[used]))
            used += 1
            index += 1
            continue
        out.append(ch)
        index += 1
    if used != len(values):
        raise InterfaceError(
            f"statement has {used} placeholders but {len(values)} "
            "parameters were given"
        )
    return "".join(out)


# -- cursors ---------------------------------------------------------------------------


class Cursor:
    """A PEP 249 cursor over one connection.

    ``execute`` accepts whole ``;``-separated scripts (they run through
    the session's DML batch pipeline); ``description``/fetching reflect
    the script's **last** statement. Extensions beyond PEP 249, all
    read off the last statement's
    :class:`~repro.isql.session.StatementResult`: ``result`` (the last
    select's possible-worlds result object), ``applied`` (the last DML
    statement's applied/discarded flag), ``route`` (execution route),
    ``cache`` (``"hit"``/``"miss"``/``"bypass"``), and ``phases``
    (per-phase wall-clock seconds).
    """

    def __init__(self, connection: "Connection") -> None:
        self._connection = connection
        self._closed = False
        self.arraysize = 1
        self._reset()

    def _reset(self) -> None:
        self.description: tuple | None = None
        self.rowcount = -1
        self.result = None
        self.applied: bool | None = None
        self.route: str | None = None
        self.cache: str | None = None
        self.phases: dict[str, float] = {}
        self._rows: list[tuple] | None = None
        self._fetch_error: str | None = None
        self._cursor_index = 0

    def _check_open(self) -> "Connection":
        if self._closed:
            raise InterfaceError("cursor is closed")
        return self._connection._check_open()

    @property
    def connection(self) -> "Connection":
        return self._connection

    # -- execution ---------------------------------------------------------------

    def execute(self, operation: str, parameters=None) -> "Cursor":
        connection = self._check_open()
        self._reset()
        text = _substitute(operation, parameters)
        results = connection._execute_script(text)
        self._bind(results[-1] if results else None)
        return self

    def executemany(self, operation: str, seq_of_parameters) -> "Cursor":
        for parameters in seq_of_parameters:
            self.execute(operation, parameters)
        return self

    def _bind(self, last: StatementResult | None) -> None:
        if last is None:  # empty script
            return
        self.route = last.route
        self.cache = last.cache
        self.phases = dict(last.phases)
        if last.applied is not None:  # DML
            self.applied = last.applied
            return
        if last.answer is None:  # assignment / create view
            return
        self.result = last.answer
        answers = self.result.answers()
        if len(answers) != 1:
            self._fetch_error = (
                f"the answer differs across worlds ({len(answers)} "
                "variants); fetch is defined for world-uniform answers — "
                "use cursor.result.answers() / .possible() / .certain()"
            )
            return
        relation = next(iter(answers))
        self.description = tuple(
            (name, None, None, None, None, None, None)
            for name in relation.schema.attributes
        )
        self._rows = [tuple(row) for row in relation.sorted_rows()]
        self.rowcount = len(self._rows)

    # -- fetching ----------------------------------------------------------------

    def _fetchable(self) -> list[tuple]:
        self._check_open()
        if self._rows is None:
            raise ProgrammingError(
                self._fetch_error or "no rows to fetch: execute a select first"
            )
        return self._rows

    def fetchone(self):
        rows = self._fetchable()
        if self._cursor_index >= len(rows):
            return None
        row = rows[self._cursor_index]
        self._cursor_index += 1
        return row

    def fetchmany(self, size: int | None = None) -> list[tuple]:
        rows = self._fetchable()
        count = self.arraysize if size is None else size
        taken = rows[self._cursor_index : self._cursor_index + count]
        self._cursor_index += len(taken)
        return taken

    def fetchall(self) -> list[tuple]:
        rows = self._fetchable()
        taken = rows[self._cursor_index :]
        self._cursor_index = len(rows)
        return taken

    def __iter__(self):
        while True:
            row = self.fetchone()
            if row is None:
                return
            yield row

    # -- shape-only PEP 249 surface ----------------------------------------------

    def setinputsizes(self, sizes) -> None:
        pass

    def setoutputsize(self, size, column=None) -> None:
        pass

    def close(self) -> None:
        self._closed = True
        self._reset()

    def __enter__(self) -> "Cursor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


# -- connections -----------------------------------------------------------------------


class Connection:
    """One client's session over a shared :class:`SnapshotStore`.

    Reads are **read-committed** by default: each statement outside a
    write transaction re-syncs the private session to the latest
    published snapshot (an O(#tables) restore, skipped when already
    current). :meth:`pin_snapshot` upgrades to snapshot isolation —
    every subsequent read sees the pinned version until
    :meth:`unpin_snapshot`. Writes take the store-wide writer lock at
    the first writing statement and hold it to commit/rollback.
    """

    def __init__(
        self,
        store: SnapshotStore,
        autocommit: bool = False,
        max_rows: int | None = None,
        max_seconds: float | None = None,
        lock_timeout: float | None = None,
        cache: bool = True,
    ) -> None:
        self._store = store
        self._session, self._version = store.spawn_session()
        self._session.max_rows = max_rows
        self._session.max_seconds = max_seconds
        self._session.cache = cache
        self.autocommit = autocommit
        self.lock_timeout = lock_timeout
        self._writing = False
        self._pinned = False
        self._closed = False

    # -- introspection -----------------------------------------------------------

    @property
    def store(self) -> SnapshotStore:
        """The shared snapshot store this connection publishes to."""
        return self._store

    @property
    def session(self) -> ISQLSession:
        """The private session (escape hatch to the full I-SQL surface)."""
        return self._session

    @property
    def in_transaction(self) -> bool:
        """True while this connection holds the writer lock."""
        return self._writing

    @property
    def version(self) -> int:
        """Version of the published snapshot this connection last saw."""
        return self._version

    def _check_open(self) -> "Connection":
        if self._closed:
            raise InterfaceError("connection is closed")
        return self

    # -- statement execution -------------------------------------------------------

    def cursor(self) -> Cursor:
        self._check_open()
        return Cursor(self)

    def execute(self, operation: str, parameters=None) -> Cursor:
        """Shortcut: a fresh cursor with *operation* executed on it."""
        return self.cursor().execute(operation, parameters)

    def _sync(self) -> None:
        """Bring the private session to the latest published snapshot."""
        snapshot = self._store.latest()
        if snapshot.version != self._version:
            try:
                self._session.restore_snapshot(snapshot.state)
            except _errors.ReproError as error:
                raise _mapped(error) from error
            self._version = snapshot.version

    def _begin_write(self) -> None:
        if self._pinned:
            raise ProgrammingError(
                "cannot write while pinned to a snapshot; unpin_snapshot() first"
            )
        if self._writing:
            return
        if not self._store.acquire_write(self.lock_timeout):
            raise OperationalError(
                f"could not acquire the writer lock within {self.lock_timeout}s"
            )
        self._writing = True
        # The lock is held: latest() is now stable, so the transaction
        # starts from the newest committed state (no lost updates).
        self._sync()

    def _execute_script(self, text: str):
        self._check_open()
        try:
            statements = parse_script(text)
        except _errors.ReproError as error:
            raise _mapped(error) from error
        writes = any(
            not isinstance(statement, ast.SelectQuery) for statement in statements
        )
        if writes:
            self._begin_write()
        elif not self._writing and not self._pinned:
            self._sync()
        autocommit = writes and self.autocommit
        try:
            results = self._session.run(text, atomic=autocommit)
        except _errors.ReproError as error:
            if autocommit:
                # atomic=True already rolled the session back to the
                # transaction start == the latest published snapshot.
                self._writing = False
                self._store.release_write()
            raise _mapped(error) from error
        if autocommit:
            self.commit()
        return results

    # -- transactions --------------------------------------------------------------

    def commit(self) -> None:
        """Publish this connection's state as the next shared version.

        A no-op when no write transaction is open (PEP 249 allows
        commit at any time).
        """
        self._check_open()
        if not self._writing:
            return
        try:
            state = self._session.export_snapshot()
        except _errors.ReproError as error:
            raise _mapped(error) from error
        self._version = self._store.publish(state).version
        self._writing = False
        self._store.release_write()

    def rollback(self) -> None:
        """Discard the open write transaction, back to the latest version."""
        self._check_open()
        if not self._writing:
            return
        snapshot = self._store.latest()
        self._session.restore_snapshot(snapshot.state)
        self._version = snapshot.version
        self._writing = False
        self._store.release_write()

    def cache_info(self) -> CacheInfo:
        """Statement-cache counters of this connection's session.

        Connections spawned from one :class:`SnapshotStore` share a
        single pool-wide cache, so the numbers aggregate over every
        sibling connection.
        """
        self._check_open()
        return self._session.cache_info()

    # -- snapshot isolation --------------------------------------------------------

    def pin_snapshot(self) -> int:
        """Freeze reads at the latest published version; returns it.

        Until :meth:`unpin_snapshot`, selects on this connection keep
        seeing the pinned state however many commits other connections
        publish — snapshot isolation on top of the default
        read-committed. Write statements are rejected while pinned.
        """
        self._check_open()
        if self._writing:
            raise ProgrammingError("cannot pin inside a write transaction")
        self._sync()
        self._pinned = True
        return self._version

    def unpin_snapshot(self) -> None:
        """Resume read-committed syncing (the next read re-syncs)."""
        self._check_open()
        self._pinned = False

    # -- lifecycle -----------------------------------------------------------------

    def close(self) -> None:
        """Roll back any open transaction and release the session.

        Idempotent; any later use of the connection (or its cursors)
        raises :exc:`InterfaceError`.
        """
        if self._closed:
            return
        if self._writing:
            self.rollback()
        self._closed = True
        self._session.close()

    def __enter__(self) -> "Connection":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # sqlite3-style: the context manager frames a transaction, not
        # the connection lifetime — commit on success, roll back on error.
        if not self._closed:
            if exc_type is None:
                self.commit()
            else:
                self.rollback()


# -- connect ---------------------------------------------------------------------------


def _seed_session(
    source: "str | Scenario | ISQLSession | SnapshotStore",
    backend: str,
    max_worlds: int | None,
) -> ISQLSession:
    if isinstance(source, str):
        by_name = {scenario.name: scenario for scenario in scenarios()}
        if source not in by_name:
            known = ", ".join(sorted(by_name))
            raise ProgrammingError(
                f"unknown scenario {source!r}; registered scenarios: {known}"
            )
        source = by_name[source]
    if isinstance(source, Scenario):
        session = ISQLSession(max_worlds=max_worlds, backend=backend)
        for name, relation in source.relations:
            session.register(name, relation)
        for relation, attributes in source.keys:
            session.declare_key(relation, attributes)
        if source.script:
            session.run_script(source.script)
        return session
    if isinstance(source, ISQLSession):
        return source
    raise InterfaceError(
        f"connect() takes a scenario name, a Scenario, an ISQLSession, or a "
        f"SnapshotStore, not {type(source).__name__}"
    )


def connect(
    source: "str | Scenario | ISQLSession | SnapshotStore",
    backend: str = "inline",
    autocommit: bool = False,
    max_worlds: int | None = None,
    max_rows: int | None = None,
    max_seconds: float | None = None,
    lock_timeout: float | None = None,
    cache: bool = True,
) -> Connection:
    """Open a :class:`Connection` over *source*.

    *source* is a registered scenario name or
    :class:`~repro.datagen.workloads.Scenario` (replayed on a fresh
    *backend* session), a live :class:`ISQLSession` (its current state
    becomes version 0), or an existing :class:`SnapshotStore` — connect
    to the same store from several threads to share one evolving state.
    *backend*/*max_worlds* only apply when a session is built here;
    *max_rows*/*max_seconds* arm the per-statement resource budget of
    this connection, and *lock_timeout* bounds how long a write
    statement waits for the store's writer lock before raising
    :exc:`OperationalError`. ``cache=False`` bypasses the statement
    cache for every statement on this connection (the differential
    testing escape hatch; see :meth:`Connection.cache_info`).
    """
    try:
        if isinstance(source, SnapshotStore):
            store = source
        else:
            store = SnapshotStore(_seed_session(source, backend, max_worlds))
    except _errors.ReproError as error:
        raise _mapped(error) from error
    return Connection(
        store,
        autocommit=autocommit,
        max_rows=max_rows,
        max_seconds=max_seconds,
        lock_timeout=lock_timeout,
        cache=cache,
    )


__all__ = [
    "Connection",
    "Cursor",
    "DataError",
    "DatabaseError",
    "Error",
    "IntegrityError",
    "InterfaceError",
    "InternalError",
    "NotSupportedError",
    "OperationalError",
    "ProgrammingError",
    "Warning",
    "apilevel",
    "connect",
    "paramstyle",
    "threadsafety",
]
