"""Copy-on-write snapshot publication for concurrent sessions.

The whole service layer rests on one invariant the engine has had since
PR 5: session state objects — world-sets, inlined representations, and
every table inside them — are **immutable**, and statements commit by
swapping references. A full-session snapshot
(:meth:`~repro.isql.session.ISQLSession.export_snapshot`) is therefore
O(#tables) reference captures, and two sessions restored to the same
snapshot *share* every underlying table object while diverging freely
from their next statement — copy-on-write for free.

:class:`SnapshotStore` turns that invariant into a concurrency
protocol:

* The store holds the **latest published** :class:`Snapshot` — a
  ``(version, state)`` pair — in a single attribute. Publication is one
  attribute assignment, atomic under the GIL, so readers loading
  ``latest()`` always see a complete, committed state and **never take
  a lock**.
* Writers serialize through the store's **writer lock**
  (:meth:`acquire_write` / :meth:`release_write`): at most one
  connection runs a write transaction at a time, and it publishes its
  forked session's state as the next version on commit. Because the
  lock is held from the first write statement to commit/rollback, the
  published history is a linear sequence of versions — exactly the
  serialized reference the differential suite replays.
* N concurrent readers each run on their own forked session
  (:meth:`spawn_session`) restored to some published snapshot; a DML
  batch running concurrently mutates only the writer's private session
  and becomes visible to readers atomically at publication. Readers
  re-syncing to ``latest()`` get read-committed; readers that pin their
  snapshot get full snapshot isolation.

This module is deliberately free of DBAPI vocabulary — lock timeouts
surface as boolean returns, not exceptions — so the pool and the DBAPI
facade layer policy on top without an import cycle.
"""

from __future__ import annotations

import threading

from repro.errors import EvaluationError
from repro.isql.session import ISQLSession


class Snapshot:
    """One published version of the shared state: ``(version, state)``.

    *state* is the opaque :meth:`ISQLSession.export_snapshot` token —
    immutable, sharable across sessions, O(#tables). Snapshots compare
    by identity; *version* increases by one per publication.
    """

    __slots__ = ("version", "state")

    def __init__(self, version: int, state: object) -> None:
        self.version = version
        self.state = state

    def __repr__(self) -> str:
        return f"Snapshot(version={self.version})"


class SnapshotStore:
    """The shared side of a service endpoint: latest state + writer lock.

    Built from a seed :class:`ISQLSession` whose current state becomes
    version 0. The seed becomes the store's *template*: it is never
    executed on again, only :meth:`~repro.isql.session.ISQLSession.fork`-ed
    to mint per-connection sessions (same backend kind/kernel/strategy,
    same ``max_worlds``, private mutable references).
    """

    def __init__(self, session: ISQLSession) -> None:
        self._template = session
        self._write_lock = threading.Lock()
        self._writer: int | None = None
        #: The latest published snapshot. Reassigned atomically under
        #: the GIL by :meth:`publish`; read lock-free by everyone else.
        self._current = Snapshot(0, session.export_snapshot())

    # -- readers (lock-free) ---------------------------------------------------------

    @property
    def version(self) -> int:
        """Version number of the latest published snapshot."""
        return self._current.version

    def latest(self) -> Snapshot:
        """The latest published snapshot; never blocks."""
        return self._current

    def cache_info(self):
        """Counters of the statement cache shared by this store's sessions."""
        return self._template.cache_info()

    def spawn_session(self) -> tuple[ISQLSession, int]:
        """A fresh private session at the latest snapshot.

        Returns ``(session, version)``. The session shares all current
        table objects with every other session of this store
        (copy-on-write) but owns its mutable references outright. It
        also shares the template's **statement cache** (forked backends
        pass the cache by reference), and the per-table version
        counters the cache keys on ride *inside* the published state
        tokens — restoring any snapshot restores its versions, so a
        spawned session can never be served a result memoized against
        a different published version of a table.
        """
        session = self._template.fork()
        snapshot = self._current
        session.restore_snapshot(snapshot.state)
        return session, snapshot.version

    # -- the single writer -----------------------------------------------------------

    def acquire_write(self, timeout: float | None = None) -> bool:
        """Become the writer; False if *timeout* elapses first.

        ``None`` blocks indefinitely. The caller must pair a ``True``
        return with :meth:`release_write` (after an optional
        :meth:`publish`).
        """
        acquired = self._write_lock.acquire(
            timeout=-1 if timeout is None else timeout
        )
        if acquired:
            self._writer = threading.get_ident()
        return acquired

    def release_write(self) -> None:
        """Release the writer lock taken by :meth:`acquire_write`."""
        self._writer = None
        self._write_lock.release()

    def publish(self, state: object) -> Snapshot:
        """Publish *state* as the next version; writer-lock holders only.

        One attribute assignment — readers see either the old or the
        new snapshot in full, never a mix.
        """
        if self._writer != threading.get_ident():
            raise EvaluationError(
                "publish() requires the writer lock; call acquire_write() first"
            )
        snapshot = Snapshot(self._current.version + 1, state)
        self._current = snapshot
        return snapshot

    def __repr__(self) -> str:
        return f"SnapshotStore(version={self._current.version})"


__all__ = ["Snapshot", "SnapshotStore"]
