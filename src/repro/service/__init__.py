"""The multi-session service surface: connections, cursors, a pool.

Everything before this package is a single-session library; this
package is the part that faces concurrent clients:

* :mod:`repro.service.dbapi` — the PEP 249 facade:
  :func:`connect` → :class:`Connection` → :class:`Cursor`, commit/
  rollback mapped onto the PR 7 transaction layer, the standard
  exception tree (rooted inside :class:`~repro.errors.ReproError`);
* :mod:`repro.service.pool` — :class:`SessionPool`, the bounded,
  thread-safe checkout/checkin object threads actually share;
* :mod:`repro.service.snapshots` — :class:`SnapshotStore`, the
  copy-on-write snapshot publication protocol (lock-free readers, one
  writer) that both of the above stand on.

The concurrency contract in one line: **share the pool, not a
connection** — readers never block, writers serialize, and N threads
replaying interleaved scripts through the pool observe exactly the
states some serialized execution of those scripts produces (enforced
by ``tests/service/test_concurrency_differential.py``).
"""

from repro.service.dbapi import (
    Connection,
    Cursor,
    DataError,
    DatabaseError,
    Error,
    IntegrityError,
    InterfaceError,
    InternalError,
    NotSupportedError,
    OperationalError,
    ProgrammingError,
    Warning,
    apilevel,
    connect,
    paramstyle,
    threadsafety,
)
from repro.service.pool import SessionPool
from repro.service.snapshots import Snapshot, SnapshotStore

__all__ = [
    "Connection",
    "Cursor",
    "DataError",
    "DatabaseError",
    "Error",
    "IntegrityError",
    "InterfaceError",
    "InternalError",
    "NotSupportedError",
    "OperationalError",
    "ProgrammingError",
    "SessionPool",
    "Snapshot",
    "SnapshotStore",
    "Warning",
    "apilevel",
    "connect",
    "paramstyle",
    "threadsafety",
]
