"""A bounded pool of connections over one shared snapshot store.

:class:`SessionPool` is the thread-safe object of the service layer:
threads share the *pool* (never a connection) and check connections out
and back in around each unit of work::

    pool = SessionPool("census_repair", size=4)
    with pool.connection() as conn:
        rows = conn.execute("select certain SSN, Name from Clean;").fetchall()

Checked-out connections are **pinned to the acquiring thread**
(:meth:`~repro.isql.session.ISQLSession.pin_thread`): using one from
any other thread raises, instead of racing on the session's mutable
references. All connections share the pool's
:class:`~repro.service.snapshots.SnapshotStore`, so a commit on one is
visible to the next statement on every other (read-committed), writes
serialize through the store's writer lock, and a reader holding a
pinned snapshot is isolated from concurrent DML batches entirely.

Sizing: at most *size* connections exist at a time; ``acquire`` blocks
up to *timeout* seconds for a free slot and then raises
:exc:`~repro.service.dbapi.OperationalError`. Connections are created
lazily (forking the store template is O(#tables), but not free) and
reused; at most *max_idle* stay parked between checkouts — beyond
that, released connections are closed, so an occasional burst does not
pin burst-many sessions' caches forever. ``release`` rolls back any
transaction left open, unpins, and re-parks the connection.
"""

from __future__ import annotations

import threading
from collections import deque
from contextlib import contextmanager
from typing import Iterator

from repro.service import dbapi
from repro.service.snapshots import SnapshotStore


class SessionPool:
    """A bounded, thread-safe pool of :class:`~repro.service.dbapi.Connection`.

    *source* is anything :func:`repro.service.dbapi.connect` accepts
    (scenario name, Scenario, session, or an existing store). The
    remaining keywords configure every pooled connection:
    *autocommit*, the *max_rows*/*max_seconds* resource-budget
    passthrough, *lock_timeout* for the writer lock, and *cache* — the
    statement-cache gate. Pooled connections share one pool-wide
    statement cache (their sessions fork from the store template, and
    forked backends share the template's cache by reference), so a
    statement compiled on one connection is a plan-cache hit on every
    other. Retiring a connection (release beyond *max_idle*, pool
    close) closes it, which detaches its session from the shared cache
    — a retired session cannot pin memoized relations.
    """

    def __init__(
        self,
        source,
        size: int = 4,
        max_idle: int | None = None,
        backend: str = "inline",
        autocommit: bool = False,
        max_worlds: int | None = None,
        max_rows: int | None = None,
        max_seconds: float | None = None,
        lock_timeout: float | None = None,
        cache: bool = True,
    ) -> None:
        if size < 1:
            raise dbapi.InterfaceError(f"pool size must be >= 1, got {size}")
        if isinstance(source, SnapshotStore):
            self.store = source
        else:
            # Build the seed through connect() so scenario replay and
            # error mapping live in exactly one place; the probe
            # connection itself is handed straight to the idle list.
            probe = dbapi.connect(source, backend=backend, max_worlds=max_worlds)
            self.store = probe.store
            probe.close()
        self.size = size
        self.max_idle = size if max_idle is None else max_idle
        self._connection_kwargs = dict(
            autocommit=autocommit,
            max_rows=max_rows,
            max_seconds=max_seconds,
            lock_timeout=lock_timeout,
            cache=cache,
        )
        self._lock = threading.Condition()
        self._idle: deque[dbapi.Connection] = deque()
        self._checked_out: set[int] = set()
        self._created = 0
        self._closed = False

    # -- checkout ------------------------------------------------------------------

    def acquire(self, timeout: float | None = None) -> dbapi.Connection:
        """Check a connection out, pinned to the calling thread.

        Blocks up to *timeout* seconds when all *size* connections are
        checked out; ``None`` waits indefinitely. Raises
        :exc:`~repro.service.dbapi.OperationalError` on timeout and
        :exc:`~repro.service.dbapi.InterfaceError` on a closed pool.
        """
        with self._lock:
            while True:
                if self._closed:
                    raise dbapi.InterfaceError("pool is closed")
                if self._idle:
                    connection = self._idle.popleft()
                    break
                if self._created < self.size:
                    self._created += 1
                    connection = None  # create outside the lock
                    break
                if not self._lock.wait(timeout):
                    raise dbapi.OperationalError(
                        f"pool exhausted: all {self.size} connections are "
                        f"checked out (waited {timeout}s)"
                    )
        if connection is None:
            try:
                connection = dbapi.Connection(
                    self.store, **self._connection_kwargs
                )
            except BaseException:
                with self._lock:
                    self._created -= 1
                    self._lock.notify()
                raise
        self._checked_out.add(id(connection))
        connection.session.pin_thread()
        return connection

    def release(self, connection: dbapi.Connection) -> None:
        """Check *connection* back in.

        Any transaction left open is rolled back (the writer lock must
        not ride into the idle list), the thread pin is lifted, and the
        connection is parked for reuse — or closed, when the pool is
        closed, the connection is closed/broken, or *max_idle*
        connections are already parked. Releasing a connection that is
        not checked out of this pool (double release included) raises
        :exc:`~repro.service.dbapi.InterfaceError`.
        """
        with self._lock:
            try:
                self._checked_out.remove(id(connection))
            except KeyError:
                raise dbapi.InterfaceError(
                    "connection is not checked out of this pool "
                    "(double release?)"
                ) from None
        connection.session.unpin_thread()
        retire = self._closed or connection._closed
        if not retire:
            if connection.in_transaction:
                connection.rollback()
            connection.unpin_snapshot()
        with self._lock:
            if retire or len(self._idle) >= self.max_idle:
                self._created -= 1
                if not connection._closed:
                    connection.close()
            else:
                self._idle.append(connection)
            self._lock.notify()

    @contextmanager
    def connection(
        self, timeout: float | None = None
    ) -> Iterator[dbapi.Connection]:
        """``acquire``/``release`` as a context manager.

        Commits on clean exit and rolls back on error, mirroring the
        connection's own context-manager contract — a pooled unit of
        work is a transaction unless it says otherwise.
        """
        connection = self.acquire(timeout)
        try:
            yield connection
            connection.commit()
        except BaseException:
            if connection.in_transaction:
                connection.rollback()
            raise
        finally:
            self.release(connection)

    # -- lifecycle -----------------------------------------------------------------

    def cache_info(self):
        """Counters of the pool-wide statement cache (see module docs)."""
        return self.store.cache_info()

    @property
    def checked_out(self) -> int:
        """How many connections are currently checked out."""
        with self._lock:
            return len(self._checked_out)

    @property
    def idle(self) -> int:
        """How many connections are parked ready for reuse."""
        with self._lock:
            return len(self._idle)

    def close(self) -> None:
        """Close the pool: idle connections close now, outstanding ones
        on release. Acquire raises from here on; idempotent."""
        with self._lock:
            self._closed = True
            parked = list(self._idle)
            self._idle.clear()
            self._created -= len(parked)
            self._lock.notify_all()
        for connection in parked:
            connection.close()

    def __enter__(self) -> "SessionPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"SessionPool(size={self.size}, checked_out={self.checked_out}, "
            f"idle={self.idle}, version={self.store.version})"
        )


__all__ = ["SessionPool"]
