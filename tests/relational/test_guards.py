"""Unit coverage for the kernel-op checkpoint layer.

:mod:`repro.relational.guards` is the single seam through which both
resource budgets and fault injection reach the kernels; these tests pin
its contract directly — disarmed fast path, budget accounting, deadline
handling, shadowing/restore discipline, hook semantics — and that the
kernel ops actually cross it.
"""

import threading

import pytest

from repro.errors import EvaluationError, ReproError, ResourceLimitError
from repro.relational import Relation, as_columnar
from repro.relational import guards
from repro.relational.guards import checkpoint, guarded, op_hook


def _my_guard():
    return guards._guards.get(threading.get_ident())


def _my_hook():
    return guards._hooks.get(threading.get_ident())


@pytest.fixture
def flights():
    return Relation(("Dep", "Arr"), [("FRA", "BCN"), ("FRA", "ATL"), ("PAR", "ATL")])


def test_disarmed_checkpoint_is_a_noop():
    assert _my_guard() is None and _my_hook() is None
    checkpoint("select", 10**9)  # nothing installed: never raises


def test_guarded_with_no_limits_stays_disarmed():
    with guarded(None, None) as guard:
        assert guard is None
        assert _my_guard() is None
        checkpoint("select", 10**9)


def test_max_rows_budget_accumulates_across_ops():
    with guarded(max_rows=10):
        checkpoint("select", 6)
        checkpoint("join_on", 4)  # exactly at the limit: still fine
        with pytest.raises(ResourceLimitError) as info:
            checkpoint("project", 1)
    assert "max_rows=10" in str(info.value)
    assert "project" in str(info.value)


def test_max_seconds_deadline_fires_at_next_checkpoint():
    with guarded(max_seconds=0.0):
        with pytest.raises(ResourceLimitError) as info:
            checkpoint("union", 1)
    assert "max_seconds=0.0" in str(info.value)


def test_guard_restored_after_block_and_after_raise():
    with pytest.raises(ResourceLimitError):
        with guarded(max_rows=0):
            checkpoint("select", 1)
    assert _my_guard() is None
    checkpoint("select", 10**9)  # disarmed again


def test_inner_guard_shadows_outer_and_restores_it():
    with guarded(max_rows=1) as outer:
        with guarded(max_rows=100) as inner:
            assert _my_guard() is inner
            checkpoint("select", 50)  # over the *outer* limit: inner rules
        assert _my_guard() is outer
        with pytest.raises(ResourceLimitError):
            checkpoint("select", 2)
    assert _my_guard() is None


def test_each_guard_starts_with_a_fresh_budget():
    with guarded(max_rows=5):
        checkpoint("select", 5)
    with guarded(max_rows=5):
        checkpoint("select", 5)  # previous accumulation does not leak


def test_op_hook_observes_every_checkpoint_and_restores():
    seen = []
    with op_hook(lambda op, rows: seen.append((op, rows))):
        checkpoint("select", 3)
        checkpoint("mask", 7)
    assert seen == [("select", 3), ("mask", 7)]
    assert _my_hook() is None


def test_guard_is_per_thread():
    # A budget installed in one thread never charges (or aborts) another
    # thread's ops — the contract the service-layer pool relies on.
    errors = []

    def other_thread():
        try:
            checkpoint("select", 10**9)  # unbudgeted in this thread
            with guarded(max_rows=0):
                with pytest.raises(ResourceLimitError):
                    checkpoint("select", 1)
        except BaseException as exc:  # pragma: no cover - surfaced below
            errors.append(exc)

    with guarded(max_rows=5):
        worker = threading.Thread(target=other_thread)
        worker.start()
        worker.join()
        checkpoint("select", 5)  # this thread's budget is untouched
        with pytest.raises(ResourceLimitError):
            checkpoint("select", 1)
    assert not errors


def test_hook_is_per_thread():
    seen = []
    with op_hook(lambda op, rows: seen.append(op)):
        worker = threading.Thread(target=lambda: checkpoint("mask", 1))
        worker.start()
        worker.join()
        checkpoint("select", 1)
    assert seen == ["select"]


def test_op_hook_restores_previous_hook():
    outer_seen, inner_seen = [], []
    with op_hook(lambda op, rows: outer_seen.append(op)):
        with op_hook(lambda op, rows: inner_seen.append(op)):
            checkpoint("select")  # hooks do not chain: inner only
        checkpoint("project")
    assert inner_seen == ["select"]
    assert outer_seen == ["project"]


def test_hook_fires_before_budget_accounting():
    order = []

    def hook(op, rows):
        order.append("hook")

    with guarded(max_rows=0):
        with op_hook(hook):
            with pytest.raises(ResourceLimitError):
                checkpoint("select", 1)
    assert order == ["hook"]


def test_hook_exceptions_propagate_uncaught():
    class Boom(RuntimeError):
        pass

    with op_hook(lambda op, rows: (_ for _ in ()).throw(Boom("x"))):
        with pytest.raises(Boom):
            checkpoint("select", 1)
    checkpoint("select", 1)  # hook uninstalled despite the raise


@pytest.mark.parametrize("kernel", ["tuple", "columnar"])
def test_kernel_ops_cross_the_checkpoint(kernel, flights):
    relation = flights if kernel == "tuple" else as_columnar(flights)
    seen = []
    with op_hook(lambda op, rows: seen.append(op)):
        relation.project(("Dep",))
        relation.union(relation)
        relation.intersection(relation)
    assert seen[:1] == ["project"]
    assert "union" in seen and "intersection" in seen


def test_kernel_op_rows_feed_the_budget(flights):
    # project reports its input cardinality (3 rows here).
    with guarded(max_rows=2):
        with pytest.raises(ResourceLimitError):
            flights.project(("Dep",))
    assert flights.project(("Dep",)).rows  # recovered, op works disarmed


def test_resource_limit_error_is_a_recoverable_library_error():
    assert issubclass(ResourceLimitError, EvaluationError)
    assert issubclass(ResourceLimitError, ReproError)
    from repro import ResourceLimitError as exported

    assert exported is ResourceLimitError
