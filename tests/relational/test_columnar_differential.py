"""ColumnarRelation ≡ Relation on every operator, property-based.

The columnar kernel is only allowed to change *how* operators run,
never what they return: for every relational algebra operator and any
input, evaluating columnar must equal evaluating tuple-at-a-time. This
suite drives randomized inputs through both engines and compares —
including the empty relation, the nullary schema (the unit world table
{⟨⟩}), PAD-carrying rows, and mixed value types.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SchemaError
from repro.relational import ColumnarRelation, Relation, as_columnar, as_tuple
from repro.relational.pad import PAD
from repro.relational.predicates import (
    FALSE,
    TRUE,
    And,
    Const,
    Not,
    Or,
    eq,
    ge,
    lt,
    neq,
)
from repro.relational.schema import Schema

VALUES = st.one_of(
    st.integers(min_value=-2, max_value=3),
    st.sampled_from(["x", "y", "z"]),
    st.booleans(),
    st.none(),
    st.just(PAD),
)


def relations(attributes: tuple[str, ...], max_rows: int = 7):
    """A strategy of (Relation, ColumnarRelation) twins over *attributes*."""
    row = st.tuples(*(VALUES for _ in attributes))
    return st.lists(row, max_size=max_rows).map(
        lambda rows: Relation(attributes, rows)
    )


def assert_same(columnar_result, tuple_result, context: str = "") -> None:
    assert isinstance(columnar_result, ColumnarRelation), context
    assert (
        tuple(columnar_result.schema) == tuple(tuple_result.schema)
    ), f"{context}: schemas diverge"
    assert as_tuple(columnar_result) == tuple_result, f"{context}: rows diverge"
    # The cross-kernel comparison itself must agree, both directions.
    assert columnar_result == tuple_result, context
    assert hash(columnar_result) == hash(tuple_result), context


PREDICATES = [
    TRUE,
    FALSE,
    eq("A", Const(1)),
    neq("A", "B"),
    lt("A", Const("y")),
    And(neq("A", Const(None)), ge("B", Const(0))),
    Or(eq("A", "B"), eq("B", Const("x"))),
    Not(eq("A", Const(True))),
]


@settings(max_examples=60, deadline=None)
@given(relation=relations(("A", "B")), index=st.integers(0, len(PREDICATES) - 1))
def test_select_matches(relation, index):
    predicate = PREDICATES[index]
    assert_same(
        as_columnar(relation).select(predicate),
        relation.select(predicate),
        repr(predicate),
    )


@settings(max_examples=60, deadline=None)
@given(relation=relations(("A", "B", "C")), value=VALUES)
def test_select_values_and_distinct_values_match(relation, value):
    columnar = as_columnar(relation)
    assert_same(
        columnar.select_values({"B": value}), relation.select_values({"B": value})
    )
    assert columnar.distinct_values(("C", "A")) == relation.distinct_values(
        ("C", "A")
    )
    assert columnar.active_domain() == relation.active_domain()
    assert columnar.sorted_rows() == relation.sorted_rows()
    assert columnar.named_rows() == relation.named_rows()


@settings(max_examples=60, deadline=None)
@given(
    relation=relations(("A", "B", "C")),
    keep=st.lists(st.sampled_from(["A", "B", "C"]), unique=True),
)
def test_project_rename_copy_match(relation, keep):
    columnar = as_columnar(relation)
    assert_same(columnar.project(keep), relation.project(keep), f"π{keep}")
    mapping = {"A": "Z"}
    assert_same(columnar.rename(mapping), relation.rename(mapping))
    assert_same(
        columnar.copy_attribute("B", "B2"), relation.copy_attribute("B", "B2")
    )
    # The alias-projection fast path: copy then drop the source.
    assert_same(
        columnar.copy_attribute("B", "B2").project(("A", "B2", "C")),
        relation.copy_attribute("B", "B2").project(("A", "B2", "C")),
        "alias projection",
    )
    assert_same(
        columnar.extend("D", lambda row: (row["A"], 1)),
        relation.extend("D", lambda row: (row["A"], 1)),
    )


@settings(max_examples=80, deadline=None)
@given(left=relations(("A", "B")), right=relations(("B", "A")))
def test_set_operators_match(left, right):
    columnar_left = as_columnar(left)
    for op in ("union", "difference", "intersection", "semijoin", "antijoin"):
        assert_same(
            getattr(columnar_left, op)(as_columnar(right)),
            getattr(left, op)(right),
            op,
        )
        # Mixed operands: columnar-left with a tuple right operand.
        assert_same(
            getattr(columnar_left, op)(right), getattr(left, op)(right), op
        )


@settings(max_examples=80, deadline=None)
@given(left=relations(("A", "B")), right=relations(("B", "C")))
def test_join_operators_match(left, right):
    columnar_left = as_columnar(left)
    columnar_right = as_columnar(right)
    assert_same(
        columnar_left.natural_join(columnar_right),
        left.natural_join(right),
        "⋈",
    )
    assert_same(
        columnar_left.semijoin(columnar_right), left.semijoin(right), "⋉"
    )
    assert_same(
        columnar_left.antijoin(columnar_right), left.antijoin(right), "▷"
    )
    assert_same(
        columnar_left.left_outer_join_padded(columnar_right),
        left.left_outer_join_padded(right),
        "=⊳⊲",
    )
    assert_same(
        columnar_left.join_on(columnar_right, [("B", "B"), ("A", "C")]),
        left.join_on(right, [("B", "B"), ("A", "C")]),
        "join_on",
    )


@settings(max_examples=60, deadline=None)
@given(left=relations(("A", "B")), right=relations(("C", "D")))
def test_product_theta_equi_match(left, right):
    columnar_left = as_columnar(left)
    columnar_right = as_columnar(right)
    assert_same(columnar_left.product(columnar_right), left.product(right), "×")
    predicate = And(eq("A", "C"), neq("B", "D"))
    assert_same(
        columnar_left.theta_join(columnar_right, predicate),
        left.theta_join(right, predicate),
        "θ",
    )
    assert_same(
        columnar_left.equi_join(columnar_right, [("B", "D")]),
        left.equi_join(right, [("B", "D")]),
        "equi",
    )


@settings(max_examples=60, deadline=None)
@given(dividend=relations(("A", "B"), max_rows=9), divisor=relations(("B",)))
def test_divide_matches(dividend, divisor):
    assert_same(
        as_columnar(dividend).divide(as_columnar(divisor)),
        dividend.divide(divisor),
        "÷",
    )


# -- deterministic edge cases -------------------------------------------------------


def test_nullary_schema_unit_and_empty():
    unit = ColumnarRelation.unit()
    assert as_tuple(unit) == Relation.unit()
    assert len(unit) == 1 and list(unit) == [()]
    empty_nullary = ColumnarRelation((), [])
    assert as_tuple(empty_nullary) == Relation((), [])
    # {⟨⟩} × R and ∅₀ × R.
    r = Relation(("A",), [(1,), (2,)])
    assert as_tuple(unit.product(as_columnar(r))) == Relation.unit().product(r)
    assert as_tuple(empty_nullary.product(as_columnar(r))) == Relation((), []).product(r)
    # Projection of a populated relation onto zero attributes is {⟨⟩}.
    assert as_tuple(as_columnar(r).project(())) == r.project(())
    assert as_tuple(as_columnar(Relation(("A",), [])).project(())) == Relation(
        ("A",), []
    ).project(())
    # Dividing by the nullary unit keeps every row.
    assert as_tuple(as_columnar(r).divide(unit)) == r.divide(Relation.unit())


def test_empty_relation_operators():
    empty = as_columnar(Relation.empty(("A", "B")))
    other = as_columnar(Relation(("B", "C"), [(1, 2)]))
    assert len(empty.select(TRUE)) == 0
    assert len(empty.natural_join(other)) == 0
    assert len(other.natural_join(empty)) == 0
    assert as_tuple(empty.union(empty)) == Relation.empty(("A", "B"))
    assert empty.rows == frozenset()
    assert not empty


def test_duplicate_rows_are_deduplicated_like_the_tuple_engine():
    rows = [(1, "x"), (1, "x"), (2, "y")]
    assert as_tuple(ColumnarRelation(("A", "B"), rows)) == Relation(("A", "B"), rows)


def test_union_incompatible_schemas_raise_like_the_tuple_engine():
    import pytest

    left = as_columnar(Relation(("A",), [(1,)]))
    right = as_columnar(Relation(("B",), [(1,)]))
    with pytest.raises(SchemaError):
        left.union(right)
    with pytest.raises(SchemaError):
        left.product(as_columnar(Relation(("A",), [(2,)])))


def test_schema_instance_accepted():
    relation = ColumnarRelation(Schema(("A",)), [(1,)])
    assert as_tuple(relation) == Relation(Schema(("A",)), [(1,)])


# -- the DML kernel ops: mask / scatter_update / append ------------------------------


@settings(max_examples=60, deadline=None)
@given(relation=relations(("A", "B")), matched=relations(("B", "C")))
def test_mask_matches_on_explicit_attributes(relation, matched):
    assert_same(
        as_columnar(relation).mask(matched, ("B",)),
        relation.mask(matched, ("B",)),
        "mask[B]",
    )


@settings(max_examples=60, deadline=None)
@given(relation=relations(("A", "B")), matched=relations(("A", "B", "C")))
def test_mask_defaults_to_full_row_identity(relation, matched):
    assert_same(
        as_columnar(relation).mask(as_columnar(matched)),
        relation.mask(matched),
        "mask[*]",
    )


SETTERS = [
    ("A", lambda match: match[2]),
    ("B", lambda match: (match[0], match[1])),
]


@settings(max_examples=60, deadline=None)
@given(
    relation=relations(("A", "B")),
    matches=relations(("A", "B", "C")),
    count=st.integers(0, len(SETTERS)),
)
def test_scatter_update_matches(relation, matches, count):
    setters = SETTERS[:count]
    assert_same(
        as_columnar(relation).scatter_update(matches, setters),
        relation.scatter_update(matches, setters),
        f"scatter_update[{count} setters]",
    )


@settings(max_examples=60, deadline=None)
@given(
    relation=relations(("A", "B")),
    additions=st.lists(st.tuples(VALUES, VALUES), max_size=6),
)
def test_append_matches(relation, additions):
    columnar = as_columnar(relation).append(additions)
    assert_same(columnar, relation.append(additions), "append")
    # Set semantics: appending is rebuilding through the constructor.
    assert as_tuple(columnar) == Relation(
        relation.schema, list(relation.rows) + additions
    )


def test_mask_scatter_append_edges():
    import pytest

    relation = Relation(("A", "B"), [(1, "x"), (2, "y")])
    empty_match = Relation(("A", "B"), [])
    # Masking with an empty match set keeps every row (and both kernels
    # may return the operand itself).
    assert relation.mask(empty_match) == relation
    assert as_tuple(as_columnar(relation).mask(empty_match)) == relation
    # Appending nothing (or only already-present rows) is a no-op.
    assert relation.append([]) is relation
    assert relation.append([(1, "x")]) is relation
    assert as_columnar(relation).append([(1, "x")]) is as_columnar(relation)
    # A rewrite colliding with a kept row deduplicates (set semantics).
    matches = Relation(("A", "B"), [(2, "y")])
    collided = relation.scatter_update(matches, [("A", lambda m: 1), ("B", lambda m: "x")])
    assert collided == Relation(("A", "B"), [(1, "x")])
    assert as_tuple(
        as_columnar(relation).scatter_update(matches, [("A", lambda m: 1), ("B", lambda m: "x")])
    ) == collided
    # Arity and unknown-attribute errors raise alike on both kernels.
    for engine in (relation, as_columnar(relation)):
        with pytest.raises(SchemaError):
            engine.append([(1, "x", "extra")])
        with pytest.raises(SchemaError):
            engine.mask(empty_match, ("Nope",))
        with pytest.raises(SchemaError):
            engine.scatter_update(matches, [("Nope", lambda m: 0)])


def test_mask_accepts_cross_kernel_operands():
    relation = Relation(("A", "B"), [(1, "x"), (2, "y"), (3, "z")])
    matched = Relation(("B",), [("y",)])
    expected = Relation(("A", "B"), [(1, "x"), (3, "z")])
    assert relation.mask(as_columnar(matched), ("B",)) == expected
    assert as_tuple(as_columnar(relation).mask(matched, ("B",))) == expected
