"""ColumnarRelation/ArrayRelation ≡ Relation on every operator.

A kernel is only allowed to change *how* operators run, never what
they return: for every relational algebra operator and any input,
evaluating columnar (and, with numpy, array) must equal evaluating
tuple-at-a-time. This suite drives randomized inputs through the
kernels and compares against the tuple engine — including the empty
relation, the nullary schema (the unit world table {⟨⟩}), PAD-carrying
rows, and mixed value types. Every test is parametrized over the
non-tuple kernels, so the same property holds 3-way.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SchemaError
from repro.relational import ColumnarRelation, Relation, as_columnar, as_tuple
from repro.relational.array_kernel import ArrayRelation, as_array, have_numpy
from repro.relational.pad import PAD
from repro.relational.predicates import (
    FALSE,
    TRUE,
    And,
    Const,
    Not,
    Or,
    eq,
    ge,
    lt,
    neq,
)
from repro.relational.schema import Schema

#: The kernels under differential test, against the tuple reference.
#: Direct parametrization (not fixtures) so @given tests compose with
#: it — hypothesis rejects function-scoped fixtures.
KERNEL_PARAMS = [pytest.param(as_columnar, ColumnarRelation, id="columnar")]
if have_numpy():
    KERNEL_PARAMS.append(pytest.param(as_array, ArrayRelation, id="array"))

for_each_kernel = pytest.mark.parametrize(
    "convert", [pytest.param(p.values[0], id=p.id) for p in KERNEL_PARAMS]
)
for_each_kernel_cls = pytest.mark.parametrize(
    "kernel_cls", [pytest.param(p.values[1], id=p.id) for p in KERNEL_PARAMS]
)
for_each_kernel_pair = pytest.mark.parametrize("convert,kernel_cls", KERNEL_PARAMS)


VALUES = st.one_of(
    st.integers(min_value=-2, max_value=3),
    st.sampled_from(["x", "y", "z"]),
    st.booleans(),
    st.none(),
    st.just(PAD),
)


def relations(attributes: tuple[str, ...], max_rows: int = 7):
    """A strategy of tuple-engine relations over *attributes*."""
    row = st.tuples(*(VALUES for _ in attributes))
    return st.lists(row, max_size=max_rows).map(
        lambda rows: Relation(attributes, rows)
    )


def assert_same(kernel_result, tuple_result, context: str = "") -> None:
    assert isinstance(kernel_result, ColumnarRelation), context
    assert (
        tuple(kernel_result.schema) == tuple(tuple_result.schema)
    ), f"{context}: schemas diverge"
    assert as_tuple(kernel_result) == tuple_result, f"{context}: rows diverge"
    # The cross-kernel comparison itself must agree, both directions.
    assert kernel_result == tuple_result, context
    assert hash(kernel_result) == hash(tuple_result), context


PREDICATES = [
    TRUE,
    FALSE,
    eq("A", Const(1)),
    neq("A", "B"),
    lt("A", Const("y")),
    And(neq("A", Const(None)), ge("B", Const(0))),
    Or(eq("A", "B"), eq("B", Const("x"))),
    Not(eq("A", Const(True))),
]


@for_each_kernel
@settings(max_examples=60, deadline=None)
@given(relation=relations(("A", "B")), index=st.integers(0, len(PREDICATES) - 1))
def test_select_matches(convert, relation, index):
    predicate = PREDICATES[index]
    assert_same(
        convert(relation).select(predicate),
        relation.select(predicate),
        repr(predicate),
    )


@for_each_kernel
@settings(max_examples=60, deadline=None)
@given(relation=relations(("A", "B", "C")), value=VALUES)
def test_select_values_and_distinct_values_match(convert, relation, value):
    in_kernel = convert(relation)
    assert_same(
        in_kernel.select_values({"B": value}), relation.select_values({"B": value})
    )
    assert in_kernel.distinct_values(("C", "A")) == relation.distinct_values(
        ("C", "A")
    )
    assert in_kernel.active_domain() == relation.active_domain()
    assert in_kernel.sorted_rows() == relation.sorted_rows()
    assert in_kernel.named_rows() == relation.named_rows()


@for_each_kernel
@settings(max_examples=60, deadline=None)
@given(
    relation=relations(("A", "B", "C")),
    keep=st.lists(st.sampled_from(["A", "B", "C"]), unique=True),
)
def test_project_rename_copy_match(convert, relation, keep):
    in_kernel = convert(relation)
    assert_same(in_kernel.project(keep), relation.project(keep), f"π{keep}")
    mapping = {"A": "Z"}
    assert_same(in_kernel.rename(mapping), relation.rename(mapping))
    assert_same(
        in_kernel.copy_attribute("B", "B2"), relation.copy_attribute("B", "B2")
    )
    # The alias-projection fast path: copy then drop the source.
    assert_same(
        in_kernel.copy_attribute("B", "B2").project(("A", "B2", "C")),
        relation.copy_attribute("B", "B2").project(("A", "B2", "C")),
        "alias projection",
    )
    assert_same(
        in_kernel.extend("D", lambda row: (row["A"], 1)),
        relation.extend("D", lambda row: (row["A"], 1)),
    )


@for_each_kernel
@settings(max_examples=80, deadline=None)
@given(left=relations(("A", "B")), right=relations(("B", "A")))
def test_set_operators_match(convert, left, right):
    kernel_left = convert(left)
    for op in ("union", "difference", "intersection", "semijoin", "antijoin"):
        assert_same(
            getattr(kernel_left, op)(convert(right)),
            getattr(left, op)(right),
            op,
        )
        # Mixed operands: kernel-left with a tuple right operand.
        assert_same(
            getattr(kernel_left, op)(right), getattr(left, op)(right), op
        )


@for_each_kernel
@settings(max_examples=80, deadline=None)
@given(left=relations(("A", "B")), right=relations(("B", "C")))
def test_join_operators_match(convert, left, right):
    kernel_left = convert(left)
    kernel_right = convert(right)
    assert_same(
        kernel_left.natural_join(kernel_right),
        left.natural_join(right),
        "⋈",
    )
    assert_same(
        kernel_left.semijoin(kernel_right), left.semijoin(right), "⋉"
    )
    assert_same(
        kernel_left.antijoin(kernel_right), left.antijoin(right), "▷"
    )
    assert_same(
        kernel_left.left_outer_join_padded(kernel_right),
        left.left_outer_join_padded(right),
        "=⊳⊲",
    )
    assert_same(
        kernel_left.join_on(kernel_right, [("B", "B"), ("A", "C")]),
        left.join_on(right, [("B", "B"), ("A", "C")]),
        "join_on",
    )


@for_each_kernel
@settings(max_examples=60, deadline=None)
@given(left=relations(("A", "B")), right=relations(("C", "D")))
def test_product_theta_equi_match(convert, left, right):
    kernel_left = convert(left)
    kernel_right = convert(right)
    assert_same(kernel_left.product(kernel_right), left.product(right), "×")
    predicate = And(eq("A", "C"), neq("B", "D"))
    assert_same(
        kernel_left.theta_join(kernel_right, predicate),
        left.theta_join(right, predicate),
        "θ",
    )
    assert_same(
        kernel_left.equi_join(kernel_right, [("B", "D")]),
        left.equi_join(right, [("B", "D")]),
        "equi",
    )


@for_each_kernel
@settings(max_examples=60, deadline=None)
@given(dividend=relations(("A", "B"), max_rows=9), divisor=relations(("B",)))
def test_divide_matches(convert, dividend, divisor):
    assert_same(
        convert(dividend).divide(convert(divisor)),
        dividend.divide(divisor),
        "÷",
    )


@for_each_kernel
@settings(max_examples=40, deadline=None)
@given(relation=relations(("A", "B", "C"), max_rows=9))
def test_aggregate_by_matches(convert, relation):
    """aggregate_by: grouped count(*)/count(C), 3-way vs the tuple engine."""
    from repro.relational.aggregates import AggSpec

    specs = (
        AggSpec("N", "count", None),
        AggSpec("K", "count", "C"),
    )
    assert_same(
        convert(relation).aggregate_by(("A",), specs),
        relation.aggregate_by(("A",), specs),
        "aggregate_by",
    )
    # Global (empty-key) aggregation agrees too — including SQL's one
    # empty group over the empty relation.
    assert_same(
        convert(relation).aggregate_by((), specs),
        relation.aggregate_by((), specs),
        "aggregate_by[]",
    )


# -- deterministic edge cases -------------------------------------------------------


@for_each_kernel_pair
def test_nullary_schema_unit_and_empty(convert, kernel_cls):
    unit = kernel_cls.unit()
    assert as_tuple(unit) == Relation.unit()
    assert len(unit) == 1 and list(unit) == [()]
    empty_nullary = kernel_cls((), [])
    assert as_tuple(empty_nullary) == Relation((), [])
    # {⟨⟩} × R and ∅₀ × R.
    r = Relation(("A",), [(1,), (2,)])
    assert as_tuple(unit.product(convert(r))) == Relation.unit().product(r)
    assert as_tuple(empty_nullary.product(convert(r))) == Relation((), []).product(r)
    # Projection of a populated relation onto zero attributes is {⟨⟩}.
    assert as_tuple(convert(r).project(())) == r.project(())
    assert as_tuple(convert(Relation(("A",), [])).project(())) == Relation(
        ("A",), []
    ).project(())
    # Dividing by the nullary unit keeps every row.
    assert as_tuple(convert(r).divide(unit)) == r.divide(Relation.unit())


@for_each_kernel
def test_empty_relation_operators(convert):
    empty = convert(Relation.empty(("A", "B")))
    other = convert(Relation(("B", "C"), [(1, 2)]))
    assert len(empty.select(TRUE)) == 0
    assert len(empty.natural_join(other)) == 0
    assert len(other.natural_join(empty)) == 0
    assert as_tuple(empty.union(empty)) == Relation.empty(("A", "B"))
    assert empty.rows == frozenset()
    assert not empty


@for_each_kernel_cls
def test_duplicate_rows_are_deduplicated_like_the_tuple_engine(kernel_cls):
    rows = [(1, "x"), (1, "x"), (2, "y")]
    assert as_tuple(kernel_cls(("A", "B"), rows)) == Relation(("A", "B"), rows)


@for_each_kernel
def test_union_incompatible_schemas_raise_like_the_tuple_engine(convert):
    left = convert(Relation(("A",), [(1,)]))
    right = convert(Relation(("B",), [(1,)]))
    with pytest.raises(SchemaError):
        left.union(right)
    with pytest.raises(SchemaError):
        left.product(convert(Relation(("A",), [(2,)])))


@for_each_kernel_cls
def test_schema_instance_accepted(kernel_cls):
    relation = kernel_cls(Schema(("A",)), [(1,)])
    assert as_tuple(relation) == Relation(Schema(("A",)), [(1,)])


@for_each_kernel_pair
def test_kernel_results_stay_in_kernel(convert, kernel_cls):
    """Operators must not silently fall out of the requested kernel."""
    left = convert(Relation(("A", "B"), [(1, "x"), (2, "y")]))
    right = convert(Relation(("B", "C"), [("x", 3)]))
    for result in (
        left.select(TRUE),
        left.project(("A",)),
        left.rename({"A": "Z"}),
        left.natural_join(right),
        left.union(left),
        left.difference(left),
        left.copy_attribute("A", "A2"),
    ):
        assert isinstance(result, kernel_cls), type(result)


# -- the DML kernel ops: mask / scatter_update / append ------------------------------


@for_each_kernel
@settings(max_examples=60, deadline=None)
@given(relation=relations(("A", "B")), matched=relations(("B", "C")))
def test_mask_matches_on_explicit_attributes(convert, relation, matched):
    assert_same(
        convert(relation).mask(matched, ("B",)),
        relation.mask(matched, ("B",)),
        "mask[B]",
    )


@for_each_kernel
@settings(max_examples=60, deadline=None)
@given(relation=relations(("A", "B")), matched=relations(("A", "B", "C")))
def test_mask_defaults_to_full_row_identity(convert, relation, matched):
    assert_same(
        convert(relation).mask(convert(matched)),
        relation.mask(matched),
        "mask[*]",
    )


SETTERS = [
    ("A", lambda match: match[2]),
    ("B", lambda match: (match[0], match[1])),
]


@for_each_kernel
@settings(max_examples=60, deadline=None)
@given(
    relation=relations(("A", "B")),
    matches=relations(("A", "B", "C")),
    count=st.integers(0, len(SETTERS)),
)
def test_scatter_update_matches(convert, relation, matches, count):
    setters = SETTERS[:count]
    assert_same(
        convert(relation).scatter_update(matches, setters),
        relation.scatter_update(matches, setters),
        f"scatter_update[{count} setters]",
    )


@for_each_kernel
@settings(max_examples=60, deadline=None)
@given(
    relation=relations(("A", "B")),
    additions=st.lists(st.tuples(VALUES, VALUES), max_size=6),
)
def test_append_matches(convert, relation, additions):
    in_kernel = convert(relation).append(additions)
    assert_same(in_kernel, relation.append(additions), "append")
    # Set semantics: appending is rebuilding through the constructor.
    assert as_tuple(in_kernel) == Relation(
        relation.schema, list(relation.rows) + additions
    )


@for_each_kernel
def test_mask_scatter_append_edges(convert):
    relation = Relation(("A", "B"), [(1, "x"), (2, "y")])
    empty_match = Relation(("A", "B"), [])
    # Masking with an empty match set keeps every row (and both kernels
    # may return the operand itself).
    assert relation.mask(empty_match) == relation
    assert as_tuple(convert(relation).mask(empty_match)) == relation
    # Appending nothing (or only already-present rows) is a no-op.
    assert relation.append([]) is relation
    assert relation.append([(1, "x")]) is relation
    assert convert(relation).append([(1, "x")]) is convert(relation)
    # A rewrite colliding with a kept row deduplicates (set semantics).
    matches = Relation(("A", "B"), [(2, "y")])
    collided = relation.scatter_update(matches, [("A", lambda m: 1), ("B", lambda m: "x")])
    assert collided == Relation(("A", "B"), [(1, "x")])
    assert as_tuple(
        convert(relation).scatter_update(matches, [("A", lambda m: 1), ("B", lambda m: "x")])
    ) == collided
    # Arity and unknown-attribute errors raise alike on every kernel.
    for engine in (relation, convert(relation)):
        with pytest.raises(SchemaError):
            engine.append([(1, "x", "extra")])
        with pytest.raises(SchemaError):
            engine.mask(empty_match, ("Nope",))
        with pytest.raises(SchemaError):
            engine.scatter_update(matches, [("Nope", lambda m: 0)])


@for_each_kernel
def test_mask_accepts_cross_kernel_operands(convert):
    relation = Relation(("A", "B"), [(1, "x"), (2, "y"), (3, "z")])
    matched = Relation(("B",), [("y",)])
    expected = Relation(("A", "B"), [(1, "x"), (3, "z")])
    assert relation.mask(convert(matched), ("B",)) == expected
    assert as_tuple(convert(relation).mask(matched, ("B",))) == expected
