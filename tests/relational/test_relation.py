"""Relations: construction, operators, edge cases of the named perspective."""

import pytest

from repro.errors import SchemaError
from repro.relational import PAD, Relation, eq, Const


@pytest.fixture
def r():
    return Relation(("A", "B"), [(1, 2), (2, 3), (2, 4), (3, 2)])


@pytest.fixture
def s():
    return Relation(("C", "D"), [(2, 3), (4, 5)])


class TestConstruction:
    def test_rows_deduplicate(self):
        relation = Relation(("A",), [(1,), (1,), (2,)])
        assert len(relation) == 2

    def test_interning_shares_equal_rows_across_relations(self):
        a = Relation(("A", "B"), [("x", 1)])
        b = Relation(("C", "D"), [("x", 1)])
        assert next(iter(a.rows)) is next(iter(b.rows))

    def test_interning_never_substitutes_across_types(self):
        """1 == 1.0 == True in Python; stored values must keep their type."""
        Relation(("A",), [(1,)])
        float_relation = Relation(("A",), [(1.0,)])
        (value,) = next(iter(float_relation.rows))
        assert type(value) is float

    def test_dict_rows(self):
        relation = Relation(("A", "B"), [{"B": 2, "A": 1}])
        assert (1, 2) in relation

    def test_dict_rows_validate_attributes(self):
        with pytest.raises(SchemaError, match="missing"):
            Relation(("A", "B"), [{"A": 1}])
        with pytest.raises(SchemaError, match="unknown"):
            Relation(("A",), [{"A": 1, "Z": 2}])

    def test_arity_mismatch(self):
        with pytest.raises(SchemaError, match="expects"):
            Relation(("A", "B"), [(1,)])

    def test_unit_is_the_nullary_singleton(self):
        unit = Relation.unit()
        assert len(unit.schema) == 0 and len(unit) == 1

    def test_empty(self):
        assert not Relation.empty(("A",))


class TestEquality:
    def test_attribute_order_is_immaterial(self):
        left = Relation(("A", "B"), [(1, 2)])
        right = Relation(("B", "A"), [(2, 1)])
        assert left == right
        assert hash(left) == hash(right)

    def test_different_attribute_sets_differ(self):
        assert Relation(("A",), [(1,)]) != Relation(("B",), [(1,)])

    def test_different_rows_differ(self):
        assert Relation(("A",), [(1,)]) != Relation(("A",), [(2,)])


class TestUnaryOperators:
    def test_select(self, r):
        assert r.select(eq("A", Const(2))).rows == {(2, 3), (2, 4)}

    def test_select_values_fast_path(self, r):
        assert r.select_values({"A": 2, "B": 3}).rows == {(2, 3)}

    def test_project_deduplicates(self, r):
        assert r.project(("A",)).rows == {(1,), (2,), (3,)}

    def test_project_to_nullary(self, r):
        assert r.project(()).rows == {()}
        assert Relation.empty(("A",)).project(()).rows == set()

    def test_rename(self, r):
        renamed = r.rename({"A": "X"})
        assert renamed.schema.attributes == ("X", "B")
        assert renamed.rows == r.rows

    def test_copy_attribute(self, r):
        copied = r.copy_attribute("A", "$A")
        assert copied.schema.attributes == ("A", "B", "$A")
        assert (1, 2, 1) in copied

    def test_copy_attribute_rejects_existing(self, r):
        with pytest.raises(SchemaError):
            r.copy_attribute("A", "B")

    def test_extend(self, r):
        extended = r.extend("S", lambda row: row["A"] + row["B"])
        assert (1, 2, 3) in extended


class TestBinaryOperators:
    def test_union_intersection_difference(self, r):
        other = Relation(("A", "B"), [(1, 2), (9, 9)])
        assert len(r.union(other)) == 5
        assert r.intersection(other).rows == {(1, 2)}
        assert (9, 9) not in r.difference(other).union(other).difference(other)

    def test_set_ops_align_column_order(self):
        left = Relation(("A", "B"), [(1, 2)])
        right = Relation(("B", "A"), [(2, 1)])
        assert len(left.union(right)) == 1
        assert left.intersection(right).rows == {(1, 2)}

    def test_set_ops_require_same_attributes(self, r, s):
        with pytest.raises(SchemaError):
            r.union(s)

    def test_product(self, r, s):
        product = r.product(s)
        assert len(product) == len(r) * len(s)
        assert product.schema.attributes == ("A", "B", "C", "D")

    def test_product_requires_disjoint(self, r):
        with pytest.raises(SchemaError):
            r.product(r)

    def test_natural_join(self, r):
        other = Relation(("B", "C"), [(2, "x"), (3, "y")])
        joined = r.natural_join(other)
        assert joined.rows == {(1, 2, "x"), (3, 2, "x"), (2, 3, "y")}

    def test_natural_join_without_common_attrs_is_product(self, r, s):
        assert r.natural_join(s) == r.product(s)

    def test_equi_join(self, r, s):
        joined = r.equi_join(s, [("B", "C")])
        assert joined.rows == {(1, 2, 2, 3), (3, 2, 2, 3), (2, 4, 4, 5)}

    def test_theta_join_falls_back_to_filter(self, r, s):
        joined = r.theta_join(s, eq("B", "C") & eq("A", Const(1)))
        assert joined.rows == {(1, 2, 2, 3)}

    def test_semijoin_antijoin_partition(self, r):
        other = Relation(("B", "C"), [(2, "x")])
        kept = r.semijoin(other)
        dropped = r.antijoin(other)
        assert kept.union(dropped) == r
        assert not kept.intersection(dropped)

    def test_semijoin_no_common_attrs(self, r, s):
        assert r.semijoin(s) == r
        assert r.semijoin(Relation.empty(("Z",))) == Relation.empty(("A", "B"))


class TestDivision:
    def test_paper_trip_planning_division(self):
        hflights = Relation(
            ("Dep", "Arr"),
            [("FRA", "BCN"), ("FRA", "ATL"), ("PAR", "ATL"), ("PAR", "BCN"), ("PHL", "ATL")],
        )
        quotient = hflights.project(("Arr", "Dep")).divide(hflights.project(("Dep",)))
        assert quotient.rows == {("ATL",)}

    def test_divide_by_empty_is_vacuous(self, r):
        assert r.divide(Relation.empty(("B",))) == r.project(("A",))

    def test_divide_by_unit_keeps_everything(self, r):
        assert r.divide(Relation.unit()) == r

    def test_divide_requires_subset(self, r, s):
        with pytest.raises(SchemaError):
            r.divide(s)

    def test_divide_matches_subtraction_definition(self, r):
        divisor = r.project(("B",))
        by_definition = r.project(("A",)).difference(
            r.project(("A",)).product(divisor).difference(r).project(("A",))
        )
        assert r.divide(divisor) == by_definition


class TestPaddedOuterJoin:
    def test_pads_dangling_rows(self):
        left = Relation(("A",), [(1,), (2,)])
        right = Relation(("A", "B"), [(1, "x")])
        joined = left.left_outer_join_padded(right)
        assert joined.rows == {(1, "x"), (2, PAD)}

    def test_unit_left_operand(self):
        right = Relation(("B",), [(1,)])
        assert Relation.unit().left_outer_join_padded(right).rows == {(1,)}

    def test_unit_left_operand_with_empty_right_keeps_pad_world(self):
        joined = Relation.unit().left_outer_join_padded(Relation.empty(("B",)))
        assert joined.rows == {(PAD,)}

    def test_pad_constant_identity(self):
        assert PAD == PAD
        assert PAD < 0 and PAD < "" and not PAD > 0
        assert repr(PAD) == "⊥"


class TestHelpers:
    def test_distinct_values_sorted(self, r):
        assert r.distinct_values(("A",)) == [(1,), (2,), (3,)]

    def test_active_domain(self, r):
        assert r.active_domain() == frozenset({1, 2, 3, 4})

    def test_named_rows(self):
        relation = Relation(("A", "B"), [(1, 2)])
        assert relation.named_rows() == [{"A": 1, "B": 2}]
