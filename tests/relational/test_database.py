"""Databases: ordered named relation collections."""

import pytest

from repro.errors import SchemaError
from repro.relational import Database, Relation


@pytest.fixture
def db():
    return Database(
        {"R": Relation(("A",), [(1,)]), "S": Relation(("B",), [(2,)])}
    )


class TestBasics:
    def test_order_preserved(self, db):
        assert db.names == ("R", "S")

    def test_lookup_and_errors(self, db):
        assert db["R"].rows == {(1,)}
        with pytest.raises(SchemaError, match="unknown relation"):
            db["Z"]

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            Database([("R", Relation(("A",))), ("R", Relation(("A",)))])

    def test_equality_and_hash(self, db):
        same = Database(
            {"R": Relation(("A",), [(1,)]), "S": Relation(("B",), [(2,)])}
        )
        assert db == same and hash(db) == hash(same)

    def test_schemas_and_active_domain(self, db):
        assert db.schema("R").attributes == ("A",)
        assert db.active_domain() == frozenset({1, 2})

    def test_with_and_without_relation(self, db):
        extended = db.with_relation("T", Relation(("C",), [(3,)]))
        assert extended.names == ("R", "S", "T")
        assert db.names == ("R", "S")  # immutability
        shrunk = extended.without_relation("S")
        assert shrunk.names == ("R", "T")

    def test_without_unknown_raises(self, db):
        with pytest.raises(SchemaError):
            db.without_relation("Z")

    def test_subclass_preserved_by_updates(self):
        from repro.worlds import World

        world = World.of({"R": Relation(("A",), [(1,)])})
        assert isinstance(world.with_relation("S", Relation(("B",))), World)
        extended = world.with_relation("S", Relation(("B",)))
        assert isinstance(extended.without_relation("S"), World)
