"""Relational algebra expressions: evaluation, schema inference, analysis."""

import pytest

from repro.errors import SchemaError
from repro.relational import (
    Antijoin,
    CopyAttr,
    Database,
    Difference,
    Divide,
    Intersection,
    Literal,
    NaturalJoin,
    OuterJoinPad,
    PAD,
    Product,
    Project,
    Relation,
    Rename,
    Schema,
    Select,
    Semijoin,
    Table,
    ThetaJoin,
    Union,
    eq,
    Const,
    evaluate,
)


@pytest.fixture
def db():
    return Database(
        {
            "R": Relation(("A", "B"), [(1, 2), (2, 3), (2, 4), (3, 2)]),
            "S": Relation(("C", "D"), [(2, 3), (4, 5)]),
        }
    )


ENV = {"R": Schema(("A", "B")), "S": Schema(("C", "D"))}


class TestEvaluation:
    def test_table_and_literal(self, db):
        assert Table("R").evaluate(db) == db["R"]
        lit = Literal(Relation.unit())
        assert lit.evaluate(db) == Relation.unit()

    def test_unknown_table(self, db):
        with pytest.raises(SchemaError):
            Table("Z").evaluate(db)

    def test_select_project_rename(self, db):
        expr = Project(("A",), Select(eq("B", Const(2)), Table("R")))
        assert expr.evaluate(db).rows == {(1,), (3,)}
        assert Rename({"A": "X"}, Table("R")).evaluate(db).schema.attributes == ("X", "B")

    def test_copy_attr(self, db):
        expr = CopyAttr("A", "$A", Table("R"))
        assert (1, 2, 1) in expr.evaluate(db)

    def test_set_operators(self, db):
        r = Table("R")
        assert Union(r, r).evaluate(db) == db["R"]
        assert not Difference(r, r).evaluate(db)
        assert Intersection(r, r).evaluate(db) == db["R"]

    def test_joins(self, db):
        product = Product(Table("R"), Table("S")).evaluate(db)
        assert len(product) == 8
        theta = ThetaJoin(eq("B", "C"), Table("R"), Table("S")).evaluate(db)
        assert (1, 2, 2, 3) in theta
        natural = NaturalJoin(Table("R"), Table("S")).evaluate(db)
        assert natural == product  # no shared attributes

    def test_semijoin_antijoin(self, db):
        renamed = Rename({"C": "B"}, Project(("C",), Table("S")))
        kept = Semijoin(Table("R"), renamed).evaluate(db)
        dropped = Antijoin(Table("R"), renamed).evaluate(db)
        assert kept.union(dropped) == db["R"]

    def test_divide(self, db):
        expr = Divide(
            Project(("A", "B"), Table("R")), Project(("B",), Table("R"))
        )
        assert expr.evaluate(db).schema.attributes == ("A",)

    def test_outer_join_pad(self, db):
        expr = OuterJoinPad(
            Project(("A",), Table("R")),
            Select(eq("A", Const(1)), Rename({"C": "A"}, Table("S"))),
        )
        result = expr.evaluate(db)
        assert (2, PAD) in result or (2,) + (PAD,) in result

    def test_memoization_shares_subexpressions(self, db):
        calls = []
        original = Table._evaluate

        def counting(self, database, cache):
            calls.append(self.name)
            return original(self, database, cache)

        Table._evaluate = counting
        try:
            shared = Project(("A",), Table("R"))
            expr = Union(shared, shared)
            expr.evaluate(db)
        finally:
            Table._evaluate = original
        assert calls.count("R") == 1

    def test_module_level_evaluate_rejects_non_expr(self, db):
        from repro.errors import EvaluationError

        with pytest.raises(EvaluationError):
            evaluate("not an expression", db)  # type: ignore[arg-type]


class TestSchemaInference:
    def test_project_schema(self):
        assert Project(("B",), Table("R")).schema(ENV).attributes == ("B",)

    def test_select_validates_predicate_attrs(self):
        with pytest.raises(SchemaError):
            Select(eq("Z", Const(1)), Table("R")).schema(ENV)

    def test_union_requires_same_attrs(self):
        with pytest.raises(SchemaError):
            Union(Table("R"), Table("S")).schema(ENV)

    def test_product_requires_disjoint(self):
        with pytest.raises(SchemaError):
            Product(Table("R"), Table("R")).schema(ENV)

    def test_divide_schema(self):
        expr = Divide(Table("R"), Project(("B",), Table("R")))
        assert expr.schema(ENV).attributes == ("A",)

    def test_natural_join_schema_order(self):
        expr = NaturalJoin(Table("R"), Rename({"C": "B"}, Table("S")))
        assert expr.schema(ENV).attributes == ("A", "B", "D")


class TestAnalysis:
    def test_size_and_depth(self):
        expr = Project(("A",), Select(eq("A", Const(1)), Table("R")))
        assert expr.size() == 3
        assert expr.depth() == 3

    def test_tables(self):
        expr = Union(Project(("A",), Table("R")), Rename({"C": "A"}, Project(("C",), Table("S"))))
        assert expr.tables() == frozenset({"R", "S"})

    def test_walk_preorder(self):
        expr = Select(eq("A", Const(1)), Table("R"))
        kinds = [type(node).__name__ for node in expr.walk()]
        assert kinds == ["Select", "Table"]

    def test_structural_equality(self):
        a = Project(("A",), Table("R"))
        b = Project(("A",), Table("R"))
        assert a == b and hash(a) == hash(b)
        assert a != Project(("B",), Table("R"))

    def test_to_text(self):
        expr = Project(("A",), Table("R"))
        assert expr.to_text() == "π[A](R)"
