"""Selection predicates: evaluation, renaming, structure."""

import pytest

from repro.errors import SchemaError
from repro.relational import (
    And,
    Attr,
    Comparison,
    Const,
    FALSE,
    Not,
    Or,
    Schema,
    TRUE,
    conjunction,
    eq,
    ge,
    gt,
    le,
    lt,
    neq,
)

SCHEMA = Schema(("A", "B"))


def holds(predicate, row):
    return predicate.bind(SCHEMA)(row)


class TestComparisons:
    def test_attr_to_const(self):
        assert holds(eq("A", Const(1)), (1, 2))
        assert not holds(eq("A", Const(1)), (2, 2))

    def test_attr_to_attr(self):
        assert holds(eq("A", "B"), (3, 3))
        assert not holds(eq("A", "B"), (3, 4))

    def test_orderings(self):
        assert holds(lt("A", "B"), (1, 2))
        assert holds(le("A", "B"), (2, 2))
        assert holds(gt("B", "A"), (1, 2))
        assert holds(ge("A", "B"), (2, 2))
        assert holds(neq("A", "B"), (1, 2))

    def test_mixed_type_ordering_is_false_not_error(self):
        assert not holds(lt("A", "B"), (1, "x"))

    def test_unknown_operator_rejected(self):
        with pytest.raises(SchemaError):
            Comparison("A", "~", "B")

    def test_unknown_attribute_rejected_at_bind(self):
        with pytest.raises(SchemaError):
            eq("Z", Const(1)).bind(SCHEMA)


class TestConnectives:
    def test_and_or_not(self):
        p = And(eq("A", Const(1)), eq("B", Const(2)))
        assert holds(p, (1, 2)) and not holds(p, (1, 3))
        q = Or(eq("A", Const(1)), eq("B", Const(9)))
        assert holds(q, (5, 9)) and not holds(q, (5, 5))
        assert holds(Not(FALSE), (0, 0))

    def test_operator_sugar(self):
        p = eq("A", Const(1)) & ~eq("B", Const(2))
        assert holds(p, (1, 3)) and not holds(p, (1, 2))
        q = eq("A", Const(9)) | TRUE
        assert holds(q, (0, 0))

    def test_conjunction_of_empty_list_is_true(self):
        assert conjunction([]) is TRUE

    def test_conjunction_chains(self):
        p = conjunction([eq("A", Const(1)), eq("B", Const(2))])
        assert holds(p, (1, 2)) and not holds(p, (2, 2))


class TestNegation:
    def test_comparison_negation_flips_operator(self):
        assert eq("A", "B").negate().op == "!="
        assert lt("A", "B").negate().op == ">="

    def test_de_morgan(self):
        p = And(eq("A", Const(1)), eq("B", Const(2))).negate()
        assert isinstance(p, Or)
        q = Or(eq("A", Const(1)), eq("B", Const(2))).negate()
        assert isinstance(q, And)

    def test_double_negation_collapses(self):
        p = eq("A", Const(1))
        assert Not(p).negate() == p


class TestStructure:
    def test_attributes_collects_all(self):
        p = And(eq("A", "B"), eq("A", Const(1)))
        assert p.attributes() == frozenset({"A", "B"})

    def test_rename(self):
        p = eq("A", "B").rename({"A": "X"})
        assert p.attributes() == frozenset({"X", "B"})

    def test_equality_and_hash(self):
        assert eq("A", Const(1)) == eq("A", Const(1))
        assert hash(eq("A", Const(1))) == hash(eq("A", Const(1)))
        assert eq("A", Const(1)) != eq("A", Const(2))

    def test_const_equality_is_type_sensitive(self):
        assert Const(1) != Const(True)
        assert Const(1) != Const(1.0)

    def test_equality_pairs_for_hash_joins(self):
        p = And(eq("A", "X"), eq("B", "Y"))
        assert p.equality_pairs() == [("A", "X"), ("B", "Y")]
        assert eq("A", Const(1)).equality_pairs() is None
        assert TRUE.equality_pairs() == []
        assert And(eq("A", "X"), lt("B", "Y")).equality_pairs() is None
