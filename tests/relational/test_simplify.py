"""The RA plan simplifier: rules, Example 5.8 shape, soundness."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.relational import (
    Database,
    Divide,
    Literal,
    NaturalJoin,
    Product,
    Project,
    Relation,
    Rename,
    Schema,
    Select,
    Table,
    ThetaJoin,
    TRUE,
    eq,
    Const,
    simplify,
)

ENV = {"R": Schema(("A", "B")), "HF": Schema(("Dep", "Arr"))}


def db():
    return Database(
        {
            "R": Relation(("A", "B"), [(1, 2), (2, 3)]),
            "HF": Relation(
                ("Dep", "Arr"),
                [("FRA", "BCN"), ("FRA", "ATL"), ("PAR", "ATL"), ("PAR", "BCN"), ("PHL", "ATL")],
            ),
        }
    )


class TestRules:
    def test_identity_projection_removed(self):
        expr = Project(("A", "B"), Table("R"))
        assert simplify(expr, ENV) == Table("R")

    def test_reordering_projection_kept(self):
        expr = Project(("B", "A"), Table("R"))
        assert simplify(expr, ENV) == expr

    def test_projection_cascade(self):
        expr = Project(("A",), Project(("A", "B"), Table("R")))
        assert simplify(expr, ENV) == Project(("A",), Table("R"))

    def test_copy_then_drop_removed(self):
        from repro.relational import CopyAttr

        expr = Project(("A", "B"), CopyAttr("A", "$A", Table("R")))
        assert simplify(expr, ENV) == Table("R")

    def test_copy_then_project_becomes_rename(self):
        from repro.relational import CopyAttr

        expr = Project(("B", "$A"), CopyAttr("A", "$A", Table("R")))
        simplified = simplify(expr, ENV)
        assert simplified == Rename({"A": "$A"}, Project(("B", "A"), Table("R")))

    def test_identity_rename_removed(self):
        assert simplify(Rename({"A": "A"}, Table("R")), ENV) == Table("R")

    def test_rename_fusion(self):
        expr = Rename({"X": "Y"}, Rename({"A": "X"}, Table("R")))
        assert simplify(expr, ENV) == Rename({"A": "Y"}, Table("R"))

    def test_select_true_removed(self):
        assert simplify(Select(TRUE, Table("R")), ENV) == Table("R")

    def test_rename_hoisted_through_select(self):
        expr = Select(eq("X", Const(1)), Rename({"A": "X"}, Table("R")))
        simplified = simplify(expr, ENV)
        assert simplified == Rename({"A": "X"}, Select(eq("A", Const(1)), Table("R")))

    def test_unit_literal_joins_removed(self):
        unit = Literal(Relation.unit())
        assert simplify(Product(unit, Table("R")), ENV) == Table("R")
        assert simplify(NaturalJoin(Table("R"), unit), ENV) == Table("R")

    def test_theta_join_true_becomes_product(self):
        expr = ThetaJoin(TRUE, Table("R"), Rename({"Dep": "D", "Arr": "X"}, Table("HF")))
        assert isinstance(simplify(expr, ENV), Product)

    def test_shared_rename_hoisted_out_of_division(self):
        expr = Divide(
            Rename({"Dep": "$Dep"}, Project(("Arr", "Dep"), Table("HF"))),
            Rename({"Dep": "$Dep"}, Project(("Dep",), Table("HF"))),
        )
        simplified = simplify(expr, ENV)
        assert simplified == Divide(
            Project(("Arr", "Dep"), Table("HF")), Project(("Dep",), Table("HF"))
        )

    def test_example_58_shape(self):
        """The §5.3 pipeline output simplifies to the paper's Example 5.8."""
        from repro.relational import CopyAttr

        expr = Project(
            ("Arr",),
            Divide(
                Project(("Arr", "$Dep"), CopyAttr("Dep", "$Dep", Table("HF"))),
                Rename({"Dep": "$Dep"}, Project(("Dep",), Table("HF"))),
            ),
        )
        simplified = simplify(expr, ENV)
        assert simplified.to_text() == "(π[Arr,Dep](HF) ÷ π[Dep](HF))"


class _ExprBuilder:
    """Random small expressions over R(A,B) for the soundness test."""

    @staticmethod
    def strategy():
        leaf = st.just(Table("R"))

        def extend(children):
            return st.one_of(
                children.map(lambda c: Project(("A", "B"), c)),
                children.map(lambda c: Project(("A",), c)) if False else children.map(
                    lambda c: Select(eq("A", Const(1)), c)
                ),
                children.map(lambda c: Rename({"A": "X"}, c)).map(
                    lambda c: Rename({"X": "A"}, c)
                ),
                children.map(lambda c: Product(Literal(Relation.unit()), c)),
            )

        return st.recursive(leaf, extend, max_leaves=4)


@given(_ExprBuilder.strategy())
def test_simplify_preserves_semantics(expr):
    database = db()
    simplified = simplify(expr, ENV)
    assert simplified.evaluate(database) == expr.evaluate(database)
    assert simplified.size() <= expr.size()
