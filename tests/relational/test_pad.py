"""The PAD sentinel: identity, ordering, hashing, pickling."""

import pickle

from repro.relational import PAD, PadConstant
from repro.relational.pad import row_sort_key, sort_key


class TestSingleton:
    def test_construction_returns_the_singleton(self):
        assert PadConstant() is PAD

    def test_pickle_roundtrip_preserves_identity(self):
        assert pickle.loads(pickle.dumps(PAD)) is PAD

    def test_equality_and_hash(self):
        assert PAD == PadConstant()
        assert hash(PAD) == hash(PadConstant())
        assert PAD != 1 and PAD != "⊥"


class TestOrdering:
    def test_sorts_before_everything(self):
        values = sorted([3, PAD, "a", 1], key=sort_key)
        assert values[0] is PAD

    def test_comparisons(self):
        assert PAD < 0 and PAD <= 0 and not PAD > 0 and not PAD >= 0
        assert PAD <= PAD and PAD >= PAD and not PAD < PAD


class TestSortKeys:
    def test_numbers_sort_together(self):
        values = sorted([2.5, 1, 3], key=sort_key)
        assert values == [1, 2.5, 3]

    def test_mixed_types_are_grouped_not_compared(self):
        values = sorted(["b", 2, "a", 1], key=sort_key)
        assert values == [1, 2, "a", "b"]

    def test_row_sort_key_is_lexicographic(self):
        rows = sorted([(2, "a"), (1, "z"), (1, "a")], key=row_sort_key)
        assert rows == [(1, "a"), (1, "z"), (2, "a")]

    def test_bool_vs_int_distinct(self):
        assert sort_key(True) != sort_key(1)
