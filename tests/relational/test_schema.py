"""Schemas: named-perspective attribute bookkeeping."""

import pytest

from repro.errors import SchemaError
from repro.relational import Schema, id_attribute, is_id_attribute, value_attribute


class TestConstruction:
    def test_preserves_order(self):
        schema = Schema(("B", "A", "C"))
        assert schema.attributes == ("B", "A", "C")

    def test_rejects_duplicates(self):
        with pytest.raises(SchemaError, match="duplicate"):
            Schema(("A", "A"))

    def test_rejects_empty_names(self):
        with pytest.raises(SchemaError):
            Schema(("",))

    def test_rejects_non_strings(self):
        with pytest.raises(SchemaError):
            Schema((1, 2))  # type: ignore[arg-type]

    def test_empty_schema_is_allowed(self):
        assert len(Schema(())) == 0


class TestQueries:
    def test_index_and_contains(self):
        schema = Schema(("A", "B"))
        assert schema.index("B") == 1
        assert "A" in schema and "Z" not in schema

    def test_index_unknown_raises(self):
        with pytest.raises(SchemaError, match="unknown attribute"):
            Schema(("A",)).index("B")

    def test_indices_follow_request_order(self):
        assert Schema(("A", "B", "C")).indices(("C", "A")) == (2, 0)

    def test_same_attributes_ignores_order(self):
        assert Schema(("A", "B")).same_attributes(Schema(("B", "A")))

    def test_common_in_left_order(self):
        assert Schema(("A", "B", "C")).common(Schema(("C", "B"))) == ("B", "C")

    def test_disjointness(self):
        assert Schema(("A",)).disjoint_from(Schema(("B",)))
        assert not Schema(("A",)).disjoint_from(Schema(("A",)))


class TestDerivedSchemas:
    def test_project_validates(self):
        with pytest.raises(SchemaError):
            Schema(("A",)).project(("B",))

    def test_rename(self):
        schema = Schema(("A", "B")).rename({"A": "X"})
        assert schema.attributes == ("X", "B")

    def test_rename_swap_is_simultaneous(self):
        schema = Schema(("A", "B")).rename({"A": "B", "B": "A"})
        assert schema.attributes == ("B", "A")

    def test_concat_requires_disjoint(self):
        with pytest.raises(SchemaError, match="share attributes"):
            Schema(("A",)).concat(Schema(("A",)))

    def test_drop(self):
        assert Schema(("A", "B", "C")).drop(("B",)).attributes == ("A", "C")

    def test_drop_unknown_raises(self):
        with pytest.raises(SchemaError):
            Schema(("A",)).drop(("B",))


class TestIdAttributes:
    def test_id_attribute_roundtrip(self):
        assert id_attribute("Dep") == "$Dep"
        assert is_id_attribute("$Dep")
        assert value_attribute("$Dep") == "Dep"

    def test_id_attribute_rejects_double_prefix(self):
        with pytest.raises(SchemaError):
            id_attribute("$Dep")

    def test_value_attribute_rejects_plain(self):
        with pytest.raises(SchemaError):
            value_attribute("Dep")

    def test_schema_partitions_id_and_value_attrs(self):
        schema = Schema(("A", "$w", "B"))
        assert schema.id_attributes == ("$w",)
        assert schema.value_attributes == ("A", "B")
