"""Property-based tests of relational algebra laws (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.relational import Relation, eq, Const


def relations(attrs=("A", "B"), domain=st.integers(0, 3), max_rows=6):
    row = st.tuples(*([domain] * len(attrs)))
    return st.frozensets(row, max_size=max_rows).map(
        lambda rows: Relation(attrs, rows)
    )


@given(relations(), relations(), relations())
def test_union_is_associative_and_commutative(a, b, c):
    assert a.union(b) == b.union(a)
    assert a.union(b.union(c)) == a.union(b).union(c)


@given(relations(), relations())
def test_intersection_via_difference(a, b):
    assert a.intersection(b) == a.difference(a.difference(b))


@given(relations(), relations())
def test_difference_disjoint_from_subtrahend(a, b):
    assert not a.difference(b).intersection(b)


@given(relations(), relations(attrs=("C", "D")))
def test_product_cardinality(a, b):
    assert len(a.product(b)) == len(a) * len(b)


@given(relations(), relations(attrs=("B", "C")))
def test_natural_join_equals_select_over_product(a, b):
    renamed = b.rename({"B": "B2"})
    expected = (
        a.product(renamed)
        .select(eq("B", "B2"))
        .project(("A", "B", "C"))
    )
    assert a.natural_join(b) == expected


@given(relations(), relations(attrs=("B", "C")))
def test_semijoin_antijoin_partition(a, b):
    kept = a.semijoin(b)
    dropped = a.antijoin(b)
    assert kept.union(dropped) == a
    assert not kept.intersection(dropped)
    assert a.natural_join(b).project(("A", "B")) == kept


@given(relations())
def test_division_by_own_projection(a):
    """Every A-value paired with all B-values of *some* tuple survives
    division only if paired with *all* B-values present anywhere."""
    divisor = a.project(("B",))
    quotient = a.divide(divisor)
    for (value,) in quotient.rows:
        for (b_value,) in divisor.rows:
            assert (value, b_value) in a


@given(relations(), relations(attrs=("B",)))
def test_division_matches_double_negation_definition(a, divisor):
    by_definition = a.project(("A",)).difference(
        a.project(("A",)).product(divisor).difference(a).project(("A",))
    )
    assert a.divide(divisor) == by_definition


@given(relations(), relations(attrs=("B", "C")))
def test_padded_outer_join_covers_left(a, b):
    """Every left row appears exactly once as either joined or padded."""
    joined = a.left_outer_join_padded(b)
    assert joined.project(("A", "B")).rows >= a.semijoin(b).rows
    left_back = joined.project(("A", "B"))
    assert left_back.rows >= a.rows or a.semijoin(b).rows


@given(relations())
def test_select_true_false(a):
    from repro.relational import TRUE, FALSE

    assert a.select(TRUE) == a
    assert not a.select(FALSE)


@given(relations())
@settings(max_examples=30)
def test_projection_is_idempotent(a):
    assert a.project(("A",)).project(("A",)) == a.project(("A",))


@given(relations())
def test_rename_roundtrip(a):
    assert a.rename({"A": "X"}).rename({"X": "A"}) == a
