"""SessionPool unit coverage (ISSUE 9).

Checkout/checkin discipline, exhaustion and timeout, double release,
thread pinning, the guard (``max_rows``/``max_seconds``) passthrough,
idle retirement, closed-pool behavior, and the headline isolation
property: a reader holding a pinned snapshot sees a consistent state
while a writer runs a DML batch on another pooled connection.
"""

from __future__ import annotations

import threading

import pytest

from repro.errors import OwnershipError
from repro.isql import ISQLSession
from repro.relational import Relation
from repro.service import SessionPool, dbapi


def _seed(rows=((1, 10), (2, 20), (3, 30))) -> ISQLSession:
    session = ISQLSession(backend="inline")
    session.register("T", Relation(("K", "V"), rows))
    return session


def test_acquire_release_reuses_connections():
    pool = SessionPool(_seed(), size=2)
    first = pool.acquire()
    assert pool.checked_out == 1 and pool.idle == 0
    pool.release(first)
    assert pool.checked_out == 0 and pool.idle == 1
    again = pool.acquire()
    assert again is first  # parked connection reused, not rebuilt
    pool.release(again)
    pool.close()


def test_context_manager_commits_the_unit_of_work():
    pool = SessionPool(_seed(), size=1)
    with pool.connection() as conn:
        conn.execute("insert into T values (4, 40);")
    with pool.connection() as conn:
        rows = conn.execute("select possible K from T where K = 4;").fetchall()
    assert rows == [(4,)]
    pool.close()


def test_context_manager_rolls_back_on_error():
    pool = SessionPool(_seed(), size=1)
    with pytest.raises(RuntimeError):
        with pool.connection() as conn:
            conn.execute("insert into T values (4, 40);")
            raise RuntimeError("boom")
    with pool.connection() as conn:
        assert conn.execute("select possible K from T where K = 4;").fetchall() == []
    pool.close()


def test_exhaustion_blocks_then_times_out():
    pool = SessionPool(_seed(), size=1)
    held = pool.acquire()
    with pytest.raises(dbapi.OperationalError, match="pool exhausted"):
        pool.acquire(timeout=0.01)
    pool.release(held)
    reacquired = pool.acquire(timeout=0.01)  # free again
    pool.release(reacquired)
    pool.close()


def test_release_unblocks_a_waiting_acquirer():
    pool = SessionPool(_seed(), size=1)
    held = pool.acquire()
    got = []

    def waiter():
        connection = pool.acquire(timeout=5.0)
        got.append(connection)
        pool.release(connection)

    thread = threading.Thread(target=waiter)
    thread.start()
    pool.release(held)
    thread.join(timeout=5.0)
    assert not thread.is_alive() and got


def test_double_release_raises():
    pool = SessionPool(_seed(), size=2)
    conn = pool.acquire()
    pool.release(conn)
    with pytest.raises(dbapi.InterfaceError, match="double release"):
        pool.release(conn)
    pool.close()


def test_release_of_foreign_connection_raises():
    pool = SessionPool(_seed(), size=1)
    foreign = dbapi.connect(_seed())
    with pytest.raises(dbapi.InterfaceError):
        pool.release(foreign)
    foreign.close()
    pool.close()


def test_pooled_connection_is_pinned_to_acquiring_thread():
    pool = SessionPool(_seed(), size=1)
    conn = pool.acquire()
    errors = []

    def misuse():
        try:
            conn.execute("select possible K from T;")
        except Exception as error:  # noqa: BLE001 - asserted below
            errors.append(error)

    thread = threading.Thread(target=misuse)
    thread.start()
    thread.join()
    assert len(errors) == 1
    # The facade maps OwnershipError into the DBAPI tree.
    assert isinstance(errors[0], dbapi.ProgrammingError)
    assert isinstance(errors[0].__cause__, OwnershipError)
    conn.execute("select possible K from T;")  # owner thread still fine
    pool.release(conn)
    # Released: the pin is lifted, another thread may acquire it.
    got = []
    thread = threading.Thread(
        target=lambda: got.append(pool.acquire(timeout=1.0))
    )
    thread.start()
    thread.join()
    assert got and got[0] is conn
    pool.close()


def test_guard_passthrough_arms_every_pooled_connection():
    seed = _seed(rows=[(k, k) for k in range(50)])
    pool = SessionPool(seed, size=2, max_rows=3)
    with pool.connection() as conn:
        assert conn.session.max_rows == 3
        with pytest.raises(dbapi.OperationalError):
            conn.execute("select possible K from T;")
    pool.close()


def test_release_rolls_back_open_transactions():
    pool = SessionPool(_seed(), size=1)
    conn = pool.acquire()
    conn.execute("insert into T values (4, 40);")
    assert conn.in_transaction
    pool.release(conn)  # must not park a held writer lock
    with pool.connection() as conn:
        assert conn.execute("select possible K from T where K = 4;").fetchall() == []
        conn.execute("insert into T values (5, 50);")  # lock acquirable
    pool.close()


def test_max_idle_retires_excess_connections():
    pool = SessionPool(_seed(), size=3, max_idle=1)
    connections = [pool.acquire() for _ in range(3)]
    for connection in connections:
        pool.release(connection)
    assert pool.idle == 1  # two of the three were closed, not parked
    pool.close()


def test_closed_pool_refuses_acquire_and_closes_strays():
    pool = SessionPool(_seed(), size=2)
    stray = pool.acquire()
    pool.close()
    pool.close()  # idempotent
    with pytest.raises(dbapi.InterfaceError, match="pool is closed"):
        pool.acquire()
    pool.release(stray)  # checked-out connection comes home to be closed
    with pytest.raises(dbapi.InterfaceError):
        stray.execute("select possible K from T;")
    assert pool.idle == 0


def test_shared_store_commit_visibility_across_pooled_connections():
    pool = SessionPool(_seed(), size=2)
    writer = pool.acquire()
    reader = pool.acquire()
    writer.execute("insert into T values (4, 40);")
    assert reader.execute("select possible K from T where K = 4;").fetchall() == []
    writer.commit()
    assert reader.execute("select possible K from T where K = 4;").fetchall() == [
        (4,)
    ]
    pool.release(writer)
    pool.release(reader)
    pool.close()


def test_snapshot_read_during_dml_batch_isolation():
    """The headline property: a pinned reader sees one consistent state
    end to end while a writer's multi-statement DML batch runs and even
    commits on another connection."""
    pool = SessionPool(_seed(), size=2)
    reader = pool.acquire()
    writer = pool.acquire()
    before = reader.execute("select possible K, V from T;").fetchall()
    reader.pin_snapshot()
    writer.execute(
        "update T set V = 0 where K = 1;"
        "delete from T where K = 2;"
        "insert into T values (9, 90);"
    )
    assert reader.execute("select possible K, V from T;").fetchall() == before
    writer.commit()
    assert reader.execute("select possible K, V from T;").fetchall() == before
    reader.unpin_snapshot()
    assert reader.execute("select possible K, V from T;").fetchall() == [
        (1, 0),
        (3, 30),
        (9, 90),
    ]
    pool.release(reader)
    pool.release(writer)
    pool.close()


def test_pool_from_scenario_name_and_repr():
    pool = SessionPool("trip_certain", size=1)
    with pool.connection() as conn:
        rows = conn.execute(
            "select certain Arr from HFlights choice of Dep;"
        ).fetchall()
    assert rows == [("A0",)]
    assert "SessionPool(size=1" in repr(pool)
    pool.close()


def test_pool_size_validation():
    with pytest.raises(dbapi.InterfaceError):
        SessionPool(_seed(), size=0)


# -- the pool-wide statement cache (PR 10) -------------------------------------------


def test_pool_wide_cache_is_shared_across_connections():
    """A statement compiled on one connection is a cache hit on every
    other: pooled sessions fork from the store template and share its
    statement cache by reference."""
    pool = SessionPool(_seed(), size=2)
    query = "select possible K, V from T;"
    first = pool.acquire()
    second = pool.acquire()
    cursor = first.execute(query)
    assert cursor.cache == "miss"
    # Same snapshot, same table versions: the second connection's very
    # first execution hits both the plan cache and the result memo.
    assert second.execute(query).cache == "hit"
    assert pool.cache_info().hits > 0
    assert first.cache_info() == pool.cache_info()
    pool.release(first)
    pool.release(second)
    pool.close()


def test_retired_connections_do_not_pin_or_grow_the_shared_cache():
    """No-growth across checkout cycles: retiring a connection detaches
    its session from the shared cache (so it cannot pin memoized
    relations), and repeated cycles of the same statement leave the
    shared entry count flat."""
    pool = SessionPool(_seed(), size=2, max_idle=0)  # every release retires
    shared = pool.store._template.backend.cache
    query = "select possible K, V from T;"
    connection = pool.acquire()
    connection.execute(query)
    entries = pool.cache_info().entries
    pool.release(connection)  # retired: max_idle=0
    # The retired session holds a *fresh, empty* cache — the shared one
    # is unreachable from it, so its memoized relations are not pinned.
    assert connection.session.backend.cache is not shared
    assert connection.session.backend.cache.info().entries == 0
    assert shared.info().entries == entries
    for _ in range(10):
        with pool.connection() as cycled:
            assert cycled.execute(query).cache == "hit"
        assert pool.cache_info().entries == entries, "cache grew across cycles"
    pool.close()


def test_pool_cache_escape_hatch():
    pool = SessionPool(_seed(), size=1, cache=False)
    with pool.connection() as connection:
        assert connection.execute("select possible K from T;").cache == "bypass"
        assert connection.execute("select possible K from T;").cache == "bypass"
    info = pool.cache_info()
    assert info.hits == 0 and info.entries == 0
    pool.close()
